"""Serving showcase: the anytime property as server-side pagination.

Boots an in-process `repro.server` TCP server over a weighted graph and
walks a client through the service's three headline behaviors:

1. resumable cursors — a paused enumeration resumed across *separate
   connections* yields the exact continuation of the ranked stream;
2. the warm plan cache — the second submission of a statement skips
   parse/analyze/route entirely (watch `plan_cached` flip);
3. deadlines and admission — a 1 ms deadline returns a partial page with
   `deadline_exceeded`, and the open-cursor limit rejects the overflow
   query with a clean `cursor_limit` error.

Run:  python examples/serve_client.py
"""

import itertools

from repro.data.generators import random_graph_database
from repro.server import Client, ServerError, serve_background

TOPK_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT 200"
)


def main() -> None:
    db = random_graph_database(num_edges=2000, num_nodes=220, seed=7)
    server, port = serve_background(db, max_cursors=4, idle_evict_s=None)
    print(f"serving {len(db['E'])} edges on 127.0.0.1:{port}\n")

    print("== 1. pause on one connection, resume on another ==")
    with Client(port=port) as first:
        cursor = first.execute(TOPK_SQL, batch=5, prefetch=5)
        page_one = list(itertools.islice(iter(cursor), 5))
        cursor_id = cursor.cursor_id
        print(f"  fetched {len(page_one)} rows, paused cursor {cursor_id}")
    with Client(port=port) as second:  # a brand-new connection
        response = second.call("fetch", cursor=cursor_id, n=5)
        page_two = response["rows"]
        print(f"  resumed on a new connection: {len(page_two)} more rows")
        rerun = second.execute(TOPK_SQL, batch=10, prefetch=10)
        continued = [w for _, w in page_one] + [w for _, w in page_two]
        uninterrupted = [w for _, w in itertools.islice(iter(rerun), 10)]
        print(f"  identical to one uninterrupted run: "
              f"{continued == uninterrupted}")
        second.call("close", cursor=cursor_id)
        rerun.close()

    print("\n== 2. the plan cache warms up ==")
    with Client(port=port) as client:
        three_hop = (
            "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
            "JOIN E AS e3 ON e2.dst = e3.src ORDER BY weight LIMIT 50"
        )
        cold = client.execute(three_hop, batch=3, prefetch=3)
        reformatted = (
            "select * from E as e1, E as e2, E as e3 "
            "where e1.dst = e2.src and e2.dst = e3.src "
            "order by   weight limit 50"
        )
        warm = client.execute(reformatted, batch=3, prefetch=3)
        print(f"  first submission  plan_cached={cold.plan_cached}")
        print(f"  second submission plan_cached={warm.plan_cached} "
              "(reformatted text: keyed on the normalized AST)")
        info = client.stats()["plan_cache"]
        print(f"  cache: {info['hits']} hits / {info['misses']} misses")
        cold.close()
        warm.close()

    print("\n== 3. deadlines and admission control ==")
    with Client(port=port) as client:
        response = client.call(
            "query", sql=TOPK_SQL, fetch=200, deadline_ms=1
        )
        print(f"  1 ms deadline: {len(response['rows'])} of 200 rows, "
              f"deadline_exceeded={response.get('deadline_exceeded', False)}")
        held = [client.execute(TOPK_SQL, prefetch=1) for _ in range(3)]
        try:
            client.execute(TOPK_SQL, prefetch=1)
        except ServerError as error:
            print(f"  5th cursor rejected: [{error.code}] at the "
                  "--max-cursors=4 admission limit")
        for cursor in held:
            cursor.close()

    server.shutdown()
    server.server_close()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
