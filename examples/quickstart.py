"""Quickstart: the tutorial's motivating query — top-k lightest 4-cycles.

Builds a random weighted graph as a single edge relation, expresses the
4-cycle pattern as a self-join (tutorial §1), and asks for the 10 lightest
cycles through the any-k API.  The enumeration is *anytime*: results arrive
one by one in ranking order, so stopping at k=10 does not pay for the
(possibly quadratic) full output.

Run:  python examples/quickstart.py
"""

from repro import Counters, cycle_query, rank_enumerate
from repro.data.generators import random_graph_database


def main() -> None:
    # A weighted directed graph: one relation E(src, dst), lower weight =
    # more important edge.
    db = random_graph_database(num_edges=3000, num_nodes=250, seed=7)
    query = cycle_query(4)
    print(f"query: {query}")
    print(f"graph: {len(db['E'])} edges\n")

    counters = Counters()
    print("the 10 lightest 4-cycles:")
    for rank, (row, weight) in enumerate(
        rank_enumerate(db, query, k=10, counters=counters), start=1
    ):
        cycle = " -> ".join(str(node) for node in row)
        print(f"  #{rank}  weight={weight:.4f}  {cycle} -> {row[0]}")

    # The query semantics allow degenerate cycles (repeated nodes — the
    # paper's footnote 2).  The anytime contract makes filtering trivial:
    # keep pulling from the ranked stream until enough simple cycles arrive.
    print("\nthe 5 lightest *simple* 4-cycles (filtered from the stream):")
    simple = 0
    for row, weight in rank_enumerate(db, query):
        if len(set(row)) == 4:
            simple += 1
            cycle = " -> ".join(str(node) for node in row)
            print(f"  #{simple}  weight={weight:.4f}  {cycle} -> {row[0]}")
            if simple == 5:
                break

    print("\nRAM-model work (operation counts):")
    for name, value in sorted(counters.snapshot().items()):
        if value:
            print(f"  {name:>20}: {value}")


if __name__ == "__main__":
    main()
