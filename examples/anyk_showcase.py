"""Tour of Part 3: any-k ranked enumeration in depth.

On a weighted path query (the staple workload of the companion paper) this
example shows:

1. the *anytime* contract — time/work to the first result vs to the full
   ranking, for ANYK-PART, ANYK-REC and the batch baseline;
2. the five PART successor strategies producing identical output;
3. ranking functions beyond sum: bottleneck (MAX) and lexicographic (LEX);
4. rank joins (Part 1 technology) on the same query, for contrast.

Run:  python examples/anyk_showcase.py
"""

import time

from repro import LEX, MAX, SUM, Counters, path_query, rank_enumerate
from repro.data.generators import path_database
from repro.topk.rank_join import rank_join_topk


def anytime_contract(db, query) -> None:
    print("== anytime behaviour: work to k-th result (sum ranking) ==")
    print(f"{'method':>12} | {'k=1':>9} | {'k=100':>9} | {'full':>10} | results")
    for method in ("part:lazy", "rec", "batch"):
        counters = Counters()
        stream = rank_enumerate(db, query, method=method, counters=counters)
        work = {}
        count = 0
        for count, _ in enumerate(stream, start=1):
            if count == 1:
                work["first"] = counters.total_work()
            if count == 100:
                work["hundred"] = counters.total_work()
        work["full"] = counters.total_work()
        print(
            f"{method:>12} | {work.get('first', 0):>9} | "
            f"{work.get('hundred', 0):>9} | {work['full']:>10} | {count}"
        )


def strategies_agree(db, query) -> None:
    print("\n== the five PART successor strategies ==")
    reference = None
    for method in ("part:eager", "part:lazy", "part:quick", "part:take2", "part:all"):
        start = time.perf_counter()
        weights = [w for _, w in rank_enumerate(db, query, method=method)]
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = weights
        status = "identical output" if weights == reference else "MISMATCH!"
        print(f"  {method:>12}: {len(weights)} results in {elapsed:.3f}s — {status}")


def ranking_functions(db, query) -> None:
    print("\n== ranking functions on the same query ==")
    for ranking in (SUM, MAX, LEX):
        row, weight = next(iter(rank_enumerate(db, query, ranking=ranking)))
        print(f"  {ranking.name:>7}-best: weight={weight}  row={row}")


def rank_join_contrast(db, query) -> None:
    print("\n== rank join (Part 1) on the same query, top-5 ==")
    counters = Counters()
    for row, weight in rank_join_topk(db, query, k=5, counters=counters):
        print(f"  weight={weight:.4f}  {row}")
    print(f"  sorted accesses consumed: {counters.sorted_accesses}")


def main() -> None:
    db = path_database(length=4, size=800, domain=60, seed=21)
    query = path_query(4)
    print(f"query: {query}")
    print(f"database: 4 relations x {len(db['R1'])} weighted tuples\n")
    anytime_contract(db, query)
    strategies_agree(db, query)
    ranking_functions(db, query)
    rank_join_contrast(db, query)


if __name__ == "__main__":
    main()
