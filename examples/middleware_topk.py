"""Tour of Part 1: the TA middleware model on a concrete scenario.

Restaurants are scored by three external services (food, ambience, price);
each service exposes its own descending-score list (the vertically
partitioned table of the TA setting).  We find the top 5 by aggregate score
with Fagin's Algorithm, the Threshold Algorithm, and NRA, and report the
access-model cost of each — then show how correlation between the lists
changes who pays what (the regimes of experiment E4).

Run:  python examples/middleware_topk.py
"""

from repro import Counters
from repro.data.generators import scored_lists
from repro.topk.access import VerticalSource
from repro.topk.fagin import fagins_algorithm
from repro.topk.nra import nra
from repro.topk.threshold import threshold_algorithm

ALGORITHMS = (
    ("Fagin's Algorithm (FA)", fagins_algorithm),
    ("Threshold Algorithm (TA)", threshold_algorithm),
    ("No Random Access (NRA)", nra),
)


def run_regime(correlation: str) -> None:
    lists = scored_lists(
        num_objects=2000, num_lists=3, correlation=correlation, seed=13
    )
    print(f"\n== {correlation} lists (2000 restaurants x 3 services) ==")
    print(f"{'algorithm':>26} | {'sorted':>7} | {'random':>7} | top-1")
    for name, algorithm in ALGORITHMS:
        counters = Counters()
        source = VerticalSource(lists, counters)
        result = algorithm(source, 5)
        best_obj, best_score = result[0]
        print(
            f"{name:>26} | {counters.sorted_accesses:>7} | "
            f"{counters.random_accesses:>7} | {best_obj} ({best_score:.3f})"
        )


def main() -> None:
    print(
        "TA's instance optimality lives in this access-count model; the\n"
        "same runs also accumulate RAM-model counters (see quickstart)."
    )
    for correlation in ("correlated", "independent", "inverse"):
        run_regime(correlation)


if __name__ == "__main__":
    main()
