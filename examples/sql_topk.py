"""SQL front-end showcase: `ORDER BY ... LIMIT k` as any-k enumeration.

The query every DBMS user writes for the tutorial's motivating example —
the k lightest 4-cycles in a weighted graph — expressed declaratively and
routed by the cost-based planner onto the ranked-enumeration engines,
instead of join-then-sort.  Shows:

1. the EXPLAIN output (why the router picked an any-k engine);
2. the top-k results, identical to the direct `rank_enumerate` call;
3. the router switching to batch when the LIMIT is dropped;
4. filters, projection and DESC — SQL semantics layered on the same
   ranked stream.

Run:  python examples/sql_topk.py
"""

import repro.sql
from repro.anyk import rank_enumerate
from repro.data.generators import random_graph_database
from repro.query.cq import cycle_query

FOURCYCLE_TOPK = """
    SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src
                          JOIN E AS e3 ON e2.dst = e3.src
                          JOIN E AS e4 ON e3.dst = e4.src AND e4.dst = e1.src
    ORDER BY sum(weight) ASC
    LIMIT 5
"""


def main() -> None:
    db = random_graph_database(num_edges=2000, num_nodes=220, seed=7)
    print(f"graph: {len(db['E'])} edges\n")

    print("== EXPLAIN: top-5 lightest 4-cycles ==")
    print(repro.sql.explain(db, FOURCYCLE_TOPK))

    print("\n== results ==")
    result = repro.sql.query(db, FOURCYCLE_TOPK)
    rows = list(result)
    for rank, (row, weight) in enumerate(rows, start=1):
        cycle = " -> ".join(str(node) for node in row)
        print(f"  #{rank}  weight={weight:.4f}  {cycle} -> {row[0]}")

    direct = list(rank_enumerate(db, cycle_query(4), k=5, method=result.plan.engine))
    print(f"\nSQL result == direct rank_enumerate: {rows == direct}")

    print("\n== the same query without LIMIT routes to batch ==")
    no_limit = FOURCYCLE_TOPK.replace("LIMIT 5", "").replace(
        "ORDER BY sum(weight) ASC", "ORDER BY weight"
    )
    for line in repro.sql.explain(db, no_limit).splitlines():
        if line.startswith(("engine:", "because:")) or line.startswith("  - "):
            print(line)

    print("\n== filters + projection + DESC ==")
    heavy_edges = """
        SELECT e1.src, e1.dst
        FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src
        WHERE e1.src >= 100
        ORDER BY weight DESC
        LIMIT 3
    """
    result = repro.sql.query(db, heavy_edges)
    print(f"columns: {result.columns}   engine: {result.plan.engine}")
    for row, weight in result:
        assert row[0] >= 100
        print(f"  weight={weight:.4f}  {row}")


if __name__ == "__main__":
    main()
