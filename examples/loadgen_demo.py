"""Load-testing the any-k server: the bursty scenario, end to end.

Boots an ephemeral ``repro-serve`` (in-process TCP, real sockets),
replays the seeded ``bursty`` scenario against it — on/off traffic
spikes at 150 op/s with a trickle of concurrent INSERT/DELETE mutations
— and prints the SLO report: per-op p50/p95/p99, time-to-first-result
(the any-k headline metric), throughput, and the replay-validation
verdict that every sampled result page matches a serial recompute on
the cursor's pinned snapshot.

Run it::

    python examples/loadgen_demo.py

Everything is seeded: run it twice and the request trace (templates,
parameters, mutation order) is identical — the report's trace sha256
is the receipt.
"""

from __future__ import annotations


def main() -> None:
    from repro.workload import SCENARIOS, build_trace, render_text, run_scenario

    scenario = SCENARIOS["bursty"]
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"dataset:  {scenario.dataset}")
    print(f"arrival:  {scenario.arrival.describe()}")

    trace = build_trace(scenario, seed=7, duration=5.0, clients=4)
    print(
        f"trace:    {trace.query_count} queries over {trace.clients} lanes, "
        f"{trace.mutation_count} concurrent mutations "
        f"(sha256 {trace.sha256()[:12]}…)\n"
    )

    result = run_scenario(
        scenario, seed=7, duration=5.0, clients=4, mode="wire", sample=0.25
    )
    print(render_text(result.report))

    validation = result.validation
    clean = (
        result.report["errors"]["total"] == 0
        and validation is not None
        and not validation.mismatches
    )
    print(f"\nclean run, every sampled page verified: {clean}")


if __name__ == "__main__":
    main()
