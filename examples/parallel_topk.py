"""Partition-parallel any-k: shard, enumerate per process, merge ranked.

Walkthrough of :mod:`repro.parallel` at both of its surfaces:

1. the library — ``rank_enumerate(..., workers=N)`` against the same
   call serial, asserting the merged stream is byte-identical;
2. the server — ``serve_background(db, workers=2)``, a sharded query
   over the wire behind an ordinary resumable cursor, and the
   ``parallel:`` line in EXPLAIN output.

The ``if __name__ == "__main__":`` guard is **required**, as for any
program that spawns ``multiprocessing`` workers: when the pool cannot
use plain ``fork`` (threaded parent — the server regime — or macOS /
Windows spawn platforms), worker bootstrap re-imports ``__main__``, and
an unguarded script would re-run itself inside every worker.
"""

from repro.anyk import rank_enumerate
from repro.data.generators import path_database, random_graph_database
from repro.engine.planner import route
from repro.query.cq import path_query
from repro.server import Client, serve_background


def library_surface() -> None:
    print("== 1. library: rank_enumerate(workers=2) ==")
    db = path_database(length=3, size=3000, domain=80, seed=7)
    query = path_query(3)
    plan = route(db, query, k=200, workers=2, allow_middleware=False)
    print(f"  router: engine={plan.engine}, workers={plan.workers}, "
          f"sharded on {plan.shard_variable} ({plan.shard_policy})")
    serial = list(rank_enumerate(db, query, method="auto", k=200))
    sharded = list(rank_enumerate(db, query, method="auto", k=200, workers=2))
    print(f"  2-shard merged prefix == serial prefix: {sharded == serial} "
          f"({len(sharded)} rows)")
    assert sharded == serial


def server_surface() -> None:
    print("== 2. server: repro-serve --workers 2 (in-process) ==")
    db = random_graph_database(num_edges=4000, num_nodes=300, seed=1)
    server, port = serve_background(db, port=0, workers=2)
    sql = (
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "ORDER BY weight LIMIT 100"
    )
    try:
        with Client(port=port) as client:
            explain = client.explain(sql)
            parallel_line = next(
                line for line in explain.splitlines() if "parallel:" in line
            )
            print(f"  EXPLAIN says: {parallel_line.strip()}")
            rows = list(client.execute(sql, batch=25))
            print(f"  fetched {len(rows)} rows in 4 pages through one "
                  "resumable cursor over the merged stream")
            assert len(rows) == 100
            assert "parallel: 2 workers" in explain
    finally:
        server.shutdown()
        server.server_close()
    print("  server stopped cleanly")


if __name__ == "__main__":
    library_surface()
    server_surface()
    print("parallel top-k: merged ranked streams are byte-identical")
