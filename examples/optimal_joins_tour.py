"""Tour of Part 2: binary plans vs worst-case-optimal joins.

Reproduces, at example scale, the tutorial's §3 argument on its own
adversarial triangle instance: every binary join plan materializes Θ(n²)
intermediate tuples, while Generic-Join and Leapfrog Triejoin finish with
near-linear work — and Yannakakis is linear on acyclic queries where binary
plans can still blow up on dangling tuples.

Run:  python examples/optimal_joins_tour.py
"""

from repro import Counters, path_query, triangle_query
from repro.data.generators import dangling_path_database, triangle_worstcase_database
from repro.joins.binary_plan import all_left_deep_orders, evaluate_left_deep
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.agm import agm_bound, fractional_cover_number


def triangle_section() -> None:
    n = 200
    db = triangle_worstcase_database(n)
    query = triangle_query()
    print(f"== adversarial triangle instance (n = {len(db['R'])} per relation) ==")
    print(f"fractional edge cover rho* = {fractional_cover_number(query)}")
    print(f"AGM bound on output size   = {agm_bound(db, query):.0f}")

    print("\nbinary join plans (every connected left-deep order):")
    for order in all_left_deep_orders(query):
        counters = Counters()
        out = evaluate_left_deep(db, query, order, counters=counters)
        print(
            f"  order {order}: output={len(out):>4}  "
            f"intermediate tuples={counters.intermediate_tuples:>7}"
        )

    for name, engine in (("Generic-Join", generic_join), ("Leapfrog", leapfrog_join)):
        counters = Counters()
        out = engine(db, query, counters=counters)
        print(
            f"{name:>14}: output={len(out):>4}  total work={counters.total_work():>7}"
        )


def yannakakis_section() -> None:
    print("\n== dangling-tuple path query (output is empty) ==")
    db = dangling_path_database(3, 400)
    query = path_query(3)
    c_binary, c_yann = Counters(), Counters()
    evaluate_left_deep(db, query, order=[0, 1, 2], counters=c_binary)
    yannakakis_join(db, query, counters=c_yann)
    print(f"binary plan R1-R2-R3 intermediates: {c_binary.intermediate_tuples}")
    print(f"Yannakakis intermediates:           {c_yann.intermediate_tuples}")
    print("(the full reducer removes every dangling tuple in linear time)")


if __name__ == "__main__":
    triangle_section()
    yannakakis_section()
