"""Tour of the factorized-databases material (§3) and its Part 3 link.

Scenario: a logistics network — weighted legs between hubs — where we ask
questions about all 4-leg routes *without ever materializing them*:

- how many routes exist (COUNT on the factorized circuit),
- the cheapest route cost (tropical MIN — cross-checked against any-k),
- the average route cost (the (count, sum) semiring pair),
- then stream routes with constant delay (unordered), and contrast with
  ranked any-k enumeration of the same routes.

Run:  python examples/factorized_aggregates.py
"""

import itertools

from repro import Counters, path_query, rank_enumerate
from repro.data.generators import path_database
from repro.factorized import (
    COUNT,
    MIN_WEIGHT,
    SUM_WEIGHT,
    FactorizedRepresentation,
    aggregate,
    enumerate_results,
)
from repro.factorized.aggregates import average_weight


def main() -> None:
    # Four leg relations: hub tier i -> tier i+1, heavily shared hubs so the
    # flat route count explodes while the factorization stays linear.
    db = path_database(length=4, size=400, domain=12, seed=99)
    query = path_query(4)
    print(f"query: {query}\n")

    counters = Counters()
    frep = FactorizedRepresentation(db, query, counters=counters)
    build_work = counters.total_work()

    total_routes = aggregate(frep, COUNT)
    cheapest = aggregate(frep, MIN_WEIGHT)
    total_cost = aggregate(frep, SUM_WEIGHT)
    print("aggregates straight off the factorized circuit:")
    print(f"  routes (flat result size): {total_routes:,}")
    print(f"  factorized size:           {frep.size():,} tuples "
          f"({frep.compression_ratio():,.0f}x smaller)")
    print(f"  cheapest route cost:       {cheapest:.4f}")
    print(f"  average route cost:        {average_weight(frep):.4f}")
    print(f"  total cost over routes:    {total_cost:,.1f}")
    print(f"  work: {build_work} ops to build, "
          f"{counters.total_work() - build_work} ops for all four aggregates\n")

    # Cross-check the tropical aggregate against ranked enumeration.
    best_row, best_weight = next(iter(rank_enumerate(db, query)))
    assert abs(float(best_weight) - cheapest) < 1e-9
    print(f"any-k agrees: lightest route {best_row} at {best_weight:.4f}\n")

    print("first 5 routes, unordered constant-delay enumeration:")
    for row, weight in itertools.islice(enumerate_results(frep), 5):
        print(f"  cost={weight:.4f}  {row}")
    print("\nfirst 5 routes, ranked (any-k):")
    for row, weight in rank_enumerate(db, query, k=5):
        print(f"  cost={weight:.4f}  {row}")


if __name__ == "__main__":
    main()
