"""Tour of the §4 lineage: k-shortest paths ↔ ranked join enumeration.

A small road network (weighted digraph) is queried for its 8 cheapest
routes with the two classic algorithms the tutorial traces any-k back to —
Hoffman–Pavley's 1959 deviation method (the Lawler–Murty / ANYK-PART
ancestor) and the Recursive Enumeration Algorithm (the ANYK-REC ancestor).
Then the bridge is crossed in the other direction: a path *query* over
relations is compiled to a layered DAG and the same k-shortest-path code
enumerates its ranked answers, matching `rank_enumerate` exactly.

Run:  python examples/kshortest_paths.py
"""

import itertools

from repro import Counters, path_query, rank_enumerate
from repro.data.generators import path_database
from repro.paths.graph import Digraph, graph_path_to_answer, path_query_as_graph
from repro.paths.hoffman_pavley import hoffman_pavley
from repro.paths.rea import recursive_enumeration

ROADS = [
    ("depot", "north", 2.0), ("depot", "east", 1.5), ("depot", "river", 4.0),
    ("north", "bridge", 1.0), ("east", "bridge", 2.5), ("east", "river", 0.5),
    ("river", "bridge", 1.0), ("bridge", "market", 0.5), ("river", "market", 3.0),
    ("north", "market", 4.5), ("bridge", "east", 0.25),
]


def road_network_section() -> None:
    graph = Digraph()
    for u, v, w in ROADS:
        graph.add_edge(u, v, w)
    print("== 8 cheapest depot -> market routes ==")
    for name, algorithm in (
        ("Hoffman-Pavley", hoffman_pavley),
        ("REA", recursive_enumeration),
    ):
        counters = Counters()
        routes = list(algorithm(graph, "depot", "market", k=8, counters=counters))
        print(f"\n{name} (heap ops: {counters.heap_ops}):")
        for path, cost in routes:
            print(f"  {cost:4.2f}  {' -> '.join(path)}")


def reduction_section() -> None:
    print("\n== the same code ranks join-query answers ==")
    db = path_database(length=3, size=300, domain=25, seed=5)
    query = path_query(3)
    graph, source, target = path_query_as_graph(db, query)
    print(f"query {query} as a layered DAG: {graph.num_edges()} edges")

    via_paths = [
        (graph_path_to_answer(path), round(cost, 6))
        for path, cost in itertools.islice(
            hoffman_pavley(graph, source, target), 5
        )
    ]
    via_anyk = [
        (row, round(float(weight), 6))
        for row, weight in rank_enumerate(db, query, k=5)
    ]
    assert via_paths == via_anyk, "the two routes must agree exactly"
    print("top-5 answers (k-shortest-paths == any-k, verified):")
    for row, weight in via_paths:
        print(f"  {weight:.4f}  {row}")


if __name__ == "__main__":
    road_network_section()
    reduction_section()
