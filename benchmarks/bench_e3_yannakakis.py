"""E3 — §3 claim: Yannakakis evaluates acyclic queries in O~(n + r); binary
plans are not output-sensitive and blow up on dangling tuples.

Series: per n, intermediate tuples of the natural binary plan vs Yannakakis
on the dangling-path instance (output empty, binary intermediate quadratic),
plus both engines on a benign skewed instance for context.
"""

from repro.data.generators import dangling_path_database, path_database
from repro.joins.binary_plan import evaluate_left_deep
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (50, 100, 200, 400)


def _series():
    query = path_query(3)
    rows, binary_costs, yann_costs = [], [], []
    for n in SIZES:
        db = dangling_path_database(3, n)
        c_binary, c_yann = Counters(), Counters()
        evaluate_left_deep(db, query, order=[0, 1, 2], counters=c_binary)
        yannakakis_join(db, query, counters=c_yann)
        rows.append(
            (n, 0, c_binary.intermediate_tuples, c_yann.intermediate_tuples,
             c_yann.total_work())
        )
        binary_costs.append(max(1, c_binary.intermediate_tuples))
        yann_costs.append(max(1, c_yann.total_work()))
    return rows, binary_costs, yann_costs


def bench_e3_yannakakis_output_sensitivity(benchmark):
    rows, binary_costs, yann_costs = _series()
    print_table(
        "E3: dangling path query — binary plan vs Yannakakis",
        ["n", "output", "binary intermediates", "yann intermediates", "yann total work"],
        rows,
    )
    e_binary = growth_exponent(SIZES, binary_costs)
    e_yann = growth_exponent(SIZES, yann_costs)
    print(
        f"growth exponents: binary={e_binary:.2f} (paper: 2), "
        f"yannakakis={e_yann:.2f} (paper: 1)"
    )
    assert e_binary > 1.8
    assert e_yann < 1.3
    assert all(row[3] == 0 for row in rows)  # zero intermediates, r = 0

    # Context: on a benign skewed instance both are fine (not asserted).
    db = path_database(3, 400, 40, seed=5, zipf_skew=1.2)
    c_b, c_y = Counters(), Counters()
    out = evaluate_left_deep(db, path_query(3), counters=c_b)
    yannakakis_join(db, path_query(3), counters=c_y)
    print(
        f"benign skewed instance (r={len(out)}): binary intermediates="
        f"{c_b.intermediate_tuples}, yannakakis intermediates="
        f"{c_y.intermediate_tuples}"
    )

    db_big = dangling_path_database(3, SIZES[-1])
    benchmark.pedantic(
        lambda: yannakakis_join(db_big, path_query(3)), rounds=3, iterations=1
    )
