"""E15 — §4 claim: constant-delay (unordered) enumeration gives the
output-sensitive guarantee O~(t_prep + r); ranked enumeration is its
ordered refinement, paying a logarithmic factor per result — "it would seem
natural to extend such approaches to ranked enumeration by investing a
little more into the pre-processing phase in order to return the results in
the right order with constant or logarithmic delay".

Series: per n, the per-result delay (operations between consecutive
results) of unordered factorized enumeration vs any-k (PART) vs batch;
unordered delay stays flat, ranked delay grows ~logarithmically, batch has
no delay guarantee at all (everything is upfront).
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.factorized import FactorizedRepresentation, enumerate_results
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

LENGTH = 3
SIZES = (50, 100, 200, 400)
K = 500


def _delays(stream_factory):
    """(work to first result, average work per subsequent result)."""
    counters = Counters()
    stream = stream_factory(counters)
    first = None
    produced = 0
    for produced, _ in enumerate(stream, start=1):
        if produced == 1:
            first = counters.total_work()
        if produced == K:
            break
    if produced < 2:
        return first or 0, 0.0
    return first, (counters.total_work() - first) / (produced - 1)


def _series():
    query = path_query(LENGTH)
    rows = []
    unordered_delays, ranked_delays = [], []
    for n in SIZES:
        db = path_database(LENGTH, n, max(4, n // 10), seed=71)

        def unordered(counters):
            frep = FactorizedRepresentation(db, query, counters=counters)
            return enumerate_results(frep, counters=counters)

        def ranked(counters):
            return rank_enumerate(
                db, query, method="part:lazy", counters=counters
            )

        def batch(counters):
            return rank_enumerate(db, query, method="batch", counters=counters)

        u_first, u_delay = _delays(unordered)
        r_first, r_delay = _delays(ranked)
        b_first, b_delay = _delays(batch)
        rows.append(
            (
                n,
                u_first,
                round(u_delay, 2),
                r_first,
                round(r_delay, 2),
                b_first,
                round(b_delay, 2),
            )
        )
        unordered_delays.append(u_delay)
        ranked_delays.append(r_delay)
    return rows, unordered_delays, ranked_delays


def bench_e15_constant_delay_vs_ranked(benchmark):
    rows, unordered_delays, ranked_delays = _series()
    print_table(
        f"E15: delay per result over the first {K} results (path ℓ={LENGTH})",
        [
            "n",
            "unordered TTF", "unordered delay",
            "ranked TTF", "ranked delay",
            "batch TTF", "batch delay",
        ],
        rows,
    )
    # Shapes: unordered delay is flat and small; ranked delay is within a
    # moderate (log-ish) factor; neither grows linearly with n.
    assert max(unordered_delays) < 3 * max(1.0, min(unordered_delays))
    assert max(ranked_delays) < 6 * max(1.0, min(ranked_delays))
    assert all(r >= u for r, u in zip(ranked_delays, unordered_delays))
    print(
        "shape: unordered delay flat; ranked delay flat-ish but larger "
        "(the log factor); batch pays everything before the first result"
    )

    db = path_database(LENGTH, SIZES[-1], SIZES[-1] // 10, seed=71)
    benchmark.pedantic(
        lambda: sum(
            1
            for _ in enumerate_results(
                FactorizedRepresentation(db, path_query(LENGTH))
            )
        ),
        rounds=3,
        iterations=1,
    )
