"""E25: the async pipelined server + parameter-bound plan cache.

Four series, three of them asserted (the PR's acceptance criteria):

1. **read-mostly plan-cache hit rate** — with literals lifted into
   bound-parameter vectors, every instantiation of a query template
   shares one cached entry, so the read-mostly scenario's hit rate must
   reach >= 95% (it sat near 20% when each literal spelled its own key);
2. **wire vs in-process query p99** — the asyncio core plus binary
   framing must keep the wire's p99 within 2x of the same trace driven
   in-process (the wire tax bounded, not just "small");
3. **4-shard wire streams byte-identical to serial** — partition
   parallelism behind the server must not reorder or rewrite a single
   ranked stream;
4. **pipelining throughput** (informational) — round trips per second,
   one-at-a-time ``Client`` vs ``PipelinedClient`` with a window of
   requests in flight on one socket.

Writes ``BENCH_async.json`` — machine-readable for future PRs to diff.

Run with::

    PYTHONPATH=src python benchmarks/bench_e25_async.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

import repro.sql  # noqa: E402
from repro.data.generators import random_graph_database  # noqa: E402
from repro.server import Client, PipelinedClient, serve_background  # noqa: E402
from repro.workload import run_scenario  # noqa: E402

SEED = 7
#: Long enough that the p99 is a population, not the boot transient:
#: at 3 s the tail is ~2 samples and both sit on the server-boot +
#: first-dial spike, which the in-process driver never pays.
DURATION = 8.0
CLIENTS = 4
SCENARIO = "read-mostly"

#: Acceptance floor on the template cache's hit rate for read traffic.
MIN_HIT_RATE = 0.95
#: Acceptance ceiling on wire p99 as a multiple of in-process p99, plus
#: one millisecond of grace so a sub-ms in-process baseline cannot turn
#: scheduler jitter into a flake.
MAX_WIRE_FACTOR = 2.0
GRACE_MS = 1.0

GRAPH_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)


def _hit_rate(plan_cache: dict) -> float:
    total = plan_cache["hits"] + plan_cache["misses"]
    return plan_cache["hits"] / total if total else 0.0


def bench_cache_and_wire_tax() -> tuple[dict, dict, dict]:
    """Series 1 + 2: one seeded trace, driven three ways.

    The asserted p99 comparison uses ``wire`` mode (one socket per
    lane) — that is the deployment shape the criterion bounds.  The
    shared-socket ``wire-pipelined`` run rides along informationally:
    multiplexing every lane onto one connection trades tail latency
    (head-of-line at the socket) for connection economy, and the JSON
    records that trade instead of hiding it.
    """
    wire = run_scenario(
        SCENARIO, seed=SEED, duration=DURATION, clients=CLIENTS,
        mode="wire", sample=0.0,
    ).report
    pipelined = run_scenario(
        SCENARIO, seed=SEED, duration=DURATION, clients=CLIENTS,
        mode="wire-pipelined", sample=0.0,
    ).report
    inproc = run_scenario(
        SCENARIO, seed=SEED, duration=DURATION, clients=CLIENTS,
        mode="inprocess", sample=0.0,
    ).report

    cache = wire["server"]["plan_cache"]
    hit_rate = _hit_rate(cache)
    assert hit_rate >= MIN_HIT_RATE, (
        f"read-mostly plan-cache hit rate {hit_rate:.1%} < "
        f"{MIN_HIT_RATE:.0%}: {cache}"
    )

    wire_p99 = wire["ops"]["query"]["p99_ms"]
    inproc_p99 = inproc["ops"]["query"]["p99_ms"]
    budget_ms = MAX_WIRE_FACTOR * inproc_p99 + GRACE_MS
    assert wire_p99 <= budget_ms, (
        f"wire query p99 {wire_p99:.3f} ms exceeds "
        f"{MAX_WIRE_FACTOR}x in-process p99 {inproc_p99:.3f} ms"
    )

    cache_series = {
        "scenario": SCENARIO, "seed": SEED, "duration_s": DURATION,
        "mode": "wire",
        "hits": cache["hits"], "misses": cache["misses"],
        "recosts": cache.get("recosts", 0), "entries": cache["entries"],
        "hit_rate": round(hit_rate, 4), "floor": MIN_HIT_RATE,
    }
    tax_series = {
        "wire_query_p99_ms": wire_p99,
        "inprocess_query_p99_ms": inproc_p99,
        "wire_pipelined_query_p99_ms": pipelined["ops"]["query"]["p99_ms"],
        "factor": round(wire_p99 / inproc_p99, 3) if inproc_p99 else None,
        "budget_factor": MAX_WIRE_FACTOR, "grace_ms": GRACE_MS,
    }
    return cache_series, tax_series, wire


def bench_sharded_streams() -> dict:
    """Series 3: 4-shard server streams == the serial library streams."""
    db = random_graph_database(num_edges=1500, num_nodes=160, seed=5)
    checked = []
    server, port = serve_background(db, workers=4)
    try:
        with PipelinedClient(port=port) as client:
            for k in (10, 100, 500):
                sql = GRAPH_SQL.format(k=k)
                serial = list(repro.sql.query(db, sql))
                sharded = client.execute(sql, batch=64).fetchall()
                identical = json.dumps(sharded) == json.dumps(serial)
                assert identical, f"4-shard stream diverged at k={k}"
                checked.append({"k": k, "rows": len(sharded),
                                "byte_identical": True})
    finally:
        server.shutdown()
        server.server_close()
    return {"workers": 4, "queries": checked}


def bench_pipelining_throughput() -> dict:
    """Series 4: round trips/s, strict request/response vs pipelined."""
    db = random_graph_database(num_edges=400, num_nodes=70, seed=11)
    sql = GRAPH_SQL.format(k=5)
    rounds = 200
    server, port = serve_background(db)
    try:
        with Client(port=port) as client:
            client.execute(sql).fetchall()  # warm the plan cache
            start = time.perf_counter()
            for _ in range(rounds):
                # fetch > k drains the stream, so the server retires the
                # cursor inline and the loop cannot hit the cursor limit
                client.call("query", sql=sql, fetch=10)
            serial_s = time.perf_counter() - start
        with PipelinedClient(port=port) as client:
            start = time.perf_counter()
            window = [
                client.submit("query", sql=sql, fetch=10)
                for _ in range(rounds)
            ]
            for future in window:
                client.result(future)
            pipelined_s = time.perf_counter() - start
    finally:
        server.shutdown()
        server.server_close()
    return {
        "round_trips": rounds,
        "serial_rps": round(rounds / serial_s, 1),
        "pipelined_rps": round(rounds / pipelined_s, 1),
        "speedup": round(serial_s / pipelined_s, 2),
    }


def main() -> None:
    cache_series, tax_series, wire_report = bench_cache_and_wire_tax()
    shard_series = bench_sharded_streams()
    pipe_series = bench_pipelining_throughput()

    print_table(
        f"E25: plan-cache hit rate ({SCENARIO}, seed {SEED}, "
        f"{DURATION:g}s, wire)",
        ("hits", "misses", "recosts", "entries", "hit rate", "floor"),
        [(
            cache_series["hits"], cache_series["misses"],
            cache_series["recosts"], cache_series["entries"],
            f"{cache_series['hit_rate']:.1%}", f"{MIN_HIT_RATE:.0%}",
        )],
    )
    print_table(
        "E25: wire tax — query p99 vs in-process driver",
        ("wire p99 ms", "inproc p99 ms", "factor", "budget"),
        [(
            tax_series["wire_query_p99_ms"],
            tax_series["inprocess_query_p99_ms"],
            tax_series["factor"],
            f"<= {MAX_WIRE_FACTOR}x + {GRACE_MS:g}ms",
        )],
    )
    print_table(
        "E25: 4-shard wire streams vs serial library",
        ("k", "rows", "byte-identical"),
        [(q["k"], q["rows"], q["byte_identical"])
         for q in shard_series["queries"]],
    )
    print_table(
        "E25: pipelining throughput (one socket, k=5 point queries)",
        ("round trips", "serial rps", "pipelined rps", "speedup"),
        [(
            pipe_series["round_trips"], pipe_series["serial_rps"],
            pipe_series["pipelined_rps"], f"{pipe_series['speedup']}x",
        )],
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_async.json"
    payload = {
        "bench": "e25_async",
        "plan_cache": cache_series,
        "wire_tax": tax_series,
        "sharded_streams": shard_series,
        "pipelining": pipe_series,
        "wire_errors": wire_report["errors"],
    }
    with out.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nJSON report written to {out}")


if __name__ == "__main__":
    main()
