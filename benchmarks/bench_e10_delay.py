"""E10 — §4 claim: a direct application of Lawler–Murty that solves each
partition from scratch has delay *polynomial in the input size*, while
exploiting the join structure brings the delay down to O(log k) = O~(1).

Series: per input size n, the average per-result work (delay) of the
naive Lawler baseline vs ANYK-PART for the first 200 results — the former
grows linearly with n, the latter stays flat.
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (50, 100, 200, 400)
K = 200
LENGTH = 3


def _avg_delay(db, query, method):
    counters = Counters()
    stream = rank_enumerate(db, query, method=method, counters=counters)
    start = None
    produced = 0
    for produced, _ in enumerate(stream, start=1):
        if produced == 1:
            start = counters.total_work()
        if produced == K:
            break
    if produced < 2:
        return 0.0
    return (counters.total_work() - start) / (produced - 1)


def _series():
    query = path_query(LENGTH)
    rows, naive_delays, part_delays = [], [], []
    for n in SIZES:
        db = path_database(LENGTH, n, max(4, n // 10), seed=47)
        naive_delay = _avg_delay(db, query, "lawler")
        part_delay = _avg_delay(db, query, "part:lazy")
        rows.append((n, round(naive_delay, 1), round(part_delay, 1)))
        naive_delays.append(naive_delay)
        part_delays.append(part_delay)
    return rows, naive_delays, part_delays


def bench_e10_delay_naive_vs_structured(benchmark):
    rows, naive_delays, part_delays = _series()
    print_table(
        f"E10: average per-result work over the first {K} results",
        ["n", "naive Lawler delay", "ANYK-PART delay"],
        rows,
    )
    e_naive = growth_exponent(SIZES, naive_delays)
    e_part = growth_exponent(SIZES, [max(d, 1.0) for d in part_delays])
    print(
        f"delay growth with n: naive={e_naive:.2f} (paper: polynomial, ~1), "
        f"structured={e_part:.2f} (paper: ~0 — independent of n)"
    )
    assert e_naive > 0.7  # naive delay grows ~linearly in input size
    assert e_part < 0.4  # structured delay is input-size independent
    assert naive_delays[-1] > 10 * part_delays[-1]

    db = path_database(LENGTH, SIZES[-1], SIZES[-1] // 10, seed=47)
    benchmark.pedantic(
        lambda: list(
            rank_enumerate(db, path_query(LENGTH), method="part:lazy", k=K)
        ),
        rounds=3,
        iterations=1,
    )
