"""E19 — the query server: wire overhead, concurrency, and the plan cache.

Three series:

1. **warm vs cold planning** — the plan cache's reason to exist: repeat
   submissions of a statement must plan measurably cheaper than first
   submissions (asserted, the PR's acceptance criterion);
2. **fetch latency** — p50/p95 per-page latency of paged fetches over the
   wire vs the same pages pulled from the library directly (the price of
   JSON + TCP per round trip);
3. **concurrent-client throughput** — total queries/s with 1, 2, and 4
   client threads against one server (thread-pool handler + global
   caches), vs the single-thread direct-call baseline.

Run:  pytest benchmarks/bench_e19_server.py -o python_functions='bench_*' -q -s
"""

from __future__ import annotations

import statistics
import threading
import time

import repro.sql
from repro.data.generators import random_graph_database
from repro.server import Client, QueryService, serve_background

from common import print_table

SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _plan_cache_series(db) -> tuple[list, float, float]:
    """Cold-vs-warm planning latency through the service (no sockets)."""
    statements = [SQL.format(k=k) for k in (5, 10, 20, 40, 80, 160, 320, 640)]
    service = QueryService(db)
    cold, warm = [], []
    for sql in statements:
        start = time.perf_counter()
        service.plan(sql)
        cold.append(time.perf_counter() - start)
    for _ in range(5):
        for sql in statements:
            start = time.perf_counter()
            entry, was_cached = service.plan(sql)
            warm.append(time.perf_counter() - start)
            assert was_cached
    cold_ms = 1e3 * statistics.mean(cold)
    warm_ms = 1e3 * statistics.mean(warm)
    rows = [
        ("cold (parse+analyze+route)", len(cold), cold_ms),
        ("warm (normalize+probe)", len(warm), warm_ms),
        ("speedup", "", cold_ms / warm_ms if warm_ms else float("inf")),
    ]
    return rows, cold_ms, warm_ms


def _fetch_latency_series(db, port) -> list:
    """p50/p95 per-page latency: wire fetches vs direct library pulls."""
    k, page = 400, 20
    sql = SQL.format(k=k)
    wire_samples: list[float] = []
    with Client(port=port) as client:
        for _ in range(3):
            cursor = client.execute(sql, batch=page, prefetch=0)
            while True:
                start = time.perf_counter()
                rows = cursor.fetch(page)
                wire_samples.append(time.perf_counter() - start)
                if not rows or cursor.cursor_id is None:
                    break
    direct_samples: list[float] = []
    for _ in range(3):
        stream = iter(repro.sql.query(db, sql))
        while True:
            start = time.perf_counter()
            batch = []
            try:
                for _ in range(page):
                    batch.append(next(stream))
            except StopIteration:
                break
            finally:
                direct_samples.append(time.perf_counter() - start)
            if len(batch) < page:
                break
    return [
        (
            "direct",
            len(direct_samples),
            1e3 * _percentile(direct_samples, 0.50),
            1e3 * _percentile(direct_samples, 0.95),
        ),
        (
            "wire",
            len(wire_samples),
            1e3 * _percentile(wire_samples, 0.50),
            1e3 * _percentile(wire_samples, 0.95),
        ),
    ]


def _throughput_series(db, port) -> list:
    """Queries/s, n client threads each running whole top-k queries."""
    k, queries_each = 50, 30
    sql = SQL.format(k=k)

    start = time.perf_counter()
    for _ in range(queries_each):
        list(repro.sql.query(db, sql))
    direct_qps = queries_each / (time.perf_counter() - start)
    rows = [("direct (library)", 1, queries_each, direct_qps)]

    for threads_n in (1, 2, 4):
        barrier = threading.Barrier(threads_n + 1)
        done: list[float] = []

        def worker() -> None:
            with Client(port=port) as client:
                barrier.wait()
                for _ in range(queries_each):
                    client.execute(sql, batch=k).fetchall()
                done.append(time.perf_counter())

        workers = [
            threading.Thread(target=worker) for _ in range(threads_n)
        ]
        for w in workers:
            w.start()
        barrier.wait()
        begin = time.perf_counter()
        for w in workers:
            w.join(timeout=600)
        elapsed = max(done) - begin
        rows.append(
            (
                f"wire ({threads_n} clients)",
                threads_n,
                threads_n * queries_each,
                threads_n * queries_each / elapsed,
            )
        )
    return rows


def bench_e19_server(benchmark):
    db = random_graph_database(num_edges=2000, num_nodes=250, seed=19)
    server, port = serve_background(db, max_cursors=32)
    try:
        plan_rows, cold_ms, warm_ms = _plan_cache_series(db)
        print_table(
            "E19a: plan cache, cold vs warm (mean ms per plan)",
            ["path", "samples", "ms"],
            plan_rows,
        )
        # The acceptance criterion: a warm plan cache makes repeat-query
        # planning measurably cheaper than cold.
        assert warm_ms < cold_ms / 2, (
            f"warm planning ({warm_ms:.3f} ms) not measurably cheaper "
            f"than cold ({cold_ms:.3f} ms)"
        )
        print(
            f"plan-cache claim holds: warm {warm_ms:.3f} ms < "
            f"{cold_ms:.3f} ms cold (x{cold_ms / warm_ms:.1f})"
        )

        print_table(
            "E19b: per-page fetch latency, 20-row pages (ms)",
            ["path", "pages", "p50", "p95"],
            _fetch_latency_series(db, port),
        )
        print_table(
            "E19c: top-50 query throughput (queries/s)",
            ["path", "clients", "queries", "qps"],
            _throughput_series(db, port),
        )
        with Client(port=port) as client:
            stats = client.stats()
        print(
            f"server totals: {stats['queries']} queries, "
            f"{stats['rows_served']} rows, plan cache "
            f"{stats['plan_cache']['hits']}/{stats['plan_cache']['hits'] + stats['plan_cache']['misses']} hit"
        )

        with Client(port=port) as client:
            benchmark.pedantic(
                lambda: client.execute(SQL.format(k=50), batch=50).fetchall(),
                rounds=3,
                iterations=1,
            )
    finally:
        server.shutdown()
        server.server_close()
