"""E17 — §4 application claim: anytime top-k tree-pattern retrieval in
labeled graphs (the Any-k / tree-matching line of work) reduces to ranked
enumeration over an acyclic join and inherits its guarantees: first
matches after linear-time preprocessing, far before batch materialization.

Series: per graph size, work to the top-10 matches of a 4-node tree
pattern via any-k vs batch, plus the factorized count of all matches.
"""

from repro.patterns.graph import random_labeled_graph
from repro.patterns.pattern import TreePattern
from repro.patterns.search import count_matches, find_patterns
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (400, 800, 1600, 3200)  # edges
K = 10


def _pattern() -> TreePattern:
    # Only the root is label-constrained; the unlabeled arms make the match
    # count grow superlinearly with density, which is exactly the regime
    # where batch materialization loses to anytime retrieval.
    pattern = TreePattern("root", "A")
    pattern.add_child("root", "left")
    pattern.add_child("root", "right")
    pattern.add_child("left", "leaf")
    return pattern


def _series():
    rows = []
    anyk_costs, batch_costs = [], []
    for edges in SIZES:
        graph = random_labeled_graph(80, edges, labels=("A", "B"), seed=97)
        pattern = _pattern()
        total = count_matches(graph, pattern)

        c_anyk = Counters()
        top = list(
            find_patterns(graph, pattern, k=K, counters=c_anyk)
        )
        c_batch = Counters()
        top_batch = list(
            find_patterns(graph, pattern, k=K, method="batch", counters=c_batch)
        )
        assert [round(float(w), 9) for _, w in top] == [
            round(float(w), 9) for _, w in top_batch
        ]
        rows.append(
            (edges, total, len(top), c_anyk.total_work(), c_batch.total_work())
        )
        anyk_costs.append(max(1, c_anyk.total_work()))
        batch_costs.append(max(1, c_batch.total_work()))
    return rows, anyk_costs, batch_costs


def bench_e17_tree_pattern_retrieval(benchmark):
    rows, anyk_costs, batch_costs = _series()
    print_table(
        f"E17: top-{K} tree-pattern matches — any-k vs batch",
        ["edges", "all matches", "returned", "anyk work", "batch work"],
        rows,
    )
    e_anyk = growth_exponent(SIZES, anyk_costs)
    e_batch = growth_exponent(SIZES, batch_costs)
    print(
        f"growth exponents: any-k={e_anyk:.2f} (paper: ~1 — input-linear), "
        f"batch={e_batch:.2f} (driven by the superlinear match count)"
    )
    # Shapes: fixed node count + growing density => matches grow
    # superlinearly; batch pays for all of them, any-k does not.
    assert e_anyk < e_batch
    gap_first = batch_costs[0] / anyk_costs[0]
    gap_last = batch_costs[-1] / anyk_costs[-1]
    print(f"batch/any-k work gap: {gap_first:.1f}x -> {gap_last:.1f}x")
    assert gap_last > gap_first > 1.0

    graph = random_labeled_graph(80, SIZES[-1], labels=("A", "B"), seed=97)
    benchmark.pedantic(
        lambda: list(find_patterns(graph, _pattern(), k=K)),
        rounds=3,
        iterations=1,
    )
