"""E12 — §3 claims: the AGM bound (a) always dominates the true output
size, (b) is *tight* — there are instances matching it — and (c) the
fractional cover beats the integral one on odd cycles (the gap binary-join
reasoning cannot see).

Series: per query, ρ*, integral cover, AGM bound and true output size on
random and adversarial instances.
"""

from repro.data.generators import random_graph_database, triangle_worstcase_database
from repro.joins.generic_join import evaluate as generic_join
from repro.query.agm import agm_bound, fractional_cover_number, integral_cover_number
from repro.query.cq import cycle_query, path_graph_query, triangle_query
from repro.util.counters import Counters

from common import print_table

QUERIES = [
    ("triangle", triangle_query(("E", "E", "E"))),
    ("4-cycle", cycle_query(4)),
    ("5-cycle", cycle_query(5)),
    ("2-path", path_graph_query(2)),
]


def _series():
    db = random_graph_database(300, 45, seed=59)
    rows = []
    for name, query in QUERIES:
        out = generic_join(db, query)
        rows.append(
            (
                name,
                fractional_cover_number(query),
                integral_cover_number(query),
                int(agm_bound(db, query)),
                len(out),
            )
        )
    return db, rows


def bench_e12_agm_bound(benchmark):
    db, rows = _series()
    print_table(
        "E12: AGM bound vs true output (random graph, 300 edges)",
        ["query", "rho*", "integral cover", "AGM bound", "true output"],
        rows,
    )
    for name, rho, integral, bound, output in rows:
        assert output <= bound, name
        assert rho <= integral, name
    # Odd cycles expose the fractional/integral gap (2.5 < 3).
    five = dict((r[0], r) for r in rows)["5-cycle"]
    assert five[1] == 2.5 and five[2] == 3

    # Tightness: the adversarial triangle instance meets n^1.5 exactly.
    worst = triangle_worstcase_database(100)
    n = len(worst["R"])
    bound = agm_bound(worst, triangle_query())
    print(
        f"tightness: adversarial triangle AGM bound = {bound:.0f} = n^1.5 "
        f"for n={n} ({n**1.5:.0f})"
    )
    assert abs(bound - n**1.5) < 1e-6 * n**1.5

    benchmark.pedantic(
        lambda: agm_bound(db, cycle_query(5)), rounds=5, iterations=1
    )
