"""Shared helpers for the benchmark harness.

Every bench prints its series as an aligned table (the "rows the paper
reports") and uses pytest-benchmark for one representative wall-clock
measurement.  Operation counts are the primary series — the repro band for
this paper notes that pure-Python timings are not comparable to the
authors' Java testbed, while RAM-model counts transfer (DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Sequence


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Aligned fixed-width table to stdout."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def growth_exponent(ns: Sequence[int], costs: Sequence[float]) -> float:
    """Least-squares slope of log(cost) against log(n).

    The empirical growth exponent: ~2 for quadratic series, ~1.5 for the
    WCO/submodular-width series, ~1 for linear ones.
    """
    points = [
        (math.log(n), math.log(c)) for n, c in zip(ns, costs) if c > 0 and n > 1
    ]
    if len(points) < 2:
        return float("nan")
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    num = sum((x - mean_x) * (y - mean_y) for x, y in points)
    den = sum((x - mean_x) ** 2 for x, _ in points)
    return num / den if den else float("nan")
