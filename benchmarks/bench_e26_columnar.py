"""E26: columnar storage + per-plan compiled enumeration kernels.

Three series, one of them asserted (the PR's acceptance criterion):

1. **compiled vs interpreted kernel micro-ops** — the three T-DP
   accessors the enumeration inner loops hammer (``prefix_priority`` on
   a deviation prefix, ``expand_best``, ``solution_row``), measured on
   an e18-class path instance.  The best op must clear a **5x** speedup:
   the straight-line generated code drops the interpreted walk's
   ``combine`` callbacks, bucket-key tuple allocations, and per-stage
   attribute hops, and that is the whole point of shipping a code
   generator instead of micro-tuning the interpreter;
2. **bulk materialization** — ``Relation.bulk_load`` vs per-row
   ``Relation.add`` (the path the binary hash join now takes), and the
   columnar weight-keyed sort the batch engine uses (informational);
3. **end-to-end enumeration** — ``rank_enumerate`` wall clock with
   kernels on vs off for part:lazy and rec (informational; the micro
   ratio is diluted by strategy bookkeeping), plus a byte-identity check
   of the two streams.

Writes ``BENCH_columnar.json`` — machine-readable for future PRs to
diff.

Run with::

    PYTHONPATH=src python benchmarks/bench_e26_columnar.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

from repro.anyk.api import rank_enumerate  # noqa: E402
from repro.anyk.kernels import install_kernels  # noqa: E402
from repro.anyk.tdp import TDP  # noqa: E402
from repro.data.generators import path_database  # noqa: E402
from repro.data.relation import Relation  # noqa: E402
from repro.query.cq import path_query  # noqa: E402

#: e18-class scale: a 4-ary path join over 2000-row relations.
LENGTH, SIZE, DOMAIN, SEED = 4, 2000, 40, 7
K = 1000

#: Asserted floor on the best micro-op speedup.
MIN_KERNEL_SPEEDUP = 5.0

MICRO_CALLS = 100_000
MICRO_REPEATS = 5
BULK_ROWS = 200_000


def _best_of(fn, *args, calls: int = MICRO_CALLS, repeats: int = MICRO_REPEATS):
    """Best wall clock over ``repeats`` batches of ``calls`` invocations."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(calls):
            fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def kernel_micro_series() -> dict:
    db = path_database(LENGTH, SIZE, DOMAIN, seed=SEED)
    query = path_query(LENGTH)
    interp = TDP(db, query)
    compiled = TDP(db, query)
    assert install_kernels(compiled, engine="bench")

    full = interp.expand_best([interp.root_bucket().best_tuple])
    deviation = full[:1]  # the prefix shape Lawler deviations probe

    ops = {
        "prefix_priority": (
            lambda t: t.prefix_priority(deviation),
        ),
        "expand_best": (
            lambda t: t.expand_best(list(deviation)),
        ),
        "solution_row": (
            lambda t: t.solution_row(full),
        ),
    }
    series = {}
    for name, (call,) in ops.items():
        interp_s = _best_of(call, interp)
        compiled_s = _best_of(call, compiled)
        series[name] = {
            "interpreted_us": round(interp_s / MICRO_CALLS * 1e6, 4),
            "compiled_us": round(compiled_s / MICRO_CALLS * 1e6, 4),
            "speedup": round(interp_s / compiled_s, 2),
        }
    series_max = max(entry["speedup"] for entry in series.values())
    return {"ops": series, "max_speedup": series_max}


def bulk_load_series() -> dict:
    rows = [(i % 97, (i * 7) % 89, float(i)) for i in range(BULK_ROWS)]
    weights = [0.001 * (i % 1000) for i in range(BULK_ROWS)]

    start = time.perf_counter()
    per_row = Relation("R", ("a", "b", "c"))
    for row, weight in zip(rows, weights):
        per_row.add(row, weight)
    per_row_s = time.perf_counter() - start

    start = time.perf_counter()
    bulk = Relation("R", ("a", "b", "c"))
    bulk.bulk_load(rows, weights)
    bulk_s = time.perf_counter() - start
    assert bulk.rows == per_row.rows and bulk.weights == per_row.weights

    start = time.perf_counter()
    order = bulk.columnar().sorted_order()
    columnar_sort_s = time.perf_counter() - start

    return {
        "rows": BULK_ROWS,
        "per_row_add_ms": round(per_row_s * 1e3, 2),
        "bulk_load_ms": round(bulk_s * 1e3, 2),
        "speedup": round(per_row_s / bulk_s, 2),
        "columnar_sort_ms": round(columnar_sort_s * 1e3, 2),
        "sorted_rows": len(order),
    }


def end_to_end_series() -> dict:
    db = path_database(LENGTH, SIZE, DOMAIN, seed=SEED)
    query = path_query(LENGTH)
    series = {}
    for method in ("part:lazy", "rec"):
        timings = {}
        streams = {}
        for label, flag in (("interpreted", False), ("compiled", True)):
            start = time.perf_counter()
            streams[label] = list(
                rank_enumerate(db, query, method=method, k=K, compile_kernels=flag)
            )
            timings[label] = time.perf_counter() - start
        assert streams["compiled"] == streams["interpreted"], method
        series[method] = {
            "k": K,
            "interpreted_ms": round(timings["interpreted"] * 1e3, 2),
            "compiled_ms": round(timings["compiled"] * 1e3, 2),
            "speedup": round(timings["interpreted"] / timings["compiled"], 2),
            "byte_identical": True,
        }
    return series


def main() -> None:
    micro = kernel_micro_series()
    bulk = bulk_load_series()
    end_to_end = end_to_end_series()

    print_table(
        "E26: compiled vs interpreted kernel micro-ops "
        f"(path len={LENGTH}, n={SIZE})",
        ("op", "interpreted us", "compiled us", "speedup"),
        [
            (name, entry["interpreted_us"], entry["compiled_us"],
             f"{entry['speedup']}x")
            for name, entry in micro["ops"].items()
        ],
    )
    print_table(
        "E26: bulk materialization",
        ("rows", "per-row add ms", "bulk_load ms", "speedup",
         "columnar sort ms"),
        [(
            bulk["rows"], bulk["per_row_add_ms"], bulk["bulk_load_ms"],
            f"{bulk['speedup']}x", bulk["columnar_sort_ms"],
        )],
    )
    print_table(
        f"E26: end-to-end rank_enumerate (k={K}, informational)",
        ("method", "interpreted ms", "compiled ms", "speedup", "identical"),
        [
            (method, entry["interpreted_ms"], entry["compiled_ms"],
             f"{entry['speedup']}x", entry["byte_identical"])
            for method, entry in end_to_end.items()
        ],
    )

    assert micro["max_speedup"] >= MIN_KERNEL_SPEEDUP, (
        f"best kernel micro-op speedup {micro['max_speedup']}x "
        f"below the {MIN_KERNEL_SPEEDUP}x floor"
    )
    print(
        f"\nbest kernel micro-op speedup {micro['max_speedup']}x "
        f">= {MIN_KERNEL_SPEEDUP}x floor"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"
    payload = {
        "bench": "e26_columnar",
        "instance": {
            "length": LENGTH, "size": SIZE, "domain": DOMAIN, "seed": SEED,
        },
        "kernel_micro": micro,
        "bulk_materialization": bulk,
        "end_to_end": end_to_end,
        "min_kernel_speedup": MIN_KERNEL_SPEEDUP,
    }
    with out.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"JSON report written to {out}")


if __name__ == "__main__":
    main()
