"""E8 — §4 claims: any-k algorithms return the first ranked results far
before the batch baseline (TTF ≈ preprocessing ≪ full join + sort) while
remaining competitive for the full output (TTL), with near-constant delay.

Series: work to first result (TTF), to k=1000 (TTK) and to last (TTL) for
ANYK-PART(lazy), ANYK-REC and batch, over path length ℓ and input size n.
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

CONFIGS = [(2, 500), (3, 300), (4, 150), (4, 300)]  # (length, n)
K_MID = 1000
METHODS = ("part:lazy", "rec", "batch")


def _measure(db, query, method):
    counters = Counters()
    stream = rank_enumerate(db, query, method=method, counters=counters)
    ttf = ttk = None
    count = 0
    for count, _ in enumerate(stream, start=1):
        if count == 1:
            ttf = counters.total_work()
        if count == K_MID:
            ttk = counters.total_work()
    return ttf or 0, ttk or counters.total_work(), counters.total_work(), count


def _series():
    rows = []
    stats = {}
    for length, n in CONFIGS:
        db = path_database(length, n, max(4, n // 12), seed=41)
        query = path_query(length)
        for method in METHODS:
            ttf, ttk, ttl, results = _measure(db, query, method)
            rows.append((length, n, method, results, ttf, ttk, ttl))
            stats[(length, n, method)] = (ttf, ttk, ttl, results)
    return rows, stats


def bench_e8_anyk_vs_batch_on_paths(benchmark):
    rows, stats = _series()
    print_table(
        f"E8: any-k vs batch on path queries (work to first / k={K_MID} / last)",
        ["len", "n", "method", "results", "TTF", f"TT({K_MID})", "TTL"],
        rows,
    )
    for length, n in CONFIGS:
        batch_ttf = stats[(length, n, "batch")][0]
        for method in ("part:lazy", "rec"):
            ttf, _, ttl, results = stats[(length, n, method)]
            if results < 2:
                continue
            # TTF: any-k must not pay the full join+sort.
            assert ttf < batch_ttf, (length, n, method)
            # TTL: within a moderate constant of batch.
            batch_ttl = stats[(length, n, "batch")][2]
            assert ttl < 40 * batch_ttl, (length, n, method)
    print("shape: any-k TTF < batch TTF everywhere; TTL within constant factor")

    db = path_database(4, 300, 25, seed=41)
    benchmark.pedantic(
        lambda: next(iter(rank_enumerate(db, path_query(4), method="part:lazy"))),
        rounds=3,
        iterations=1,
    )
