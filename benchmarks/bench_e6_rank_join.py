"""E6 — Part 1 claim: rank joins (HRJN family) win when the top results
come from the top of the inputs, and must descend — paying accesses — when
the constituent tuples of the winners sit deep ("how deep down the list
they have to go").

Series: sorted accesses to the top-1/top-5 result as a function of the
planted winner depth, for HRJN (alternate) and HRJN* (corner bound).
"""

from repro.data.generators import rank_join_database
from repro.query.cq import path_query
from repro.topk.rank_join import rank_join_topk
from repro.util.counters import Counters

from common import print_table

SIZE = 2000
DEPTHS = (10, 50, 250, 1000)


def _series():
    query = path_query(2)
    rows = []
    depth_costs = {}
    for depth in DEPTHS:
        db = rank_join_database(SIZE, depth, seed=31)
        entry = [depth]
        for strategy in ("alternate", "corner"):
            for k in (1, 5):
                c = Counters()
                got = rank_join_topk(db, query, k=k, counters=c, strategy=strategy)
                assert got, (depth, strategy, k)
                entry.append(c.sorted_accesses)
        rows.append(tuple(entry))
        depth_costs[depth] = entry[1]  # alternate, k=1
    return rows, depth_costs


def bench_e6_rank_join_depth(benchmark):
    rows, depth_costs = _series()
    print_table(
        f"E6: rank join sorted accesses vs winner depth (|R|=|S|={SIZE})",
        ["depth", "HRJN k=1", "HRJN k=5", "HRJN* k=1", "HRJN* k=5"],
        rows,
    )
    # Shape: accesses grow monotonically (and roughly linearly) with depth.
    assert depth_costs[50] > depth_costs[10]
    assert depth_costs[250] > depth_costs[50]
    assert depth_costs[1000] > depth_costs[250]
    assert depth_costs[1000] > 10 * depth_costs[10]
    # Early termination at shallow depth: a small fraction of the input.
    assert depth_costs[10] < SIZE // 4

    db = rank_join_database(SIZE, 250, seed=31)
    benchmark.pedantic(
        lambda: rank_join_topk(db, path_query(2), k=5), rounds=3, iterations=1
    )
