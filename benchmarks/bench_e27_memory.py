"""E27: the space profiler audits itself — model bytes vs tracemalloc.

:mod:`repro.obs.memory` charges every engine structure a *calibrated*
bytes-per-entry price instead of walking live objects, so the hot path
stays O(1).  A model that cheap is only trustworthy if it tracks what
the allocator actually does.  This bench holds it to three claims:

- **Honesty** — the model accounts *retained* engine state, so it is
  compared against ``tracemalloc``'s retained delta measured at the
  k-th result with the engine state fully built and still alive (after
  a ``gc.collect()``), per engine: the model must land within 2x, both
  sides.  The raw allocator *peak* — which additionally counts
  transient join-phase churn the model deliberately does not cover —
  is recorded alongside as context.
- **The paper's space story** — ANYK-REC memoizes ranked suffixes, so
  its peak memory grows with k while ANYK-PART carries only its
  priority-queue frontier.  The absolute REC−PART gap must widen
  monotonically with k and REC must peak strictly above PART at the
  largest k.
- **Degrade, don't die** — a service under a deliberately tiny
  ``--max-mem-mb`` watermark refuses admission with the clean
  ``mem_pressure`` error code (never ``internal``), keeps serving held
  cursors, and recovers once they close.

It also re-measures the accounting tax: enumeration with a tracker
attached vs without, median over repeats, recorded and bounded (the
same ≤5% guard the tracing layer lives under).

Writes ``BENCH_memory.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_e27_memory.py
"""

from __future__ import annotations

import gc
import json
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

from repro.anyk.api import rank_enumerate  # noqa: E402
from repro.data.generators import path_database  # noqa: E402
from repro.obs import MemoryProfile, attach_tracker  # noqa: E402
from repro.query.cq import path_query  # noqa: E402
from repro.server import QueryService  # noqa: E402
from repro.util.counters import Counters  # noqa: E402

SEED = 7
ENGINES = ("part:lazy", "part:eager", "rec", "batch")
#: Cross-check enumeration size: big enough that engine state (not the
#: fixed T-DP skeleton) dominates the tracemalloc delta.
CROSS_K = 4000
#: The model must land within this factor of tracemalloc, both sides.
MODEL_BAND = 2.0
SEPARATION_KS = (100, 500, 2000, 8000)
OVERHEAD_REPEATS = 7
OVERHEAD_LIMIT = 0.05

SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT 2000"
)


def _drain(db, query, method: str, k: int, counters: Counters) -> int:
    emitted = 0
    for _ in rank_enumerate(db, query, method=method, k=k, counters=counters):
        emitted += 1
    return emitted


def cross_check(db, query) -> list[dict]:
    """Model peak vs tracemalloc's retained delta, per engine.

    The retained delta is read at the k-th yield — generator still
    alive, every engine structure at full size — after a collect, so
    it counts exactly what the model claims to count.  The allocator
    peak (transient churn included) rides along as context.
    """
    rows = []
    for method in ENGINES:
        # Warm up once so one-time costs outside the model's scope —
        # kernel compilation, plan/stat caches, interning — don't land
        # in the measured window.
        _drain(db, query, method, CROSS_K, Counters())
        profile = MemoryProfile()
        counters = Counters()
        attach_tracker(counters, profile)
        gc.collect()
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            base, _ = tracemalloc.get_traced_memory()
            emitted = 0
            retained = 0
            for _ in rank_enumerate(
                db, query, method=method, k=CROSS_K, counters=counters
            ):
                emitted += 1
                if emitted == CROSS_K:
                    gc.collect()
                    current, _ = tracemalloc.get_traced_memory()
                    retained = current - base
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        traced = max(1, retained)
        model = profile.peak_bytes
        ratio = model / traced
        rows.append(
            {
                "engine": method,
                "emitted": emitted,
                "model_peak_bytes": model,
                "tracemalloc_retained_bytes": traced,
                "tracemalloc_peak_bytes": peak - base,
                "model_over_retained": round(ratio, 3),
                "within_band": (1.0 / MODEL_BAND) <= ratio <= MODEL_BAND,
            }
        )
    return rows


def separation(db, query) -> dict:
    """PART-vs-REC accounted peak as k grows."""
    series = {"k": list(SEPARATION_KS), "part:lazy": [], "rec": []}
    for k in SEPARATION_KS:
        for method in ("part:lazy", "rec"):
            profile = MemoryProfile()
            counters = Counters()
            attach_tracker(counters, profile)
            _drain(db, query, method, k, counters)
            series[method].append(profile.peak_bytes)
    gaps = [
        rec - part for rec, part in zip(series["rec"], series["part:lazy"])
    ]
    series["rec_minus_part"] = gaps
    series["rec_over_part"] = [
        round(rec / max(1, part), 3)
        for rec, part in zip(series["rec"], series["part:lazy"])
    ]
    series["separation_widens"] = all(
        later > earlier for earlier, later in zip(gaps, gaps[1:])
    )
    series["rec_above_part_at_max_k"] = (
        series["rec"][-1] > series["part:lazy"][-1]
    )
    return series


def overhead(db, query) -> dict:
    """Median accounting tax: tracker attached vs plain counters."""

    def run(with_tracker: bool) -> float:
        counters = Counters()
        if with_tracker:
            attach_tracker(counters, MemoryProfile())
        start = time.perf_counter()
        _drain(db, query, "part:lazy", CROSS_K, counters)
        return time.perf_counter() - start

    plain, tracked = [], []
    for _ in range(OVERHEAD_REPEATS):
        plain.append(run(False))
        tracked.append(run(True))
    plain.sort()
    tracked.sort()
    base = plain[OVERHEAD_REPEATS // 2]
    tax = tracked[OVERHEAD_REPEATS // 2]
    ratio = tax / base - 1.0
    return {
        "plain_median_s": round(base, 6),
        "tracked_median_s": round(tax, 6),
        "overhead_fraction": round(ratio, 4),
        "limit": OVERHEAD_LIMIT,
        "within_limit": ratio <= OVERHEAD_LIMIT,
    }


def pressure_check(db) -> dict:
    """Tiny watermark → clean ``mem_pressure`` refusal and recovery."""
    service = QueryService(db, max_mem_mb=0.05, mem_evict_idle_s=60.0)
    try:
        codes = []
        held = []
        for request_id in range(32):
            response = service.handle(
                {"id": request_id, "op": "query", "sql": SQL, "fetch": 10}
            )
            if not response["ok"]:
                codes.append(response["error"]["code"])
                break
            held.append(response["cursor"])
        refused_clean = codes == ["mem_pressure"]
        stats = service.memory_stats()
        for cursor_id in held:
            service.close(cursor_id)
        after = service.handle(
            {"id": 99, "op": "query", "sql": SQL, "fetch": 5}
        )
        recovered = after["ok"] and len(after["rows"]) == 5
        return {
            "refusal_codes": codes,
            "refused_with_mem_pressure": refused_clean,
            "never_internal": "internal" not in codes,
            "rejections_counted": stats["pressure_rejections"] >= 1,
            "recovered_after_close": recovered,
        }
    finally:
        service.shutdown()


def main() -> int:
    db = path_database(length=3, size=400, domain=40, seed=SEED)
    query = path_query(3)

    model_rows = cross_check(db, query)
    print_table(
        "E27a: accounted peak vs tracemalloc retained (k=%d)" % CROSS_K,
        ["engine", "model B", "retained B", "alloc peak B", "model/retained", "within 2x"],
        [
            [
                r["engine"],
                r["model_peak_bytes"],
                r["tracemalloc_retained_bytes"],
                r["tracemalloc_peak_bytes"],
                r["model_over_retained"],
                r["within_band"],
            ]
            for r in model_rows
        ],
    )

    sep = separation(db, query)
    print_table(
        "E27b: PART vs REC accounted peak as k grows",
        ["k", "part:lazy B", "rec B", "rec-part B", "rec/part"],
        [
            list(row)
            for row in zip(
                sep["k"],
                sep["part:lazy"],
                sep["rec"],
                sep["rec_minus_part"],
                sep["rec_over_part"],
            )
        ],
    )

    tax = overhead(db, query)
    print_table(
        "E27c: accounting overhead (part:lazy, k=%d)" % CROSS_K,
        ["plain s", "tracked s", "overhead", "limit", "ok"],
        [
            [
                tax["plain_median_s"],
                tax["tracked_median_s"],
                tax["overhead_fraction"],
                tax["limit"],
                tax["within_limit"],
            ]
        ],
    )

    pressure = pressure_check(db)
    print_table(
        "E27d: watermark admission (max_mem_mb=0.05)",
        ["refusal codes", "clean", "never internal", "recovered"],
        [
            [
                ",".join(pressure["refusal_codes"]),
                pressure["refused_with_mem_pressure"],
                pressure["never_internal"],
                pressure["recovered_after_close"],
            ]
        ],
    )

    checks = {
        "model_within_2x": all(r["within_band"] for r in model_rows),
        "rec_above_part_at_max_k": sep["rec_above_part_at_max_k"],
        "separation_widens": sep["separation_widens"],
        "overhead_within_limit": tax["within_limit"],
        "mem_pressure_clean": (
            pressure["refused_with_mem_pressure"]
            and pressure["never_internal"]
            and pressure["recovered_after_close"]
        ),
    }
    report = {
        "bench": "e27_memory",
        "seed": SEED,
        "cross_check": model_rows,
        "separation": sep,
        "overhead": tax,
        "pressure": pressure,
        "checks": checks,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_memory.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print("FAILED checks: " + ", ".join(failed))
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
