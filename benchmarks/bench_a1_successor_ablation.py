"""A1 (ablation) — the ANYK-PART successor-strategy design space.

The five strategies trade bucket-preparation cost against per-deviation
cost: Eager pays b·log b per touched bucket upfront; Lazy/Quick pay per
rank requested; Take2 pays O(b) heapify and O(1) per pop; All pays nothing
upfront but floods the global queue.  The regime that separates them is
bucket size × how much of each bucket enumeration actually visits — this
ablation sweeps that regime via the join-key domain (small domain = few,
huge buckets) at fixed k.

Series: per domain size, heap operations and comparisons of each strategy
to the first k results.
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

SIZE, LENGTH, K = 600, 3, 200
DOMAINS = (2, 8, 64, 512)
STRATEGIES = ("part:eager", "part:lazy", "part:quick", "part:take2", "part:all")


def _series():
    query = path_query(LENGTH)
    rows = []
    per_domain = {}
    for domain in DOMAINS:
        db = path_database(LENGTH, SIZE, domain, seed=73)
        work = {}
        for method in STRATEGIES:
            counters = Counters()
            produced = 0
            for produced, _ in enumerate(
                rank_enumerate(db, query, method=method, counters=counters),
                start=1,
            ):
                if produced == K:
                    break
            work[method] = (
                counters.heap_ops,
                counters.comparisons,
                counters.total_work(),
            )
        rows.append(
            (domain,)
            + tuple(work[m][0] for m in STRATEGIES)
            + tuple(work[m][1] for m in STRATEGIES)
        )
        per_domain[domain] = work
    return rows, per_domain


def bench_a1_successor_strategies(benchmark):
    rows, per_domain = _series()
    heads = [m.split(":")[1] for m in STRATEGIES]
    print_table(
        f"A1: PART successor strategies to k={K} (path ℓ={LENGTH}, n={SIZE}; "
        "bucket size shrinks as domain grows)",
        ["domain"]
        + [f"heap {h}" for h in heads]
        + [f"cmp {h}" for h in heads],
        rows,
    )
    # Shape 1: with huge buckets (domain 2), the eager upfront sort pays
    # far more comparisons than lazy evaluation.
    huge = per_domain[DOMAINS[0]]
    assert huge["part:eager"][1] > 3 * huge["part:lazy"][1]
    # Shape 2: with big buckets, All floods the global queue relative to
    # Take2; with tiny buckets All is competitive (no variant dominates —
    # the companion paper's conclusion).
    for domain in DOMAINS[:-1]:
        work = per_domain[domain]
        assert work["part:all"][0] >= work["part:take2"][0], domain
    tiny = per_domain[DOMAINS[-1]]
    assert tiny["part:all"][0] <= tiny["part:take2"][0]
    # Shape 3: with tiny buckets every strategy's total work converges to
    # within a small factor.
    totals = [tiny[m][2] for m in STRATEGIES]
    assert max(totals) < 4 * min(totals)

    db = path_database(LENGTH, SIZE, DOMAINS[0], seed=73)
    benchmark.pedantic(
        lambda: list(
            rank_enumerate(db, path_query(LENGTH), method="part:take2", k=K)
        ),
        rounds=3,
        iterations=1,
    )
