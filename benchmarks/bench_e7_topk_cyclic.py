"""E7 — §2/§4 claim: top-k join algorithms analyzed in the RAM model suffer
from large intermediate results on cyclic joins — "we are particularly
interested in their worst-case behavior when some of the input tuples
contributing to the top-ranked result are at the bottom of an individual
input relation".

The adversarial instance (``fourcycle_decoy_database``) floods a left-deep
rank join's interior operator with Θ(n²) light 2-paths that never close a
cycle, while the genuine cycles are heavy.  The any-k route's full reducer
deletes the decoys in linear time per union tree.

Series: per n, RAM-model work to the top-1 lightest 4-cycle for the rank
join vs any-k; plus the easy regime (random graph) where the rank join is
competitive — the two sides of "neither framework subsumes the other".
"""

import itertools

from repro.anyk.api import rank_enumerate
from repro.data.generators import fourcycle_decoy_database, random_graph_database
from repro.query.cq import cycle_query
from repro.topk.rank_join import rank_join_stream
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (100, 200, 400, 800)


def _top1_work(db, query):
    c_rj, c_anyk = Counters(), Counters()
    rj = list(itertools.islice(rank_join_stream(db, query, counters=c_rj), 1))
    ak = list(rank_enumerate(db, query, k=1, counters=c_anyk))
    assert rj and ak
    assert round(rj[0][1], 9) == round(float(ak[0][1]), 9), "engines disagree"
    return c_rj, c_anyk


def _series():
    query = cycle_query(4)
    rows, rj_costs, anyk_costs = [], [], []
    for n in SIZES:
        db = fourcycle_decoy_database(n, seed=37)
        c_rj, c_anyk = _top1_work(db, query)
        rows.append(
            (
                n,
                c_rj.intermediate_tuples,
                c_rj.total_work(),
                c_anyk.intermediate_tuples,
                c_anyk.total_work(),
            )
        )
        rj_costs.append(c_rj.total_work())
        anyk_costs.append(c_anyk.total_work())
    return rows, rj_costs, anyk_costs


def bench_e7_topk_on_cyclic_joins(benchmark):
    rows, rj_costs, anyk_costs = _series()
    print_table(
        "E7: top-1 lightest 4-cycle on the decoy instance — rank join vs any-k",
        ["edges n", "rj intermediates", "rj work", "anyk intermediates", "anyk work"],
        rows,
    )
    e_rj = growth_exponent(SIZES, rj_costs)
    e_anyk = growth_exponent(SIZES, anyk_costs)
    print(
        f"growth exponents: rank-join={e_rj:.2f} (paper: ~2), "
        f"any-k={e_anyk:.2f} (paper: <=1.5)"
    )
    assert e_rj > 1.6
    assert e_anyk < 1.5
    assert anyk_costs[-1] < rj_costs[-1]

    # The easy regime for contrast: random graph with light genuine cycles;
    # there the rank join's early termination is competitive (not asserted
    # beyond agreement — the tutorial's "neither dominates" message).
    easy = random_graph_database(400, 57, seed=37)
    c_rj, c_anyk = _top1_work(easy, cycle_query(4))
    print(
        f"easy regime (random graph, 400 edges): rank-join work="
        f"{c_rj.total_work()}, any-k work={c_anyk.total_work()}"
    )

    db = fourcycle_decoy_database(SIZES[-1], seed=37)
    benchmark.pedantic(
        lambda: list(rank_enumerate(db, cycle_query(4), k=1)),
        rounds=3,
        iterations=1,
    )
