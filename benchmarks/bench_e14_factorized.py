"""E14 — §3 claim (factorised databases): representing the result in
factorized form reduces its size from Θ(n^|Q|) to O~(n) for acyclic
queries, and aggregates evaluate on the circuit in O~(n) regardless of the
flat output size.

Series: per path length ℓ (fixed n), flat output size vs factorized size,
compression ratio, and the O~(n) work of count/min/sum aggregates.
"""

from repro.data.generators import path_database
from repro.factorized import (
    COUNT,
    MIN_WEIGHT,
    SUM_WEIGHT,
    FactorizedRepresentation,
    aggregate,
)
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZE, DOMAIN = 120, 4  # tiny domain: flat output explodes with length
LENGTHS = (2, 3, 4, 5)


def _series():
    rows = []
    flat_sizes, frep_sizes, agg_work = [], [], []
    for length in LENGTHS:
        db = path_database(length, SIZE, DOMAIN, seed=67)
        query = path_query(length)
        counters = Counters()
        frep = FactorizedRepresentation(db, query, counters=counters)
        build_work = counters.total_work()
        flat = aggregate(frep, COUNT)
        best = aggregate(frep, MIN_WEIGHT)
        total = aggregate(frep, SUM_WEIGHT)
        agg = counters.total_work() - build_work
        rows.append(
            (
                length,
                frep.size(),
                flat,
                round(flat / max(1, frep.size()), 1),
                agg,
                round(best, 3),
                round(total, 1),
            )
        )
        flat_sizes.append(max(1, flat))
        frep_sizes.append(frep.size())
        agg_work.append(agg)
    return rows, flat_sizes, frep_sizes, agg_work


def bench_e14_factorized_size_and_aggregates(benchmark):
    rows, flat_sizes, frep_sizes, agg_work = _series()
    print_table(
        f"E14: factorized vs flat result size (path queries, n={SIZE}, "
        f"domain={DOMAIN})",
        ["len", "frep size", "flat size", "ratio", "aggregate work", "min w", "sum w"],
        rows,
    )
    e_flat = growth_exponent(LENGTHS, flat_sizes)
    e_frep = growth_exponent(LENGTHS, frep_sizes)
    print(
        f"growth with query length: flat={e_flat:.2f} (exponential in ℓ), "
        f"factorized={e_frep:.2f} (paper: linear in n, ~flat in ℓ)"
    )
    # Shapes: flat explodes with length, frep stays ~n per stage, aggregate
    # work never looks like the flat size.
    assert flat_sizes[-1] > 100 * frep_sizes[-1]
    assert frep_sizes[-1] <= LENGTHS[-1] * SIZE
    assert agg_work[-1] < flat_sizes[-1] / 10

    db = path_database(LENGTHS[-1], SIZE, DOMAIN, seed=67)
    query = path_query(LENGTHS[-1])
    benchmark.pedantic(
        lambda: aggregate(FactorizedRepresentation(db, query), COUNT),
        rounds=3,
        iterations=1,
    )
