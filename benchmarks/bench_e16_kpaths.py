"""E16 — §4 lineage claim: any-k algorithms *are* k-shortest-path
algorithms in disguise — Hoffman–Pavley (1959) deviations ≙ ANYK-PART,
Jiménez–Marzal REA ≙ ANYK-REC — and on path queries the layered-graph
reduction makes them interchangeable.

Series: per n, work to the first 200 ranked answers of a path query for
(a) ANYK-PART / ANYK-REC on the T-DP and (b) Hoffman–Pavley / REA on the
layered DAG, with identical weight sequences verified.
"""

import itertools

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.paths.graph import path_query_as_graph
from repro.paths.hoffman_pavley import hoffman_pavley
from repro.paths.rea import recursive_enumeration
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

LENGTH, K = 3, 200
SIZES = (100, 200, 400)


def _series():
    query = path_query(LENGTH)
    rows = []
    for n in SIZES:
        db = path_database(LENGTH, n, max(4, n // 10), seed=89)
        graph, source, target = path_query_as_graph(db, query)

        weights = {}
        work = {}
        for name, stream_factory in (
            (
                "anyk-part",
                lambda c: rank_enumerate(db, query, method="part:lazy", counters=c),
            ),
            (
                "anyk-rec",
                lambda c: rank_enumerate(db, query, method="rec", counters=c),
            ),
            (
                "hoffman-pavley",
                lambda c: (
                    (None, cost)
                    for _, cost in hoffman_pavley(graph, source, target, counters=c)
                ),
            ),
            (
                "rea",
                lambda c: (
                    (None, cost)
                    for _, cost in recursive_enumeration(
                        graph, source, target, counters=c
                    )
                ),
            ),
        ):
            counters = Counters()
            stream = stream_factory(counters)
            ws = [
                round(float(w), 9)
                for _, w in itertools.islice(stream, K)
            ]
            weights[name] = ws
            work[name] = counters.total_work()
        for name in ("anyk-rec", "hoffman-pavley", "rea"):
            assert weights[name] == weights["anyk-part"], (n, name)
        rows.append(
            (
                n,
                len(weights["anyk-part"]),
                work["anyk-part"],
                work["anyk-rec"],
                work["hoffman-pavley"],
                work["rea"],
            )
        )
    return rows


def bench_e16_kshortest_lineage(benchmark):
    rows = _series()
    print_table(
        f"E16: path query top-{K} — any-k vs classic k-shortest paths "
        "(identical weight sequences asserted)",
        ["n", "returned", "anyk-part", "anyk-rec", "hoffman-pavley", "rea"],
        rows,
    )
    print(
        "shape: all four produce the same ranked sequence; the T-DP pair "
        "and the graph pair scale alike (same algorithms, two guises)"
    )
    # Loose sanity: no approach explodes relative to its sibling.
    for row in rows:
        _, _, part, rec, hp, rea = row
        family_min = min(part, rec, hp, rea)
        assert max(part, rec, hp, rea) < 60 * family_min

    db = path_database(LENGTH, SIZES[-1], SIZES[-1] // 10, seed=89)
    graph, source, target = path_query_as_graph(db, path_query(LENGTH))
    benchmark.pedantic(
        lambda: list(itertools.islice(hoffman_pavley(graph, source, target), K)),
        rounds=3,
        iterations=1,
    )
