"""E22: SLO under load — wire cost vs engine cost, scenario by scenario.

Runs each built-in scenario twice on the same seeded trace: once
in-process (protocol dicts straight into ``QueryService``) and once
over real TCP sockets, so the difference between the two latency
columns *is* the wire (JSON framing + TCP + the thread-pool handler).
Replay validation stays on throughout: every sampled page must match a
serial recompute on its cursor's pinned snapshot, so the bench doubles
as a correctness gate for the session/parallel/dynamic layers under
genuine concurrency.

Writes the wire read-mostly report to ``BENCH_workload.json`` — the
machine-readable series future performance PRs are judged against.

Run with::

    PYTHONPATH=src python benchmarks/bench_e22_workload.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

from repro.workload import SCENARIOS, run_scenario  # noqa: E402

SEED = 7
DURATION = 3.0
CLIENTS = 4
SAMPLE = 0.25


def main() -> None:
    rows = []
    saved_report = None
    for name in sorted(SCENARIOS):
        for mode in ("inprocess", "wire"):
            result = run_scenario(
                name,
                seed=SEED,
                duration=DURATION,
                clients=CLIENTS,
                mode=mode,
                sample=SAMPLE,
            )
            report = result.report
            query = report["ops"]["query"]
            ttfr = report["ttfr_ms"]
            validation = report["validation"]
            rows.append(
                (
                    name,
                    mode,
                    report["trace"]["queries"],
                    report["trace"]["mutations"],
                    query.get("p50_ms", 0.0),
                    query.get("p99_ms", 0.0),
                    ttfr.get("p50_ms", 0.0),
                    ttfr.get("p99_ms", 0.0),
                    report["throughput"]["ops_per_s"],
                    report["errors"]["total"],
                    f"{validation['mismatches']}/{validation['checked']}",
                )
            )
            assert report["errors"]["total"] == 0, (name, mode, report["errors"])
            assert validation["mismatches"] == 0, (name, mode)
            if name == "read-mostly" and mode == "wire":
                saved_report = report

    print_table(
        f"E22: load-test SLOs (seed {SEED}, {DURATION:g}s horizon, "
        f"{CLIENTS} clients; replay validation on)",
        (
            "scenario",
            "mode",
            "queries",
            "muts",
            "q p50",
            "q p99",
            "ttfr p50",
            "ttfr p99",
            "op/s",
            "err",
            "miss/chk",
        ),
        rows,
    )
    print(
        "\nEvery sampled page matched a serial recompute on its pinned "
        "snapshot; the wire-vs-inprocess latency gap is the protocol cost."
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_workload.json"
    with out.open("w", encoding="utf-8") as handle:
        json.dump(saved_report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wire read-mostly report written to {out}")


if __name__ == "__main__":
    main()
