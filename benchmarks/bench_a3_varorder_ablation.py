"""A3 (ablation) — variable order in worst-case-optimal joins.

WCO guarantees hold for *any* global variable order, but constants differ:
orders that bind selective variables first shrink candidate sets earlier.
This ablation runs Generic-Join and Leapfrog under every variable order of
the triangle query on a skewed graph and reports the spread — the reason
practical systems pair WCO algorithms with order heuristics.

Series: per variable order, hash probes (Generic-Join) and comparisons
(Leapfrog); plus the max/min spread.
"""

import itertools

from repro.data.generators import random_graph_database
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.query.cq import triangle_query
from repro.util.counters import Counters

from common import print_table

EDGES, NODES = 900, 60


def _series():
    db = random_graph_database(EDGES, NODES, seed=83, weight_range=(0.0, 1.0))
    query = triangle_query(("E", "E", "E"))
    rows = []
    gj_costs, lftj_costs = [], []
    reference = None
    for order in itertools.permutations(query.variables):
        c_gj, c_lftj = Counters(), Counters()
        out = generic_join(db, query, var_order=order, counters=c_gj)
        leapfrog_join(db, query, var_order=order, counters=c_lftj)
        if reference is None:
            reference = len(out)
        assert len(out) == reference  # same output under every order
        rows.append(
            (
                "".join(order),
                len(out),
                c_gj.hash_probes,
                c_gj.total_work(),
                c_lftj.comparisons,
                c_lftj.total_work(),
            )
        )
        gj_costs.append(c_gj.total_work())
        lftj_costs.append(c_lftj.total_work())
    return rows, gj_costs, lftj_costs


def bench_a3_variable_order(benchmark):
    rows, gj_costs, lftj_costs = _series()
    print_table(
        f"A3: variable-order sweep for the triangle ({EDGES} edges)",
        ["order", "output", "gj probes", "gj work", "lftj cmp", "lftj work"],
        rows,
    )
    spread_gj = max(gj_costs) / min(gj_costs)
    spread_lftj = max(lftj_costs) / min(lftj_costs)
    print(
        f"work spread across orders: generic-join x{spread_gj:.2f}, "
        f"leapfrog x{spread_lftj:.2f} (same asymptotics, different constants)"
    )
    # Shape: all orders produce identical output (asserted above) and the
    # spread stays a constant factor — no order breaks worst-case bounds.
    assert spread_gj < 10
    assert spread_lftj < 10

    db = random_graph_database(EDGES, NODES, seed=83)
    benchmark.pedantic(
        lambda: generic_join(db, triangle_query(("E", "E", "E"))),
        rounds=3,
        iterations=1,
    )
