"""E13 — §4: the T-DP is a *non-serial* dynamic program — it handles
arbitrary join trees, not just paths.  Star queries are the extreme case
(one root, many leaves, gigantic outputs): any-k must still deliver the
first results after linear preprocessing while batch pays for the whole
product.

Series: per fan-out (arms), output size, TTF of any-k vs batch, and TT(k)
for a fixed k, on star queries.
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import star_database
from repro.query.cq import star_query
from repro.util.counters import Counters

from common import print_table

ARMS = (2, 3, 4)
SIZE, DOMAIN = 120, 6
K = 500


def _measure(db, query, method):
    counters = Counters()
    stream = rank_enumerate(db, query, method=method, counters=counters)
    ttf = None
    count = 0
    for count, _ in enumerate(stream, start=1):
        if count == 1:
            ttf = counters.total_work()
        if count == K:
            break
    return ttf or 0, counters.total_work(), count


def _series():
    rows = []
    stats = {}
    for arms in ARMS:
        db = star_database(arms, SIZE, DOMAIN, seed=61)
        query = star_query(arms)
        total = sum(1 for _ in rank_enumerate(db, query, method="batch"))
        for method in ("part:lazy", "rec", "batch"):
            ttf, ttk, _ = _measure(db, query, method)
            rows.append((arms, total, method, ttf, ttk))
            stats[(arms, method)] = (ttf, ttk)
    return rows, stats


def bench_e13_star_tdp_generality(benchmark):
    rows, stats = _series()
    print_table(
        f"E13: star queries (n={SIZE}/arm) — TTF and TT({K})",
        ["arms", "output", "method", "TTF", f"TT({K})"],
        rows,
    )
    for arms in ARMS:
        batch_ttf = stats[(arms, "batch")][0]
        for method in ("part:lazy", "rec"):
            assert stats[(arms, method)][0] < batch_ttf, (arms, method)
    # The gap widens with fan-out: batch TTF explodes with output size,
    # any-k TTF stays near-linear in input.
    gap = {
        arms: stats[(arms, "batch")][0] / max(1, stats[(arms, "part:lazy")][0])
        for arms in ARMS
    }
    print(f"batch/any-k TTF gap by arms: {dict(sorted(gap.items()))}")
    assert gap[ARMS[-1]] > gap[ARMS[0]]

    db = star_database(3, SIZE, DOMAIN, seed=61)
    benchmark.pedantic(
        lambda: list(rank_enumerate(db, star_query(3), k=K)),
        rounds=3,
        iterations=1,
    )
