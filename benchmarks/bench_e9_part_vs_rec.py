"""E9 — §4 claim: neither Lawler–Murty (ANYK-PART) nor recursive
enumeration (ANYK-REC) dominates the other: PART tends to win for small k,
REC amortizes suffix sharing and catches up (or wins) toward the full
output.

Series: per method (all PART strategies + REC), work to k ∈ {1, 10%, 100%}
of the output on a path query with heavy suffix sharing (small domain).
"""

from repro.anyk.api import METHODS, rank_enumerate
from repro.anyk.ranking import SUM
from repro.data.generators import path_database
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

ANYTIME_METHODS = [m for m in METHODS if m.startswith("part:")] + ["rec"]
LENGTH, SIZE, DOMAIN = 4, 250, 12  # small domain => shared suffixes


def _series():
    db = path_database(LENGTH, SIZE, DOMAIN, seed=43)
    query = path_query(LENGTH)
    total = sum(1 for _ in rank_enumerate(db, query, method="batch"))
    checkpoints = [1, max(2, total // 10), total]
    rows = []
    work = {}
    for method in ANYTIME_METHODS:
        counters = Counters()
        stream = rank_enumerate(db, query, method=method, counters=counters)
        marks = {}
        for count, _ in enumerate(stream, start=1):
            if count in (checkpoints[0], checkpoints[1]):
                marks[count] = counters.total_work()
        marks[total] = counters.total_work()
        rows.append(
            (method, total, marks[checkpoints[0]], marks[checkpoints[1]], marks[total])
        )
        work[method] = marks
    return rows, work, checkpoints, total


def bench_e9_part_variants_vs_rec(benchmark):
    rows, work, checkpoints, total = _series()
    print_table(
        f"E9: PART strategies vs REC on a shared-suffix path query "
        f"(ℓ={LENGTH}, n={SIZE}, |output|={total})",
        ["method", "results", "TTF", f"TT({checkpoints[1]})", "TTL"],
        rows,
    )
    # Shape: "neither dominates" — some PART variant beats REC early, and
    # REC overtakes part of the PART family by the later checkpoints
    # (its memoized suffixes amortize).
    rec = work["rec"]
    part_variants = [m for m in ANYTIME_METHODS if m.startswith("part:")]
    best_part_first = min(work[m][checkpoints[0]] for m in part_variants)
    assert best_part_first <= rec[checkpoints[0]], "PART must win early"
    beaten_late = [
        m
        for m in part_variants
        if rec[checkpoints[1]] < work[m][checkpoints[1]]
        or rec[total] < work[m][total]
    ]
    print(
        f"REC work: k=1 {rec[checkpoints[0]]}, mid {rec[checkpoints[1]]}, "
        f"all {rec[total]}; overtakes PART variants {beaten_late} late"
    )
    assert beaten_late, "REC must overtake some PART variant for large k"
    # And the whole family stays within a small factor at the end.
    ttl = {m: work[m][total] for m in ANYTIME_METHODS}
    assert max(ttl.values()) < 6 * min(ttl.values())

    db = path_database(LENGTH, SIZE, DOMAIN, seed=43)
    benchmark.pedantic(
        lambda: list(rank_enumerate(db, path_query(LENGTH), method="rec", k=50)),
        rounds=3,
        iterations=1,
    )
