"""E5 — Part 1 claim: NRA avoids random accesses entirely at the price of
deeper sorted access and per-round bookkeeping (RAM-model work) — the
trade-off the tutorial uses to motivate analyzing top-k algorithms in the
RAM model, where bookkeeping is not free.

Series: per regime and k, NRA sorted accesses and RAM-model comparisons vs
TA's two access kinds.
"""

from repro.data.generators import scored_lists
from repro.topk.access import VerticalSource
from repro.topk.ca import combined_algorithm
from repro.topk.nra import nra
from repro.topk.threshold import threshold_algorithm
from repro.util.counters import Counters

from common import print_table

OBJECTS = 2000
KS = (1, 10)
CA_RATIO = 10


def _series():
    rows = []
    summary = {}
    for correlation in ("correlated", "independent", "inverse"):
        lists = scored_lists(OBJECTS, 3, correlation, seed=29)
        for k in KS:
            c_ta, c_nra, c_ca = Counters(), Counters(), Counters()
            threshold_algorithm(VerticalSource(lists, c_ta), k)
            nra(VerticalSource(lists, c_nra), k)
            combined_algorithm(VerticalSource(lists, c_ca), k, ratio=CA_RATIO)
            rows.append(
                (
                    correlation,
                    k,
                    c_ta.sorted_accesses,
                    c_ta.random_accesses,
                    c_nra.sorted_accesses,
                    c_nra.random_accesses,
                    c_ca.sorted_accesses,
                    c_ca.random_accesses,
                )
            )
            summary[(correlation, k)] = (c_ta, c_nra, c_ca)
    return rows, summary


def bench_e5_nra_access_profile(benchmark):
    rows, summary = _series()
    print_table(
        f"E5: TA vs NRA vs CA(ratio={CA_RATIO}) accesses "
        f"({OBJECTS} objects x 3 lists)",
        [
            "lists", "k",
            "TA sorted", "TA random",
            "NRA sorted", "NRA random",
            "CA sorted", "CA random",
        ],
        rows,
    )
    for (correlation, k), (c_ta, c_nra, c_ca) in summary.items():
        # NRA's defining property: zero random accesses.
        assert c_nra.random_accesses == 0, (correlation, k)
        # The price: at least as many sorted accesses as TA needed.
        assert c_nra.sorted_accesses >= c_ta.sorted_accesses, (correlation, k)
        # CA interpolates: fewer random accesses than TA, some unlike NRA.
        assert c_ca.random_accesses <= c_ta.random_accesses, (correlation, k)

    lists = scored_lists(OBJECTS, 3, "independent", seed=29)
    benchmark.pedantic(
        lambda: nra(VerticalSource(lists), 10), rounds=3, iterations=1
    )
