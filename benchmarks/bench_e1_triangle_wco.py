"""E1 — §3 claim: on the adversarial triangle instance every binary join
plan does Θ(n²) work while WCO joins do O~(n^1.5) (here ~linear, since the
instance's actual output is linear).

Series: per n, intermediate tuples of the best/worst binary plan vs total
work of Generic-Join and Leapfrog, plus empirical growth exponents.
"""

from repro.data.generators import triangle_worstcase_database
from repro.joins.binary_plan import best_left_deep, worst_left_deep
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.query.agm import agm_bound
from repro.query.cq import triangle_query
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (40, 80, 160, 320)


def _series():
    query = triangle_query()
    rows = []
    binary_costs, gj_costs, lftj_costs = [], [], []
    for n in SIZES:
        db = triangle_worstcase_database(n)
        _, best_binary = best_left_deep(db, query)
        _, worst_binary = worst_left_deep(db, query)
        c_gj, c_lftj = Counters(), Counters()
        out = generic_join(db, query, counters=c_gj)
        leapfrog_join(db, query, counters=c_lftj)
        rows.append(
            (
                n,
                len(out),
                int(agm_bound(db, query)),
                best_binary,
                worst_binary,
                c_gj.total_work(),
                c_lftj.total_work(),
            )
        )
        binary_costs.append(best_binary)
        gj_costs.append(c_gj.total_work())
        lftj_costs.append(c_lftj.total_work())
    return rows, binary_costs, gj_costs, lftj_costs


def bench_e1_triangle_binary_vs_wco(benchmark):
    rows, binary_costs, gj_costs, lftj_costs = _series()
    print_table(
        "E1: adversarial triangle — binary plans vs WCO (operation counts)",
        ["n", "output", "AGM", "best binary", "worst binary", "generic-join", "leapfrog"],
        rows,
    )
    print(
        f"growth exponents: best-binary={growth_exponent(SIZES, binary_costs):.2f} "
        f"(paper: 2), generic-join={growth_exponent(SIZES, gj_costs):.2f}, "
        f"leapfrog={growth_exponent(SIZES, lftj_costs):.2f} (paper: ~1 on this "
        "instance; <= 1.5 in general)"
    )
    # Shape assertions: binary is quadratic-ish, WCO clearly subquadratic.
    assert growth_exponent(SIZES, binary_costs) > 1.7
    assert growth_exponent(SIZES, gj_costs) < 1.4
    assert binary_costs[-1] > 5 * gj_costs[-1]

    db = triangle_worstcase_database(SIZES[-1])
    benchmark.pedantic(
        lambda: generic_join(db, triangle_query()), rounds=3, iterations=1
    )
