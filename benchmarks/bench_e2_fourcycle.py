"""E2 — §1 claim: the Boolean 4-cycle query is answerable in O~(n^1.5)
while WCO full evaluation is Θ(n²) in the worst case, and finding the
top-k lightest 4-cycles costs close to the Boolean query.

Series: per n (edges), work of (a) WCO full enumeration, (b) heavy/light
Boolean detection, (c) any-k top-10 through the union of trees, on random
graphs whose 4-cycle count grows super-linearly.
"""

from repro.anyk.api import rank_enumerate
from repro.data.generators import random_graph_database
from repro.joins.boolean import fourcycle_boolean
from repro.joins.generic_join import evaluate as generic_join
from repro.query.cq import cycle_query
from repro.util.counters import Counters

from common import growth_exponent, print_table

SIZES = (200, 400, 800, 1600)


def _graph(n):
    # Dense-ish regime: nodes ~ sqrt(8 n) keeps plenty of 4-cycles.
    nodes = max(8, int((8 * n) ** 0.5))
    return random_graph_database(n, nodes, seed=17)


def _series():
    query = cycle_query(4)
    rows, full_costs, bool_costs, topk_costs = [], [], [], []
    for n in SIZES:
        db = _graph(n)
        c_full, c_bool, c_topk = Counters(), Counters(), Counters()
        out = generic_join(db, query, counters=c_full)
        exists = fourcycle_boolean(db, query, counters=c_bool)
        top = list(rank_enumerate(db, query, k=10, counters=c_topk))
        rows.append(
            (
                n,
                len(out),
                c_full.total_work(),
                c_bool.total_work(),
                c_topk.total_work(),
                exists and bool(top),
            )
        )
        full_costs.append(c_full.total_work())
        bool_costs.append(c_bool.total_work())
        topk_costs.append(c_topk.total_work())
    return rows, full_costs, bool_costs, topk_costs


def bench_e2_fourcycle_boolean_and_topk(benchmark):
    rows, full_costs, bool_costs, topk_costs = _series()
    print_table(
        "E2: 4-cycle — WCO full output vs Boolean vs top-10 (operation counts)",
        ["edges n", "4-cycles", "wco full", "boolean h/l", "any-k top-10", "found"],
        rows,
    )
    e_full = growth_exponent(SIZES, full_costs)
    e_bool = growth_exponent(SIZES, bool_costs)
    e_topk = growth_exponent(SIZES, topk_costs)
    print(
        f"growth exponents: wco-full={e_full:.2f}, boolean={e_bool:.2f} "
        f"(paper: <=1.5), top-10={e_topk:.2f} (paper: close to Boolean)"
    )
    # Shape: Boolean and top-k stay well below full enumeration's growth,
    # and top-k work tracks the Boolean query rather than the output size.
    assert e_bool < e_full
    assert e_topk < e_full
    assert topk_costs[-1] < full_costs[-1]

    db = _graph(SIZES[-1])
    benchmark.pedantic(
        lambda: fourcycle_boolean(db, cycle_query(4)), rounds=3, iterations=1
    )
