"""A2 (ablation) — the heavy/light threshold Δ of the 4-cycle union of
trees.

The construction's O(n^1.5) total cost relies on Δ = √n: smaller Δ means
more "heavy" values (more per-value trees, each O(n) to set up); larger Δ
means fatter light wedges (the J12/J34 joins approach n²).  This ablation
sweeps Δ around √n and measures the decomposition's total materialization
work plus the any-k work to k results, showing the sweet spot.

Series: per Δ multiplier, number of trees, total derived tuples, work to
top-50.
"""

import math

from repro.anyk.api import rank_enumerate
from repro.anyk.cyclic import enumerate_union_of_trees
from repro.anyk.part import anyk_part
from repro.anyk.ranking import SUM
from repro.data.generators import random_graph_database
from repro.joins.heavylight import fourcycle_union_of_trees
from repro.query.cq import cycle_query
from repro.util.counters import Counters

from common import print_table

EDGES = 1500
K = 50
MULTIPLIERS = (0.05, 0.3, 1.0, 3.0, 20.0)


def _series():
    nodes = max(8, int((8 * EDGES) ** 0.5))
    db = random_graph_database(EDGES, nodes, seed=79)
    query = cycle_query(4)
    sqrt_n = math.sqrt(EDGES)
    rows = []
    work_by_multiplier = {}
    for multiplier in MULTIPLIERS:
        threshold = multiplier * sqrt_n
        counters = Counters()
        trees = fourcycle_union_of_trees(
            db, query, threshold=threshold, counters=counters
        )
        derived = sum(
            len(rel) for tree in trees for rel in tree.database
        )
        stream = enumerate_union_of_trees(
            trees,
            query.variables,
            SUM,
            lambda tdp: anyk_part(tdp, strategy="lazy"),
            counters=counters,
        )
        produced = 0
        for produced, _ in enumerate(stream, start=1):
            if produced == K:
                break
        rows.append(
            (
                round(multiplier, 2),
                int(threshold),
                len(trees),
                derived,
                counters.total_work(),
                produced,
            )
        )
        work_by_multiplier[multiplier] = counters.total_work()
    return rows, work_by_multiplier


def bench_a2_heavylight_threshold(benchmark):
    rows, work = _series()
    print_table(
        f"A2: heavy/light threshold sweep on the 4-cycle "
        f"({EDGES} edges, top-{K}); Δ = multiplier·√n",
        ["multiplier", "Δ", "trees", "derived tuples", "total work", "returned"],
        rows,
    )
    # Shape: the √n regime (multiplier 1.0) beats both extremes.
    sweet = work[1.0]
    assert sweet <= work[MULTIPLIERS[0]], "too many per-value trees should cost more"
    assert sweet <= work[MULTIPLIERS[-1]], "fat light wedges should cost more"
    print(
        f"sweet spot at Δ=√n: work {sweet} vs {work[MULTIPLIERS[0]]} (tiny Δ) "
        f"and {work[MULTIPLIERS[-1]]} (huge Δ)"
    )

    nodes = max(8, int((8 * EDGES) ** 0.5))
    db = random_graph_database(EDGES, nodes, seed=79)
    benchmark.pedantic(
        lambda: list(rank_enumerate(db, cycle_query(4), k=K)),
        rounds=3,
        iterations=1,
    )
