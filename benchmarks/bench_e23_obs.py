"""E23: the profiler audits itself — in-engine vs external anytime metrics.

The observability layer (:mod:`repro.obs.delay`) measures TTF / TT(k) /
inter-result delay *inside* the engine; the load harness
(:mod:`repro.workload.metrics`) measures the same quantities from the
*outside*, wall-clock around the whole call.  If the profiler is honest,
the two views of one run must nest: in-engine TTF can never exceed the
external TTFR (which also pays parse + analyze + routing), and the gap
between them *is* the compilation overhead — per engine, a number this
bench makes visible instead of folklore.

Every run drives both instruments over the *same* enumeration: the
external :class:`MetricsCollector` clock starts before parsing (exactly
where the workload driver starts it), the in-engine profile starts at
the first pull.  The cross-check asserts, per engine:

- ``in-engine TTF  <= external TTFR`` (within clock-noise tolerance);
- ``in-engine TT(k) <= external TT(k)`` and within a generous lower
  band of it (the profiler must account for the bulk of a long
  enumeration — if it misses most of the wall time, it is broken).

Writes ``BENCH_obs.json`` — both views, per engine, machine-readable.

Run with::

    PYTHONPATH=src python benchmarks/bench_e23_obs.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

import repro.sql  # noqa: E402
from repro.data.generators import path_database  # noqa: E402
from repro.engine.executor import execute  # noqa: E402
from repro.engine.planner import plan_compiled  # noqa: E402
from repro.obs import DelayProfile  # noqa: E402
from repro.workload.metrics import MetricsCollector  # noqa: E402

SEED = 7
K = 1000
REPEATS = 5
ENGINES = ("part:lazy", "rec", "batch", "rank_join")
SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    f"ORDER BY weight LIMIT {K}"
)

#: Clock-noise slack for the one-sided "in-engine <= external" checks.
SLACK_MS = 0.5
#: The profiler must see at least this fraction of the external TT(k)
#: wall time on a K-row enumeration (compilation is the rest).
FLOOR = 0.10


def measure(db, engine: str) -> tuple[DelayProfile, MetricsCollector, int]:
    """REPEATS runs of one engine, both instruments on the same stream."""
    profile = DelayProfile(engine=engine)
    collector = MetricsCollector()
    rows = 0
    for _ in range(REPEATS):
        # One profile per run, merged afterwards — a profile's TTF/TT(k)
        # wall clock belongs to a single stream (the per-cursor
        # discipline the query service follows).
        run_profile = DelayProfile(engine=engine)
        t0 = time.perf_counter()
        compiled = repro.sql.analyze(db, SQL)
        plan = plan_compiled(db, compiled, engine=engine)
        first_ms = None
        rows = 0
        for _ in execute(db, compiled, plan, profile=run_profile):
            if first_ms is None:
                first_ms = (time.perf_counter() - t0) * 1000.0
                collector.record_ttfr(first_ms)
            rows += 1
        collector.record_ttk((time.perf_counter() - t0) * 1000.0)
        collector.record_rows(rows)
        profile.merge(run_profile)
    return profile, collector, rows


def main() -> None:
    db = path_database(length=3, size=300, domain=40, seed=SEED)
    table_rows = []
    report: dict = {
        "seed": SEED,
        "sql": SQL,
        "k": K,
        "repeats": REPEATS,
        "engines": {},
    }
    for engine in ENGINES:
        profile, collector, rows = measure(db, engine)
        summary = profile.summary()
        in_ttf = summary["ttf_ms"]["mean_ms"]
        ttk_key = str(max(int(k) for k in summary["ttk_ms"]))
        in_ttk = summary["ttk_ms"][ttk_key]["mean_ms"]
        ext_ttfr = collector.ttfr.summary()["mean_ms"]
        ext_ttk = collector.ttk.summary()["mean_ms"]

        # The cross-check: the two instruments watched the same runs.
        assert summary["results"] == rows * REPEATS, (engine, summary)
        assert in_ttf <= ext_ttfr + SLACK_MS, (
            f"{engine}: in-engine TTF {in_ttf:.3f} ms exceeds external "
            f"TTFR {ext_ttfr:.3f} ms — the profiler is charging time the "
            "caller never waited"
        )
        assert in_ttk <= ext_ttk + SLACK_MS, (
            f"{engine}: in-engine TT({ttk_key}) {in_ttk:.3f} ms exceeds "
            f"external {ext_ttk:.3f} ms"
        )
        assert in_ttk >= FLOOR * ext_ttk - SLACK_MS, (
            f"{engine}: in-engine TT({ttk_key}) {in_ttk:.3f} ms misses "
            f"most of the external {ext_ttk:.3f} ms wall time"
        )

        delay = summary["delay_ms"]
        table_rows.append(
            (
                engine,
                rows,
                in_ttf,
                ext_ttfr,
                in_ttk,
                ext_ttk,
                ext_ttk - in_ttk,
                delay["p50_ms"],
                delay["p99_ms"],
            )
        )
        report["engines"][engine] = {
            "rows_per_run": rows,
            "in_engine": summary,
            "external": {
                "ttfr_ms": collector.ttfr.summary(),
                "ttk_ms": collector.ttk.summary(),
                "rows": collector.rows,
            },
            "compile_overhead_ms": round(ext_ttk - in_ttk, 4),
        }

    print_table(
        f"E23: in-engine vs external anytime metrics "
        f"(seed {SEED}, k={K}, mean of {REPEATS} runs, ms)",
        (
            "engine",
            "rows",
            "ttf in",
            "ttfr ext",
            f"tt(k) in",
            f"tt(k) ext",
            "compile",
            "delay p50",
            "delay p99",
        ),
        table_rows,
    )
    print(
        "\nBoth instruments watched the same runs: in-engine <= external "
        "held for every engine; the 'compile' column is parse+analyze+plan."
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    with out.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"profiler cross-check report written to {out}")


if __name__ == "__main__":
    main()
