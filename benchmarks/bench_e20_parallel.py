"""E20 — partition-parallel any-k: exactness first, speedup second.

Two claims, per workload (a large path query and a large star query):

1. **Exactness** (asserted): the 4-shard merged ranked prefix is
   *exactly* — rows, weights, and tie order — the serial prefix.  This
   is the whole point of the deterministic merge: parallelism is an
   executor detail, invisible in the stream of bytes.
2. **Speedup** (measured, reported): wall-clock to the top-k through 4
   worker processes vs. serial, plus the fork+pickle overhead paid at
   startup.  On a single-core container the ratio hovers near (or
   below) 1 — the table is the honest record either way; the RAM-model
   counter series (per-shard work sums to ~serial work) is the
   machine-independent story.

Run:  pytest benchmarks/bench_e20_parallel.py -o python_functions='bench_*' -q -s
"""

from __future__ import annotations

import time

from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database, star_database
from repro.parallel import parallel_rank_enumerate
from repro.query.cq import path_query, star_query
from repro.util.counters import Counters

from common import print_table

WORKERS = 4
K = 1000


def _workloads():
    return [
        (
            "path ℓ=3, n=6000",
            path_database(length=3, size=6000, domain=120, seed=20),
            path_query(3),
        ),
        (
            "star arms=3, n=5000",
            star_database(arms=3, size=5000, domain=100, seed=21),
            star_query(3),
        ),
    ]


def _time_prefix(factory):
    start = time.perf_counter()
    results = list(factory())
    return results, time.perf_counter() - start


def bench_e20_parallel_exactness_and_speedup(benchmark):
    rows = []
    for label, db, query in _workloads():
        serial_counters = Counters()
        serial, serial_s = _time_prefix(
            lambda: rank_enumerate(
                db, query, method="part:lazy", k=K, counters=serial_counters
            )
        )

        parallel_counters = Counters()
        start = time.perf_counter()
        stream = parallel_rank_enumerate(
            db,
            query,
            method="part:lazy",
            k=K,
            counters=parallel_counters,
            workers=WORKERS,
        )
        first = next(stream)
        startup_s = time.perf_counter() - start
        merged = [first] + list(stream)
        parallel_s = time.perf_counter() - start

        # The acceptance criterion: byte-identical ranked prefixes.
        assert merged == serial, (
            f"{label}: merged 4-shard prefix diverged from serial "
            f"({merged[:2]} vs {serial[:2]})"
        )

        rows.append(
            (
                label,
                len(serial),
                f"{serial_s:.3f}s",
                f"{parallel_s:.3f}s",
                f"{startup_s:.3f}s",
                f"{serial_s / parallel_s:.2f}x",
                serial_counters.total_work(),
                parallel_counters.total_work(),
            )
        )

    print_table(
        f"E20: serial vs {WORKERS}-shard parallel top-{K} (part:lazy), "
        "merged prefix asserted byte-identical",
        [
            "workload",
            "k",
            "serial",
            "parallel",
            "TTF(par)",
            "speedup",
            "work(serial)",
            "work(par)",
        ],
        rows,
    )

    # One representative timed region for pytest-benchmark runs.
    label, db, query = _workloads()[0]
    benchmark(
        lambda: list(
            parallel_rank_enumerate(
                db, query, method="part:lazy", k=50, workers=WORKERS
            )
        )
    )


if __name__ == "__main__":  # direct run: no pytest-benchmark needed
    bench_e20_parallel_exactness_and_speedup(lambda f: f())
