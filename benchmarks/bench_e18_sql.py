"""E18 — SQL front-end overhead: routed execution vs direct rank_enumerate.

The SQL layer (lex → parse → analyze → route → execute) must be a thin
veneer: once a statement is compiled, the engine does exactly the work the
direct API call does.  Series: wall-clock of `repro.sql.query` vs the
equivalent direct `rank_enumerate` call on path and 4-cycle top-k
workloads, plus the one-off compile+plan latency.  The acceptance claim is
that per-query overhead is planning only (sub-millisecond-ish in CPython)
and does not grow with k or data size.
"""

import time

import repro.sql
from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database, random_graph_database
from repro.query.cq import cycle_query, path_query

from common import print_table

PATH_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT {k}"
)
CYCLE_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "JOIN E AS e3 ON e2.dst = e3.src "
    "JOIN E AS e4 ON e3.dst = e4.src AND e4.dst = e1.src "
    "ORDER BY weight LIMIT {k}"
)
REPEATS = 3


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _compare(db, sql_text, query, k):
    """(sql_seconds, direct_seconds, plan_seconds, engine) for one config."""
    compiled_plan = repro.sql.query(db, sql_text).plan  # route once to learn
    engine = compiled_plan.engine
    if engine == "rank_join":  # compare like with like
        engine = "part:lazy"
        run_sql = lambda: list(repro.sql.query(db, sql_text, engine=engine))
    else:
        run_sql = lambda: list(repro.sql.query(db, sql_text))
    sql_seconds, sql_rows = _best_of(run_sql)
    direct_seconds, direct_rows = _best_of(
        lambda: list(rank_enumerate(db, query, method=engine, k=k))
    )
    assert sql_rows == direct_rows, "SQL and direct results must agree"
    plan_seconds, _ = _best_of(
        lambda: repro.sql.explain(db, sql_text)
    )
    return sql_seconds, direct_seconds, plan_seconds, engine


def bench_e18_sql_overhead(benchmark):
    rows = []
    overheads = []
    for n, k in ((300, 10), (300, 200), (1000, 10), (1000, 200)):
        db = path_database(3, n, max(4, n // 12), seed=18)
        sql_s, direct_s, plan_s, engine = _compare(
            db, PATH_SQL.format(k=k), path_query(3), k
        )
        overhead = sql_s / direct_s if direct_s else 1.0
        overheads.append((sql_s - direct_s, direct_s))
        rows.append(
            ("path3", n, k, engine, direct_s * 1e3, sql_s * 1e3,
             plan_s * 1e3, overhead)
        )
    for edges, k in ((500, 10), (1500, 10)):
        db = random_graph_database(num_edges=edges, num_nodes=edges // 8, seed=18)
        sql_s, direct_s, plan_s, engine = _compare(
            db, CYCLE_SQL.format(k=k), cycle_query(4), k
        )
        overhead = sql_s / direct_s if direct_s else 1.0
        overheads.append((sql_s - direct_s, direct_s))
        rows.append(
            ("4cycle", edges, k, engine, direct_s * 1e3, sql_s * 1e3,
             plan_s * 1e3, overhead)
        )
    print_table(
        "E18: SQL-routed vs direct rank_enumerate (best-of-3 wall clock)",
        ["query", "n", "k", "engine", "direct ms", "sql ms",
         "plan ms", "sql/direct"],
        rows,
    )
    # The claim: overhead is the (constant) compile+plan cost, not a
    # multiplicative slowdown of execution.
    big = [row for row in rows if row[4] > 20.0]  # direct >= 20ms
    for row in big:
        assert row[7] < 1.6, f"SQL overhead too high: {row}"
    print(
        "shape: sql/direct -> 1 as work grows; overhead = one-off "
        "compile+plan"
    )

    db = path_database(3, 300, 25, seed=18)
    benchmark.pedantic(
        lambda: list(repro.sql.query(db, PATH_SQL.format(k=10))),
        rounds=3,
        iterations=1,
    )
