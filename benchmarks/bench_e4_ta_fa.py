"""E4 — Part 1 claims: TA is instance-optimal in the access-count model and
never accesses more than FA (within a constant); both stop early when the
lists agree and degrade when they anti-correlate.

Series: accesses of FA vs TA per correlation regime and k.
"""

from repro.data.generators import scored_lists
from repro.topk.access import VerticalSource
from repro.topk.fagin import fagins_algorithm
from repro.topk.threshold import threshold_algorithm
from repro.util.counters import Counters

from common import print_table

OBJECTS = 3000
LISTS = 3
KS = (1, 10, 50)


def _series():
    rows = []
    summary = {}
    for correlation in ("correlated", "independent", "inverse"):
        lists = scored_lists(OBJECTS, LISTS, correlation, seed=23)
        for k in KS:
            c_fa, c_ta = Counters(), Counters()
            fagins_algorithm(VerticalSource(lists, c_fa), k)
            threshold_algorithm(VerticalSource(lists, c_ta), k)
            rows.append(
                (
                    correlation,
                    k,
                    c_fa.sorted_accesses,
                    c_fa.random_accesses,
                    c_ta.sorted_accesses,
                    c_ta.random_accesses,
                    round(c_fa.total_accesses() / max(1, c_ta.total_accesses()), 2),
                )
            )
            summary[(correlation, k)] = (
                c_fa.total_accesses(),
                c_ta.total_accesses(),
            )
    return rows, summary


def bench_e4_ta_vs_fa_accesses(benchmark):
    rows, summary = _series()
    print_table(
        f"E4: FA vs TA accesses ({OBJECTS} objects x {LISTS} lists)",
        ["lists", "k", "FA sorted", "FA random", "TA sorted", "TA random", "FA/TA"],
        rows,
    )
    # Shapes: TA <= FA on total accesses in every regime; correlated is the
    # cheap regime, inverse the expensive one (for both algorithms).
    for key, (fa, ta) in summary.items():
        assert ta <= fa * 1.05, key
    assert summary[("correlated", 10)][1] < summary[("independent", 10)][1]
    assert summary[("independent", 10)][1] < summary[("inverse", 10)][1]
    # Early termination: far fewer accesses than the full 3 * OBJECTS scan.
    assert summary[("correlated", 1)][1] < OBJECTS

    lists = scored_lists(OBJECTS, LISTS, "independent", seed=23)
    benchmark.pedantic(
        lambda: threshold_algorithm(VerticalSource(lists), 10),
        rounds=3,
        iterations=1,
    )
