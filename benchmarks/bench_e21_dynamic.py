"""E21 — dynamic data: snapshot isolation and mutation-aware caching.

Two series, both with asserted acceptance criteria:

1. **Snapshot-isolated cursors** — open a server cursor, commit a batch
   of inserts+deletes mid-drain, finish draining: the drained stream
   must equal the pre-mutation serial stream *exactly* (asserted per
   engine), while a fresh post-mutation query sees the new data.
2. **Mutation-aware cache stack** — after a mutation, statements reading
   the mutated relation re-plan (cache miss, re-cost) while statements
   over unaffected relations reuse their warm plans (asserted both
   ways), with warm-vs-cold planning latency reported.

Run:  pytest benchmarks/bench_e21_dynamic.py -o python_functions='bench_*' -q -s
"""

from __future__ import annotations

import time

import repro.sql
from repro.data.generators import path_database
from repro.server.service import QueryService

from common import print_table

SQL_AFFECTED = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight LIMIT {k}"
)
SQL_UNAFFECTED = (
    "SELECT * FROM R3 JOIN R4 ON R3.A4 = R4.A4 ORDER BY weight LIMIT {k}"
)
K = 150
ENGINES = ("part:lazy", "rec", "batch", "rank_join")


def _dynamic_db():
    # R1..R4: two independent binary joins over one generated chain, so
    # one statement reads mutated relations and one reads untouched ones.
    return path_database(length=4, size=1200, domain=90, seed=21)


def _mutate_batch(service: QueryService) -> int:
    values = ", ".join(f"({i}, {i % 13}, 0.001)" for i in range(3000, 3100))
    for sql in (
        f"INSERT INTO R1 (A1, A2, weight) VALUES {values}",
        "DELETE FROM R2 WHERE A2 < 30",
        "INSERT INTO R2 VALUES (7, 700), (8, 800)",
    ):
        service.mutate(sql)
    return service.versioned.version


def _isolation_series() -> list:
    rows = []
    sql = SQL_AFFECTED.format(k=K)
    for engine in ENGINES:
        service = QueryService(_dynamic_db())
        pre_mutation = service.db.copy()
        opened = service.query(sql, engine=engine, fetch=25)
        drained = [(tuple(r), w) for r, w in opened["rows"]]
        start = time.perf_counter()
        version = _mutate_batch(service)
        mutate_ms = 1e3 * (time.perf_counter() - start)
        cursor, done = opened["cursor"], opened["done"]
        while not done:
            page = service.fetch(cursor, n=50)
            drained.extend((tuple(r), w) for r, w in page["rows"])
            done = page["done"]
        reference = repro.sql.query(pre_mutation, sql, engine=engine).fetchall()
        assert drained == reference, (
            f"{engine}: cursor drained {len(drained)} rows that differ from "
            "the pre-mutation serial stream — snapshot isolation is broken"
        )
        post = [
            (tuple(r), w)
            for r, w in service.query(sql, engine=engine, fetch=K)["rows"]
        ]
        assert post != drained, (
            f"{engine}: the mutation batch did not change the join result; "
            "the isolation assertion proved nothing"
        )
        rows.append((engine, len(drained), version, mutate_ms, "exact"))
    return rows


def _cache_series() -> tuple[list, QueryService]:
    service = QueryService(_dynamic_db())
    affected = SQL_AFFECTED.format(k=K)
    unaffected = SQL_UNAFFECTED.format(k=K)

    def timed_plan(sql: str) -> tuple[float, bool]:
        start = time.perf_counter()
        _, was_cached = service.plan(sql)
        return 1e3 * (time.perf_counter() - start), was_cached

    cold_a, cached = timed_plan(affected)
    assert not cached
    cold_u, cached = timed_plan(unaffected)
    assert not cached
    warm_a, cached = timed_plan(affected)
    assert cached
    warm_u, cached = timed_plan(unaffected)
    assert cached

    service.mutate("INSERT INTO R1 VALUES (5000, 5000)")

    recost_a, cached = timed_plan(affected)
    # The mutated relation's new version must force a re-plan ...
    assert not cached, "stale plan served for a statement over mutated data"
    reuse_u, cached = timed_plan(unaffected)
    # ... while untouched relations keep their warm plan (the claim the
    # per-relation fingerprints exist for).
    assert cached, "mutation of R1 needlessly evicted the R3⋈R4 plan"

    rows = [
        ("affected stmt, cold", cold_a, "miss"),
        ("unaffected stmt, cold", cold_u, "miss"),
        ("affected stmt, warm", warm_a, "hit"),
        ("unaffected stmt, warm", warm_u, "hit"),
        ("affected stmt, after mutation", recost_a, "miss (re-costed)"),
        ("unaffected stmt, after mutation", reuse_u, "hit (kept warm)"),
    ]
    return rows, service


def bench_e21_dynamic(benchmark):
    print_table(
        "E21a: snapshot-isolated cursors under a mutation batch "
        f"(top-{K}, drained == pre-mutation serial stream)",
        ["engine", "rows", "version", "mutate ms", "vs serial"],
        _isolation_series(),
    )

    cache_rows, service = _cache_series()
    print_table(
        "E21b: mutation-aware plan cache (ms per plan)",
        ["path", "ms", "cache"],
        cache_rows,
    )
    info = service.plan_cache.info()
    print(
        f"plan cache: {info['hits']} hits / {info['misses']} misses; "
        f"stats cache: {service.stats_cache.info()['hits']} hits / "
        f"{service.stats_cache.info()['misses']} misses; "
        f"database at version {service.versioned.version}"
    )

    # One representative timed region: commit a 100-row insert and
    # re-plan the affected statement (the full invalidation round trip).
    counter = iter(range(10**9))

    def mutate_and_replan():
        shift = 10_000 + next(counter) * 200
        values = ", ".join(
            f"({i}, {i % 17}, 0.5)" for i in range(shift, shift + 100)
        )
        service.mutate(f"INSERT INTO R1 (A1, A2, weight) VALUES {values}")
        _, was_cached = service.plan(SQL_AFFECTED.format(k=K))
        assert not was_cached

    benchmark(mutate_and_replan)


if __name__ == "__main__":  # direct run: no pytest-benchmark needed
    bench_e21_dynamic(lambda f: f())
