"""E11 — §4 claim: the any-k machinery supports ranking functions beyond
sum — any selective dioid (max/bottleneck, product, lexicographic) — with
the same preprocessing and delay behaviour.

Series: per ranking function, TTF and TTL work of ANYK-PART on the same
path query; all four stay within a small constant of one another.
"""

from repro.anyk.api import rank_enumerate
from repro.anyk.ranking import LEX, MAX, PRODUCT, SUM
from repro.data.generators import path_database
from repro.query.cq import path_query
from repro.util.counters import Counters

from common import print_table

LENGTH, SIZE, DOMAIN = 3, 300, 25
RANKINGS = (SUM, MAX, PRODUCT, LEX)


def _series():
    db = path_database(
        LENGTH, SIZE, DOMAIN, seed=53, weight_range=(0.1, 1.0)
    )  # positive weights so PRODUCT is defined
    query = path_query(LENGTH)
    rows = []
    ttl_work = {}
    for ranking in RANKINGS:
        counters = Counters()
        stream = rank_enumerate(db, query, ranking=ranking, counters=counters)
        ttf = None
        count = 0
        previous = None
        for count, (_, weight) in enumerate(stream, start=1):
            if count == 1:
                ttf = counters.total_work()
            if previous is not None:
                assert not (weight < previous), f"{ranking.name} order violated"
            previous = weight
        rows.append((ranking.name, count, ttf or 0, counters.total_work()))
        ttl_work[ranking.name] = counters.total_work()
    return rows, ttl_work


def bench_e11_ranking_functions(benchmark):
    rows, ttl_work = _series()
    print_table(
        f"E11: ranking functions through the same T-DP (ℓ={LENGTH}, n={SIZE})",
        ["ranking", "results", "TTF", "TTL"],
        rows,
    )
    counts = {row[0]: row[1] for row in rows}
    # Same result cardinality under every ranking.
    assert len(set(counts.values())) == 1
    # Work within a small constant across rankings (same machinery).
    assert max(ttl_work.values()) < 4 * min(ttl_work.values())
    print("shape: identical cardinalities; work within a small constant factor")

    db = path_database(LENGTH, SIZE, DOMAIN, seed=53, weight_range=(0.1, 1.0))
    benchmark.pedantic(
        lambda: list(rank_enumerate(db, path_query(LENGTH), ranking=MAX, k=100)),
        rounds=3,
        iterations=1,
    )
