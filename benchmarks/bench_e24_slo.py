"""E24: SLO burn-rate grading — pass/fail against recorded baselines.

Derives SLO thresholds from the ``BENCH_workload.json`` series that
:mod:`bench_e22_workload` recorded (baseline query/TTFR p99 with 4x
headroom, floored so clock noise cannot flake the gate) and grades a
fresh wire run of the ``read-mostly`` scenario against them: every
derived spec must come back ``ok``.  Then the negative control — the
same run graded against an impossible ``query_p99_ms<=0.000001`` spec
must burn through its error budget and report ``page``, proving the
verdict machinery actually fires and the green run above is not a
grader that cannot fail.

Writes ``BENCH_slo.json`` — the derived specs, both verdicts, and the
baseline they came from, machine-readable for future PRs to diff.

Run with::

    PYTHONPATH=src python benchmarks/bench_e24_slo.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import print_table  # noqa: E402

from repro.workload import run_scenario  # noqa: E402

SEED = 7
DURATION = 3.0
CLIENTS = 4
SCENARIO = "read-mostly"

#: Headroom multiplier over the baseline p99 — generous enough that the
#: gate catches regressions, not scheduler jitter.
HEADROOM = 4.0
#: Absolute floor (ms) under the derived thresholds; sub-millisecond
#: objectives are clock noise, not SLOs.
FLOOR_MS = 25.0

#: Fallback objectives when no baseline series has been recorded yet.
DEFAULT_SPECS = ("query_p99_ms<=250", "ttfr_p99_ms<=250", "error_rate<=1%")

#: The negative control: impossible by construction (p99 budget 0.01,
#: so a run where every request misses burns at 100x = page).
VIOLATED_SPEC = "query_p99_ms<=0.000001"


def derive_specs(baseline: dict | None) -> tuple[list[str], dict]:
    """Baseline report -> SLO specs with headroom (or the defaults)."""
    if not baseline:
        return list(DEFAULT_SPECS), {}
    query_p99 = baseline["ops"]["query"]["p99_ms"]
    ttfr_p99 = baseline["ttfr_ms"]["p99_ms"]
    thresholds = {
        "query_p99_ms": max(FLOOR_MS, HEADROOM * query_p99),
        "ttfr_p99_ms": max(FLOOR_MS, HEADROOM * ttfr_p99),
    }
    specs = [
        f"query_p99_ms<={thresholds['query_p99_ms']:.1f}",
        f"ttfr_p99_ms<={thresholds['ttfr_p99_ms']:.1f}",
        "error_rate<=1%",
    ]
    return specs, {
        "query_p99_ms": query_p99,
        "ttfr_p99_ms": ttfr_p99,
        "headroom": HEADROOM,
        "floor_ms": FLOOR_MS,
    }


def main() -> None:
    root = Path(__file__).resolve().parent.parent
    baseline_path = root / "BENCH_workload.json"
    baseline = None
    if baseline_path.exists():
        with baseline_path.open(encoding="utf-8") as handle:
            baseline = json.load(handle)
    specs, derived_from = derive_specs(baseline)

    result = run_scenario(
        SCENARIO,
        seed=SEED,
        duration=DURATION,
        clients=CLIENTS,
        mode="wire",
        sample=0.0,
        slos=specs,
    )
    graded = result.report["slo"]
    assert graded["status"] == "ok", graded
    assert all(entry["status"] == "ok" for entry in graded["slos"]), graded

    # Negative control: grade the SAME trace against an impossible
    # objective — the verdict machinery must page, or the green run
    # above proves nothing.
    control = run_scenario(
        SCENARIO,
        seed=SEED,
        duration=DURATION,
        clients=CLIENTS,
        mode="inprocess",
        sample=0.0,
        slos=[VIOLATED_SPEC],
    )
    violated = control.report["slo"]
    assert violated["status"] == "page", violated

    rows = []
    for entry in graded["slos"] + violated["slos"]:
        rows.append(
            (
                entry["spec"],
                entry["kind"],
                entry["total"],
                entry["bad"],
                f"{entry['burn_rates']['run']:.2f}x",
                entry["status"],
            )
        )
    print_table(
        f"E24: SLO burn-rate verdicts ({SCENARIO}, seed {SEED}, "
        f"{DURATION:g}s wire run vs BENCH_workload.json baseline)",
        ("spec", "kind", "total", "bad", "burn", "status"),
        rows,
    )
    print(
        "\nDerived specs (baseline p99 x "
        f"{HEADROOM:g}, floor {FLOOR_MS:g} ms) all came back ok; the "
        "deliberately impossible control spec paged."
    )

    report = {
        "scenario": SCENARIO,
        "seed": SEED,
        "duration_s": DURATION,
        "clients": CLIENTS,
        "baseline": derived_from or None,
        "specs": specs,
        "slo": graded,
        "violated_control": {"spec": VIOLATED_SPEC, "slo": violated},
        "queries": result.report["trace"]["queries"],
        "errors": result.report["errors"]["total"],
    }
    out = root / "BENCH_slo.json"
    with out.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"SLO grading report written to {out}")


if __name__ == "__main__":
    main()
