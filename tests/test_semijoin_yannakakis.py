"""Tests for semijoins, the full reducer, and Yannakakis' algorithm."""

import pytest
from hypothesis import given, settings

from repro.data.database import Database
from repro.data.generators import dangling_path_database
from repro.data.relation import Relation
from repro.joins.base import multiset
from repro.joins.naive import evaluate as naive_join
from repro.joins.semijoin import full_reducer, is_globally_consistent, semijoin
from repro.joins.yannakakis import boolean as yk_boolean
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import path_query, star_query
from repro.query.hypergraph import join_tree_or_raise
from repro.util.counters import Counters

from conftest import path_db_strategy, star_db_strategy


def test_semijoin_keeps_matching_rows():
    left = Relation("L", ("a", "b"), [(1, 2), (3, 4)], [0.1, 0.2])
    right = Relation("R", ("b", "c"), [(2, 7)])
    out = semijoin(left, right)
    assert out.rows == [(1, 2)]
    assert out.weights == [0.1]


def test_semijoin_no_shared_attributes():
    left = Relation("L", ("a",), [(1,)])
    assert len(semijoin(left, Relation("R", ("b",), [(5,)]))) == 1
    assert len(semijoin(left, Relation("R", ("b",)))) == 0


def test_semijoin_preserves_duplicates():
    left = Relation("L", ("a",), [(1,), (1,)], [0.1, 0.9])
    right = Relation("R", ("a",), [(1,)])
    assert len(semijoin(left, right)) == 2


@settings(max_examples=25, deadline=None)
@given(path_db_strategy())
def test_full_reducer_reaches_global_consistency(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    tree = join_tree_or_raise(q)
    reduced = full_reducer(db, q, tree=tree)
    assert is_globally_consistent(reduced, tree)


@settings(max_examples=25, deadline=None)
@given(path_db_strategy())
def test_full_reducer_preserves_query_answers(db_and_length):
    """Joining the reduced relations yields exactly the original answers."""
    from repro.joins.base import reorder_to_query_schema
    from repro.joins.hash_join import hash_join

    db, length = db_and_length
    q = path_query(length)
    reduced = full_reducer(db, q)
    joined = reduced[0]
    for i in range(1, len(q.atoms)):
        joined = hash_join(joined, reduced[i])
    joined = reorder_to_query_schema(joined, q)
    assert multiset(joined) == multiset(naive_join(db, q))


@settings(max_examples=25, deadline=None)
@given(path_db_strategy())
def test_full_reducer_only_removes_tuples(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    reduced = full_reducer(db, q)
    for i, atom in enumerate(q.atoms):
        original_rows = set(db[atom.relation].rows)
        assert set(reduced[i].rows) <= original_rows


@settings(max_examples=25, deadline=None)
@given(star_db_strategy())
def test_yannakakis_matches_naive_on_stars(db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    assert multiset(yannakakis_join(db, q)) == multiset(naive_join(db, q))


@settings(max_examples=25, deadline=None)
@given(path_db_strategy())
def test_yannakakis_matches_naive_on_paths(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    assert multiset(yannakakis_join(db, q)) == multiset(naive_join(db, q))


def test_yannakakis_linear_on_dangling_instance():
    """E3's core claim: zero intermediates where binary plans go quadratic."""
    db = dangling_path_database(3, 40)
    c = Counters()
    out = yannakakis_join(db, path_query(3), counters=c)
    assert len(out) == 0
    assert c.intermediate_tuples == 0


def test_yannakakis_intermediates_bounded_by_output():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(i, i % 3) for i in range(9)]),
            Relation("R2", ("A2", "A3"), [(i % 3, i) for i in range(9)]),
        ]
    )
    q = path_query(2)
    c = Counters()
    out = yannakakis_join(db, q, counters=c)
    # After full reduction every produced tuple extends to an answer;
    # with two atoms intermediates equal outputs exactly.
    assert c.intermediate_tuples == 0
    assert c.output_tuples == len(out)


def test_yannakakis_boolean_fast_path():
    db = dangling_path_database(3, 20)
    assert yk_boolean(db, path_query(3)) is False
    db2 = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)]),
            Relation("R2", ("A2", "A3"), [(1, 2)]),
        ]
    )
    assert yk_boolean(db2, path_query(2)) is True


def test_weight_combination_through_the_tree():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)], [0.25]),
            Relation("R2", ("A2", "A3"), [(1, 2)], [0.5]),
        ]
    )
    out = yannakakis_join(db, path_query(2))
    assert out.weights == [0.75]
    out_max = yannakakis_join(db, path_query(2), combine=max)
    assert out_max.weights == [0.5]
