"""Tests for FA, TA and NRA against the brute-force oracle, plus the
access-cost claims of experiments E4/E5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import scored_lists
from repro.topk.access import VerticalSource, min_aggregate, sum_aggregate
from repro.topk.fagin import fagins_algorithm
from repro.topk.nra import nra
from repro.topk.threshold import threshold_algorithm
from repro.util.counters import Counters

from conftest import scored_lists_strategy


def _true_score_map(lists, aggregate=sum_aggregate):
    index = [{obj: s for obj, s in column} for column in lists]
    universe = [obj for obj, _ in lists[0]]
    return {obj: aggregate([m[obj] for m in index]) for obj in universe}


def _assert_topk_scores(lists, got_objects, k, aggregate=sum_aggregate):
    """The returned objects' true scores must match the oracle top-k
    multiset (object identity may differ under ties)."""
    scores = _true_score_map(lists, aggregate)
    oracle = sorted((s for s in scores.values()), reverse=True)[:k]
    got = sorted((scores[o] for o in got_objects), reverse=True)
    assert [round(x, 9) for x in got] == [round(x, 9) for x in oracle]


@settings(max_examples=40, deadline=None)
@given(scored_lists_strategy(), st.integers(min_value=1, max_value=6))
def test_ta_correct(lists, k):
    k = min(k, len(lists[0]))
    got = threshold_algorithm(VerticalSource(lists), k)
    assert len(got) == k
    _assert_topk_scores(lists, [o for o, _ in got], k)
    # TA reports exact scores, best first.
    scores = [s for _, s in got]
    assert scores == sorted(scores, reverse=True)


@settings(max_examples=40, deadline=None)
@given(scored_lists_strategy(), st.integers(min_value=1, max_value=6))
def test_fa_correct(lists, k):
    k = min(k, len(lists[0]))
    got = fagins_algorithm(VerticalSource(lists), k)
    assert len(got) == k
    _assert_topk_scores(lists, [o for o, _ in got], k)


@settings(max_examples=40, deadline=None)
@given(scored_lists_strategy(), st.integers(min_value=1, max_value=6))
def test_nra_correct_set(lists, k):
    k = min(k, len(lists[0]))
    got = nra(VerticalSource(lists), k)
    assert len(got) == k
    _assert_topk_scores(lists, [o for o, _ in got], k)


@settings(max_examples=20, deadline=None)
@given(scored_lists_strategy(max_lists=2))
def test_ta_with_min_aggregate(lists):
    got = threshold_algorithm(VerticalSource(lists), 1, aggregate=min_aggregate)
    _assert_topk_scores(lists, [o for o, _ in got], 1, aggregate=min_aggregate)


def test_k_validation():
    lists = scored_lists(5, 2, seed=0)
    for algo in (threshold_algorithm, fagins_algorithm, nra):
        with pytest.raises(ValueError):
            algo(VerticalSource(lists), 0)


def test_k_larger_than_universe():
    lists = scored_lists(4, 2, seed=1)
    got = threshold_algorithm(VerticalSource(lists), 10)
    assert len(got) == 4


def test_nra_never_uses_random_access():
    lists = scored_lists(60, 3, "independent", seed=2)
    c = Counters()
    nra(VerticalSource(lists, c), 5)
    assert c.random_accesses == 0
    assert c.sorted_accesses > 0


def test_ta_stops_early_on_correlated_inputs():
    """E4's shape: few accesses when lists agree."""
    lists = scored_lists(500, 3, "correlated", seed=3)
    c = Counters()
    threshold_algorithm(VerticalSource(lists, c), 5)
    assert c.total_accesses() < 500  # a fraction of the 1500 entries


def test_ta_beats_fa_on_independent_inputs():
    """E4's shape: FA's phase-1 'seen everywhere' rule costs more."""
    lists = scored_lists(400, 3, "independent", seed=4)
    c_ta, c_fa = Counters(), Counters()
    threshold_algorithm(VerticalSource(lists, c_ta), 10)
    fagins_algorithm(VerticalSource(lists, c_fa), 10)
    assert c_ta.total_accesses() <= c_fa.total_accesses()


def test_inverse_correlation_forces_deep_descent():
    lists_easy = scored_lists(300, 2, "correlated", seed=5)
    lists_hard = scored_lists(300, 2, "inverse", seed=5)
    c_easy, c_hard = Counters(), Counters()
    threshold_algorithm(VerticalSource(lists_easy, c_easy), 3)
    threshold_algorithm(VerticalSource(lists_hard, c_hard), 3)
    assert c_hard.total_accesses() > c_easy.total_accesses()
