"""Tests for factorized representations, semiring aggregates, and
constant-delay enumeration."""

import pytest
from hypothesis import given, settings

from repro.anyk.api import rank_enumerate
from repro.data.database import Database
from repro.data.generators import path_database, star_database
from repro.data.relation import Relation
from repro.factorized import (
    COUNT,
    MAX_WEIGHT,
    MIN_WEIGHT,
    SUM_WEIGHT,
    FactorizedRepresentation,
    aggregate,
    count_results,
    enumerate_results,
)
from repro.factorized.aggregates import average_weight
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import QueryError, path_query, star_query, triangle_query
from repro.util.counters import Counters

from conftest import multiset_of, path_db_strategy, star_db_strategy


def test_cyclic_query_rejected():
    db = Database(
        [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
            Relation("T", ("C", "A"), [(3, 1)]),
        ]
    )
    with pytest.raises(QueryError, match="cyclic"):
        FactorizedRepresentation(db, triangle_query())


@settings(max_examples=30, deadline=None)
@given(db_and_length=path_db_strategy())
def test_count_matches_naive(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    frep = FactorizedRepresentation(db, q)
    assert count_results(frep) == len(naive_join(db, q))


@settings(max_examples=25, deadline=None)
@given(db_and_arms=star_db_strategy())
def test_enumeration_matches_naive_multiset(db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    frep = FactorizedRepresentation(db, q)
    expected = naive_join(db, q)
    assert multiset_of(enumerate_results(frep)) == multiset_of(
        zip(expected.rows, expected.weights)
    )


@settings(max_examples=25, deadline=None)
@given(db_and_length=path_db_strategy())
def test_min_weight_equals_anyk_first(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    frep = FactorizedRepresentation(db, q)
    best = aggregate(frep, MIN_WEIGHT)
    first = next(iter(rank_enumerate(db, q)), None)
    if first is None:
        assert best == float("inf")
    else:
        assert best == pytest.approx(float(first[1]))


def test_sum_and_average_weight():
    db = path_database(2, 20, 4, seed=3)
    q = path_query(2)
    frep = FactorizedRepresentation(db, q)
    flat = naive_join(db, q)
    assert aggregate(frep, SUM_WEIGHT) == pytest.approx(sum(flat.weights))
    if len(flat):
        assert average_weight(frep) == pytest.approx(
            sum(flat.weights) / len(flat)
        )


def test_max_weight_aggregate():
    db = path_database(2, 20, 4, seed=4)
    q = path_query(2)
    frep = FactorizedRepresentation(db, q)
    flat = naive_join(db, q)
    if len(flat):
        assert aggregate(frep, MAX_WEIGHT) == pytest.approx(max(flat.weights))


def test_empty_result_aggregates():
    db = Database(
        [Relation("R1", ("A1", "A2"), [(0, 1)]), Relation("R2", ("A2", "A3"))]
    )
    frep = FactorizedRepresentation(db, path_query(2))
    assert frep.is_empty()
    assert count_results(frep) == 0
    assert aggregate(frep, MIN_WEIGHT) == float("inf")
    assert average_weight(frep) == 0.0
    assert list(enumerate_results(frep)) == []


def test_size_linear_while_flat_explodes():
    """§3 size-bounds claim: factorized O(n) vs flat Θ(n^ℓ)."""
    db = path_database(4, 60, 3, seed=5)  # tiny domain => huge flat output
    q = path_query(4)
    frep = FactorizedRepresentation(db, q)
    assert frep.size() <= 4 * 60
    assert frep.flat_size() > 50 * frep.size()
    assert frep.compression_ratio() > 50


def test_constant_delay_work_per_result():
    db = star_database(3, 40, 3, seed=6)
    q = star_query(3)
    frep = FactorizedRepresentation(db, q)
    c = Counters()
    total = sum(1 for _ in enumerate_results(frep, counters=c))
    assert total == count_results(frep)
    # Work per result bounded by a small constant (query size is 3+1).
    assert c.tuples_read <= 6 * total + 10


def test_counters_flow_through_build_and_aggregate():
    db = path_database(2, 15, 4, seed=7)
    c = Counters()
    frep = FactorizedRepresentation(db, path_query(2), counters=c)
    count_results(frep)
    assert c.tuples_read > 0
