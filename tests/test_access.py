"""Tests for the middleware access model (VerticalSource)."""

import pytest

from repro.data.generators import scored_lists
from repro.topk.access import VerticalSource, min_aggregate, sum_aggregate
from repro.util.counters import Counters


def _source(counters=None):
    lists = [
        [("a", 0.9), ("b", 0.5), ("c", 0.1)],
        [("b", 0.8), ("c", 0.7), ("a", 0.2)],
    ]
    return VerticalSource(lists, counters)


def test_requires_at_least_one_list():
    with pytest.raises(ValueError):
        VerticalSource([])


def test_rejects_incomplete_lists():
    with pytest.raises(ValueError, match="different object set"):
        VerticalSource([[("a", 1.0)], [("b", 1.0)]])


def test_rejects_unsorted_lists():
    with pytest.raises(ValueError, match="not sorted"):
        VerticalSource([[("a", 0.1), ("b", 0.9)]])


def test_sorted_access_descends_and_counts():
    c = Counters()
    s = _source(c)
    assert s.sorted_next(0) == ("a", 0.9)
    assert s.sorted_next(0) == ("b", 0.5)
    assert s.depth(0) == 2
    assert c.sorted_accesses == 2
    assert c.random_accesses == 0


def test_sorted_access_exhaustion_returns_none():
    s = _source()
    for _ in range(3):
        s.sorted_next(0)
    assert s.exhausted(0)
    assert s.sorted_next(0) is None


def test_random_access_counts_and_errors():
    c = Counters()
    s = _source(c)
    assert s.random_access(1, "a") == 0.2
    assert c.random_accesses == 1
    with pytest.raises(KeyError):
        s.random_access(0, "zz")


def test_last_seen_score_frontier():
    s = _source()
    assert s.last_seen_score(0) == 0.9  # before any access: top score
    s.sorted_next(0)
    assert s.last_seen_score(0) == 0.9
    s.sorted_next(0)
    assert s.last_seen_score(0) == 0.5


def test_reset_rewinds_cursors():
    s = _source()
    s.sorted_next(0)
    s.reset()
    assert s.depth(0) == 0
    assert s.sorted_next(0) == ("a", 0.9)


def test_brute_force_topk_oracle():
    s = _source()
    top = s.brute_force_topk(2)
    assert top[0] == ("b", pytest.approx(1.3))
    assert top[1] == ("a", pytest.approx(1.1))


def test_min_aggregate():
    s = _source()
    top = s.brute_force_topk(1, aggregate=min_aggregate)
    assert top[0][0] == "b"  # min(0.5, 0.8) = 0.5 is the best bottleneck


def test_generator_output_is_valid_source():
    lists = scored_lists(25, 4, "inverse", seed=9)
    s = VerticalSource(lists)
    assert s.num_lists == 4
    assert s.num_objects == 25
