"""Engine router: routing decisions, estimates, and EXPLAIN rendering."""

import pytest

from repro import sql as repro_sql
from repro.anyk import rank_enumerate
from repro.anyk.ranking import LEX, SUM
from repro.data.database import Database
from repro.data.generators import path_database, random_graph_database
from repro.data.relation import Relation
from repro.engine import CatalogStats, choose_method, route
from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    path_query,
    triangle_query,
)
from repro.query.hypergraph import is_free_connex


# ----------------------------------------------------------------------
# Catalog statistics
# ----------------------------------------------------------------------
def test_catalog_stats_sizes_and_fanout():
    db = Database(
        [
            Relation("R", ("a", "b"), [(1, 1), (1, 2), (2, 2)], [0.0] * 3),
            Relation("S", ("b", "c"), [(2, 9)], [0.0]),
        ]
    )
    q = ConjunctiveQuery(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z"))], name="RS"
    )
    stats = CatalogStats.gather(db, q, with_fanouts=True)
    assert stats.sizes == [3, 1]
    assert stats.max_size == 3
    r_stats = stats.atoms[0]
    assert r_stats.distinct["x"] == 2  # values {1, 2}
    assert r_stats.max_fanout("x") == pytest.approx(1.5)
    assert db.sizes() == {"R": 3, "S": 1}


# ----------------------------------------------------------------------
# Routing rules
# ----------------------------------------------------------------------
def test_small_k_on_acyclic_routes_to_anyk():
    db = path_database(length=3, size=80, domain=9, seed=1)
    plan = route(db, path_query(3), k=5, allow_middleware=False)
    assert plan.engine == "part:lazy"
    assert plan.is_anyk
    assert plan.estimates.acyclic


def test_no_limit_routes_to_batch():
    db = path_database(length=3, size=80, domain=9, seed=1)
    plan = route(db, path_query(3), k=None)
    assert plan.engine == "batch"
    assert any("time-to-last" in reason for reason in plan.rationale)


def test_huge_k_routes_to_batch():
    db = path_database(length=2, size=40, domain=6, seed=2)
    plan = route(db, path_query(2), k=10**9)
    assert plan.engine == "batch"


def test_deep_k_routes_to_rec():
    db = path_database(length=3, size=200, domain=10, seed=3)
    plan = route(db, path_query(3), k=2000, allow_middleware=False)
    # AGM bound is 200*200*200 >> 2*2000, so batch is not triggered.
    assert plan.engine == "rec"


def test_tiny_k_binary_join_routes_to_middleware():
    db = path_database(length=2, size=150, domain=12, seed=4)
    plan = route(db, path_query(2), k=3)
    assert plan.engine == "rank_join"
    without = route(db, path_query(2), k=3, allow_middleware=False)
    assert without.engine == "part:lazy"


def test_engine_package_imports_standalone():
    # repro.engine is a public entry point; it must not depend on
    # repro.sql having been imported first (import-cycle regression).
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-c", "import repro.engine; print('ok')"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_lex_on_cyclic_query_rejected_with_diagnostic():
    from repro.sql.errors import SqlError

    db = random_graph_database(num_edges=60, num_nodes=12, seed=14)
    sql_text = (
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "JOIN E AS e3 ON e2.dst = e3.src AND e3.dst = e1.src "
        "ORDER BY lex(weight) LIMIT 2"
    )
    with pytest.raises(SqlError, match="acyclic"):
        repro_sql.query(db, sql_text)


def test_lex_forced_onto_float_engines_rejected():
    from repro.sql.errors import SqlError

    db = path_database(length=2, size=30, domain=5, seed=15)
    sql_text = (
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "ORDER BY lex(weight) LIMIT 2"
    )
    for engine in ("batch", "rank_join"):
        with pytest.raises(SqlError, match="pre-combines weights"):
            repro_sql.query(db, sql_text, engine=engine)
    # The router itself never picks a float-only engine for lex.
    assert repro_sql.query(db, sql_text).plan.is_anyk


def test_duplicate_select_columns_still_count_as_projection():
    db = path_database(length=2, size=20, domain=4, seed=16)
    result = repro_sql.query(
        db,
        "SELECT R1.A1, R1.A1 FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "ORDER BY weight LIMIT 3",
    )
    assert result.compiled.is_projection  # A2/A3 are dropped
    for row, _ in result:
        assert len(row) == 2 and row[0] == row[1]


def test_lex_never_routes_to_batch():
    db = path_database(length=3, size=50, domain=8, seed=5)
    for k in (None, 5, 10**9):
        plan = route(db, path_query(3), ranking=LEX, k=k)
        assert plan.is_anyk, (k, plan.engine)


def test_empty_relation_routes_to_batch():
    db = path_database(length=2, size=30, domain=5, seed=6)
    db.replace(Relation("R2", ("A2", "A3")))
    plan = route(db, path_query(2), k=5)
    assert plan.engine == "batch"
    assert plan.estimates.agm_bound == 0.0


def test_fourcycle_and_cyclic_shapes_detected():
    db = random_graph_database(num_edges=200, num_nodes=30, seed=7)
    four = route(db, cycle_query(4), k=5)
    assert four.estimates.fourcycle and four.is_anyk
    tri = route(db, triangle_query(("E", "E", "E")), k=5)
    assert not tri.estimates.acyclic and not tri.estimates.fourcycle
    assert tri.estimates.fhw == pytest.approx(1.5)
    assert tri.is_anyk


def test_forced_engine_is_recorded():
    db = path_database(length=2, size=30, domain=5, seed=8)
    plan = route(db, path_query(2), k=2, engine="part:quick")
    assert plan.engine == "part:quick"
    assert any("forced" in reason for reason in plan.rationale)


def test_choose_method_feeds_rank_enumerate_auto():
    db = path_database(length=3, size=60, domain=8, seed=9)
    q = path_query(3)
    method = choose_method(db, q, k=5)
    assert method == "part:lazy"
    auto = list(rank_enumerate(db, q, method="auto", k=5))
    direct = list(rank_enumerate(db, q, method=method, k=5))
    assert auto == direct
    assert choose_method(db, q, k=None) == "batch"


# ----------------------------------------------------------------------
# Free-connex annotation
# ----------------------------------------------------------------------
def test_is_free_connex():
    q = path_query(3)  # R1(A1,A2) R2(A2,A3) R3(A3,A4)
    assert is_free_connex(q, q.variables)
    assert is_free_connex(q, ("A1", "A2"))  # prefix of the chain
    assert not is_free_connex(q, ("A1", "A4"))  # endpoints only: not connex
    with pytest.raises(Exception):
        is_free_connex(q, ("A1", "ZZ"))


def test_projection_free_connex_annotated_in_plan():
    db = path_database(length=3, size=40, domain=6, seed=10)
    sql_connex = (
        "SELECT R1.A1, R1.A2 FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "JOIN R3 ON R2.A3 = R3.A3 ORDER BY weight LIMIT 3"
    )
    sql_not_connex = (
        "SELECT R1.A1, R3.A4 FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "JOIN R3 ON R2.A3 = R3.A3 ORDER BY weight LIMIT 3"
    )
    assert repro_sql.query(db, sql_connex).plan.estimates.free_connex is True
    plan = repro_sql.query(db, sql_not_connex).plan
    assert plan.estimates.free_connex is False
    assert any("not free-connex" in r for r in plan.rationale)


# ----------------------------------------------------------------------
# EXPLAIN rendering (the acceptance surface)
# ----------------------------------------------------------------------
def test_explain_shows_anyk_for_small_k_on_acyclic():
    db = path_database(length=3, size=100, domain=10, seed=11)
    text = repro_sql.explain(
        db,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "JOIN R3 ON R2.A3 = R3.A3 ORDER BY weight LIMIT 5",
    )
    assert "shape:    acyclic" in text
    assert "engine:   part:lazy" in text
    assert "engine:   batch" not in text
    assert "because:" in text
    assert "agm:" in text


def test_explain_shows_batch_without_limit():
    db = path_database(length=3, size=100, domain=10, seed=11)
    text = repro_sql.explain(
        db,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "JOIN R3 ON R2.A3 = R3.A3 ORDER BY weight",
    )
    assert "engine:   batch" in text


def test_explain_mentions_union_of_trees_for_fourcycle():
    db = random_graph_database(num_edges=150, num_nodes=25, seed=12)
    text = repro_sql.explain(
        db,
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "JOIN E AS e3 ON e2.dst = e3.src "
        "JOIN E AS e4 ON e3.dst = e4.src AND e4.dst = e1.src "
        "ORDER BY weight LIMIT 10",
    )
    assert "shape:    4-cycle" in text
    assert "union of trees" in text


def test_explain_includes_filters_and_desc_notes():
    db = path_database(length=2, size=40, domain=6, seed=13)
    text = repro_sql.explain(
        db,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "WHERE R1.A1 >= 2 ORDER BY weight DESC LIMIT 4",
    )
    assert "filters:  R1.A1 >= 2" in text
    assert "DESC" in text
