"""Tests for the conjunctive query AST and builders."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.cq import (
    Atom,
    ConjunctiveQuery,
    QueryError,
    cycle_query,
    path_graph_query,
    path_query,
    star_query,
    triangle_query,
)


def test_atom_requires_variables():
    with pytest.raises(QueryError):
        Atom("R", ())


def test_atom_variable_set_deduplicates():
    atom = Atom("E", ("x", "x"))
    assert atom.variable_set == frozenset({"x"})
    assert str(atom) == "E(x, x)"


def test_query_variables_in_first_appearance_order():
    q = ConjunctiveQuery([Atom("R", ("b", "a")), Atom("S", ("a", "c"))])
    assert q.variables == ("b", "a", "c")


def test_query_requires_atoms():
    with pytest.raises(QueryError):
        ConjunctiveQuery([])


def test_validate_unknown_relation():
    db = Database([Relation("R", ("x", "y"))])
    q = ConjunctiveQuery([Atom("Missing", ("a", "b"))])
    with pytest.raises(QueryError, match="Missing"):
        q.validate(db)


def test_validate_arity_mismatch():
    db = Database([Relation("R", ("x", "y"))])
    q = ConjunctiveQuery([Atom("R", ("a",))])
    with pytest.raises(QueryError, match="arity"):
        q.validate(db)


def test_atom_variable_positions_handles_repeats():
    q = ConjunctiveQuery([Atom("E", ("x", "y", "x"))])
    assert q.atom_variable_positions(0) == {"x": [0, 2], "y": [1]}


def test_variables_of_subset():
    q = path_query(3)
    assert q.variables_of([0, 2]) == frozenset({"A1", "A2", "A3", "A4"})


def test_path_query_shape():
    q = path_query(3)
    assert len(q.atoms) == 3
    assert q.atoms[1].relation == "R2"
    assert q.variables == ("A1", "A2", "A3", "A4")
    with pytest.raises(QueryError):
        path_query(0)


def test_star_query_shape():
    q = star_query(3)
    assert all(atom.variables[0] == "A0" for atom in q.atoms)
    with pytest.raises(QueryError):
        star_query(0)


def test_triangle_query_shape():
    q = triangle_query()
    assert [a.relation for a in q.atoms] == ["R", "S", "T"]
    assert q.variables == ("A", "B", "C")
    with pytest.raises(QueryError):
        triangle_query(("R", "S"))


def test_cycle_query_closes_the_loop():
    q = cycle_query(4)
    assert q.atoms[0].variables == ("x1", "x2")
    assert q.atoms[3].variables == ("x4", "x1")
    assert all(atom.relation == "E" for atom in q.atoms)
    with pytest.raises(QueryError):
        cycle_query(1)


def test_path_graph_query_self_join():
    q = path_graph_query(2)
    assert [a.relation for a in q.atoms] == ["E", "E"]
    assert q.variables == ("x1", "x2", "x3")


def test_str_round_trips_shape():
    q = path_query(2, name="P")
    assert str(q) == "P(A1, A2, A3) :- R1(A1, A2), R2(A2, A3)"
