"""Tests for the k-shortest-path package and its any-k connection."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk.api import rank_enumerate
from repro.paths.graph import (
    Digraph,
    graph_path_to_answer,
    path_query_as_graph,
)
from repro.paths.hoffman_pavley import hoffman_pavley
from repro.paths.rea import recursive_enumeration
from repro.query.cq import QueryError, path_query, star_query

from conftest import path_db_strategy

ALGORITHMS = (hoffman_pavley, recursive_enumeration)


def _diamond() -> Digraph:
    g = Digraph()
    g.add_edge("s", "a", 1.0)
    g.add_edge("s", "b", 2.0)
    g.add_edge("a", "t", 5.0)
    g.add_edge("b", "t", 1.0)
    g.add_edge("a", "b", 0.5)
    return g


def _brute_force_paths(g, source, target, max_len=8):
    """All s-t walks up to a hop bound, sorted by cost (test oracle)."""
    results = []

    def walk(node, path, cost):
        if len(path) > max_len:
            return
        if node == target:
            results.append((cost, path))
            return
        for nxt, weight, _ in g.out_edges(node):
            walk(nxt, path + [nxt], cost + weight)

    walk(source, [source], 0.0)
    results.sort(key=lambda pair: (pair[0], pair[1]))
    return results


def test_digraph_shortest_path():
    g = _diamond()
    path, cost = g.shortest_path("s", "t")
    assert path == ["s", "a", "b", "t"]
    assert cost == pytest.approx(2.5)
    assert g.shortest_path("t", "s") is None


def test_digraph_rejects_negative_weights():
    g = Digraph()
    g.add_edge("s", "t", -1.0)
    with pytest.raises(ValueError):
        g.shortest_to("t")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_diamond_ranking(algorithm):
    g = _diamond()
    got = list(algorithm(g, "s", "t", k=4))
    costs = [round(c, 9) for _, c in got]
    # s-b-t=3, s-a-b-t=2.5, s-a-t=6: sorted = 2.5, 3, 6.
    assert costs == [2.5, 3.0, 6.0]
    assert got[0][0] == ["s", "a", "b", "t"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matches_brute_force_on_dag(algorithm):
    g = Digraph()
    edges = [
        ("s", "a", 1.0), ("s", "b", 4.0), ("a", "b", 1.0), ("a", "c", 7.0),
        ("b", "c", 2.0), ("b", "t", 9.0), ("c", "t", 1.0), ("s", "c", 9.5),
    ]
    for u, v, w in edges:
        g.add_edge(u, v, w)
    oracle = _brute_force_paths(g, "s", "t")
    got = list(algorithm(g, "s", "t", k=len(oracle)))
    assert [round(c, 9) for _, c in got] == [round(c, 9) for c, _ in oracle]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_cyclic_graph_walks_in_order(algorithm):
    g = Digraph()
    g.add_edge("s", "a", 1.0)
    g.add_edge("a", "s", 1.0)  # positive-weight cycle
    g.add_edge("a", "t", 1.0)
    got = list(algorithm(g, "s", "t", k=3))
    costs = [round(c, 9) for _, c in got]
    assert costs == [2.0, 4.0, 6.0]  # each loop adds 2
    assert got[1][0] == ["s", "a", "s", "a", "t"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_parallel_edges_counted_separately(algorithm):
    g = Digraph()
    g.add_edge("s", "t", 1.0)
    g.add_edge("s", "t", 2.0)
    got = list(algorithm(g, "s", "t", k=5))
    assert [round(c, 9) for _, c in got] == [1.0, 2.0]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_unreachable_target_empty(algorithm):
    g = Digraph()
    g.add_edge("s", "a", 1.0)
    g.add_node("t")
    assert list(algorithm(g, "s", "t", k=3)) == []


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@settings(max_examples=25, deadline=None)
@given(db_and_length=path_db_strategy(max_length=3, max_size=8))
def test_layered_reduction_equals_anyk(algorithm, db_and_length):
    """The tutorial's bridge: k-shortest paths on the layered DAG enumerate
    exactly the ranked answers of the path query."""
    db, length = db_and_length
    query = path_query(length)
    graph, source, target = path_query_as_graph(db, query)
    expected = [round(float(w), 9) for _, w in rank_enumerate(db, query)]
    got = [
        round(c, 9)
        for _, c in itertools.islice(
            algorithm(graph, source, target), len(expected) + 5
        )
    ]
    assert got == expected


def test_layered_reduction_answer_rows():
    from repro.data.generators import path_database

    db = path_database(3, 12, 3, seed=2)
    query = path_query(3)
    graph, source, target = path_query_as_graph(db, query)
    path, cost = next(hoffman_pavley(graph, source, target))
    answer = graph_path_to_answer(path)
    best_row, best_weight = next(iter(rank_enumerate(db, query)))
    assert answer == best_row
    assert cost == pytest.approx(float(best_weight))


def test_reduction_rejects_non_path_queries():
    from repro.data.generators import star_database

    db = star_database(3, 5, 3, seed=0)
    with pytest.raises(QueryError):
        path_query_as_graph(db, star_query(3))


def test_algorithms_agree_with_each_other():
    g = Digraph()
    edges = [
        ("s", "a", 0.3), ("s", "b", 0.1), ("a", "c", 0.4), ("b", "c", 0.6),
        ("c", "a", 0.2), ("c", "t", 0.5), ("a", "t", 1.1), ("b", "t", 1.9),
    ]
    for u, v, w in edges:
        g.add_edge(u, v, w)
    hp = [(tuple(p), round(c, 9)) for p, c in hoffman_pavley(g, "s", "t", k=12)]
    rea = [
        (tuple(p), round(c, 9))
        for p, c in recursive_enumeration(g, "s", "t", k=12)
    ]
    assert [c for _, c in hp] == [c for _, c in rea]
    assert sorted(hp) == sorted(rea)
