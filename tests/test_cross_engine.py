"""Cross-engine agreement properties — the suite's strongest invariant.

Every join engine must compute the same weighted result multiset, and every
any-k method must enumerate exactly that multiset in ranking order, for
random databases and all the query families of the tutorial.
"""

import pytest
from hypothesis import given, settings

from repro import METHODS, rank_enumerate
from repro.joins.base import multiset
from repro.joins.binary_plan import evaluate_left_deep
from repro.joins.boolean import has_any_result
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.joins.naive import evaluate as naive_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import cycle_query, path_graph_query, path_query, star_query, triangle_query
from repro.util.counters import Counters

from conftest import graph_db_strategy, path_db_strategy, ranked_weights, star_db_strategy

ACYCLIC_ENGINES = [
    naive_join,
    evaluate_left_deep,
    yannakakis_join,
    generic_join,
    leapfrog_join,
]
CYCLIC_ENGINES = [naive_join, evaluate_left_deep, generic_join, leapfrog_join]


@settings(max_examples=40, deadline=None)
@given(db_and_length=path_db_strategy())
def test_all_engines_agree_on_paths(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    reference = multiset(ACYCLIC_ENGINES[0](db, q))
    for engine in ACYCLIC_ENGINES[1:]:
        assert multiset(engine(db, q)) == reference


@settings(max_examples=30, deadline=None)
@given(db_and_arms=star_db_strategy())
def test_all_engines_agree_on_stars(db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    reference = multiset(ACYCLIC_ENGINES[0](db, q))
    for engine in ACYCLIC_ENGINES[1:]:
        assert multiset(engine(db, q)) == reference


@settings(max_examples=25, deadline=None)
@given(db=graph_db_strategy())
def test_all_engines_agree_on_graph_patterns(db):
    for q in (
        triangle_query(("E", "E", "E")),
        cycle_query(4),
        path_graph_query(2),
    ):
        reference = multiset(CYCLIC_ENGINES[0](db, q, max_combinations=10**7))
        for engine in CYCLIC_ENGINES[1:]:
            assert multiset(engine(db, q)) == reference


@settings(max_examples=20, deadline=None)
@given(db_and_length=path_db_strategy(max_length=2, max_size=8))
def test_every_anyk_method_equals_sorted_join(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    for method in METHODS:
        got = ranked_weights(rank_enumerate(db, q, method=method))
        assert got == expected, method


@settings(max_examples=20, deadline=None)
@given(db=graph_db_strategy(max_edges=10))
def test_anyk_methods_agree_on_fourcycle(db):
    q = cycle_query(4)
    expected = sorted(round(w, 9) for w in generic_join(db, q).weights)
    for method in ("part:lazy", "part:take2", "rec", "batch"):
        got = ranked_weights(rank_enumerate(db, q, method=method))
        assert got == expected, method


@settings(max_examples=25, deadline=None)
@given(db=graph_db_strategy())
def test_boolean_consistent_with_output_size(db):
    for q in (triangle_query(("E", "E", "E")), cycle_query(4)):
        assert has_any_result(db, q) == (len(generic_join(db, q)) > 0)


@settings(max_examples=20, deadline=None)
@given(db_and_length=path_db_strategy())
def test_boolean_consistent_on_acyclic(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    assert has_any_result(db, q) == (len(naive_join(db, q)) > 0)
