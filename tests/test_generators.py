"""Tests for the synthetic workload generators, including the adversarial
instances whose structural properties the experiments rely on."""

import math

import pytest

from repro.data.generators import (
    dangling_path_database,
    fourcycle_hub_database,
    path_database,
    random_graph_database,
    random_relation,
    rank_join_database,
    scored_lists,
    star_database,
    triangle_worstcase_database,
)
from repro.joins.generic_join import evaluate as generic_join
from repro.query.cq import cycle_query, path_query, triangle_query


def test_random_relation_deterministic_given_seed():
    a = random_relation("R", ("x", "y"), 20, 5, seed=42)
    b = random_relation("R", ("x", "y"), 20, 5, seed=42)
    assert a.rows == b.rows and a.weights == b.weights


def test_random_relation_respects_domain_and_range():
    r = random_relation("R", ("x",), 50, 3, seed=1, weight_range=(2.0, 3.0))
    assert all(0 <= row[0] < 3 for row in r.rows)
    assert all(2.0 <= w < 3.0 for w in r.weights)


def test_zipf_skew_concentrates_small_values():
    skewed = random_relation("R", ("x",), 400, 100, seed=3, zipf_skew=1.5)
    uniform = random_relation("R", ("x",), 400, 100, seed=3)
    small_skewed = sum(1 for row in skewed.rows if row[0] < 5)
    small_uniform = sum(1 for row in uniform.rows if row[0] < 5)
    assert small_skewed > 2 * small_uniform


def test_path_database_schema_chain():
    db = path_database(3, 10, 4, seed=0)
    assert db["R2"].schema == ("A2", "A3")
    assert db.names() == ["R1", "R2", "R3"]


def test_path_database_rejects_bad_length():
    with pytest.raises(ValueError):
        path_database(0, 5, 3)


def test_star_database_shares_center():
    db = star_database(3, 10, 4, seed=0)
    for i in (1, 2, 3):
        assert db[f"R{i}"].schema[0] == "A0"


def test_dangling_path_has_empty_output_but_fat_intermediate():
    db = dangling_path_database(3, 30)
    out = generic_join(db, path_query(3))
    assert len(out) == 0
    # The R1 ⋈ R2 intermediate would be quadratic: every row joins on 0.
    assert all(row[1] == 0 for row in db["R1"].rows)
    assert all(row[0] == 0 for row in db["R2"].rows)
    assert len(db["R3"]) == 0


def test_triangle_worstcase_output_linear_but_joins_quadratic():
    n = 24
    db = triangle_worstcase_database(n)
    half = n // 2
    assert len(db["R"]) == 2 * half - 1
    out = generic_join(db, triangle_query())
    # Known structure: triangles are (i,1,1), (1,j,1), (1,1,k) — Θ(n).
    assert len(out) == 3 * (half - 1) + 1
    # Pairwise join size is quadratic: every (i,1) joins every (1,j).
    r_second = sum(1 for row in db["R"].rows if row[1] == 1)
    s_first = sum(1 for row in db["S"].rows if row[0] == 1)
    assert r_second * s_first >= (half - 1) ** 2


def test_fourcycle_hub_has_quadratically_many_cycles():
    db = fourcycle_hub_database(48, seed=0)
    m = 48 // 8
    out = generic_join(db, cycle_query(4))
    # Each (a_i, c_j) pair closes at least one 4-cycle; directions and
    # degenerate cycles add more — so at least m² results.
    assert len(out) >= m * m


def test_random_graph_no_duplicates_no_loops():
    db = random_graph_database(60, 15, seed=2)
    rel = db["E"]
    assert len(set(rel.rows)) == len(rel)
    assert all(u != v for u, v in rel.rows)


def test_scored_lists_sorted_and_complete():
    lists = scored_lists(30, 3, "independent", seed=1)
    assert len(lists) == 3
    universe = {obj for obj, _ in lists[0]}
    for column in lists:
        assert {obj for obj, _ in column} == universe
        scores = [s for _, s in column]
        assert scores == sorted(scores, reverse=True)


def test_scored_lists_correlation_regimes_differ():
    def spread(corr):
        lists = scored_lists(50, 2, corr, seed=3)
        ranks1 = {obj: i for i, (obj, _) in enumerate(lists[0])}
        ranks2 = {obj: i for i, (obj, _) in enumerate(lists[1])}
        return sum(abs(ranks1[o] - ranks2[o]) for o in ranks1)

    assert spread("correlated") < spread("independent") < spread("inverse")


def test_rank_join_database_plants_winner_at_depth():
    depth = 40
    db = rank_join_database(100, depth, seed=5)
    r1 = db["R1"].sorted_by_weight()
    # The lightest planted tuple sits at (approximately) the given depth.
    planted_positions = [
        i for i, row in enumerate(r1.rows) if str(row[0]).startswith("ra_win")
    ]
    assert min(planted_positions) in (depth - 1, depth, depth + 1)


def test_rank_join_database_background_never_joins():
    db = rank_join_database(50, 5, seed=1, num_results=4)
    out = generic_join(db, path_query(2))
    assert len(out) == 4  # exactly the planted pairs


def test_rank_join_database_depth_validation():
    with pytest.raises(ValueError):
        rank_join_database(10, 10)
