"""Columnar store: parity with the row store, backends, cached views."""

import pytest

from repro.data.columnar import ColumnStore, resolve_backend
from repro.data.relation import Relation


def sample_relation() -> Relation:
    return Relation(
        "R",
        ("a", "b", "c"),
        [(1, "x", 2.0), (3, "y", 4.0), (1, "z", 6.0), (5, "x", 8.0)],
        [0.4, 0.1, 0.4, 0.2],
    )


def test_append_parity_with_row_store():
    r = sample_relation()
    store = ColumnStore(r.schema)
    for row, weight in zip(r.rows, r.weights):
        store.append(row, weight)
    assert len(store) == len(r)
    assert store.rows() == r.rows
    assert list(store.weights) == r.weights
    assert [store.row(i) for i in range(len(r))] == r.rows


def test_extend_parity_and_validation():
    r = sample_relation()
    store = ColumnStore(r.schema)
    store.extend(r.rows, r.weights)
    assert store.rows() == r.rows
    with pytest.raises(ValueError):
        store.extend([(1, 2)], [0.0])  # wrong arity
    with pytest.raises(ValueError):
        store.extend([(1, 2, 3)], [float("inf")])
    with pytest.raises(ValueError):
        store.extend([(1, 2, 3)], [0.1, 0.2])  # length mismatch


def test_index_parity_with_row_store():
    r = sample_relation()
    store = ColumnStore.from_relation(r)
    for attrs in (("a",), ("b",), ("a", "c"), ("c", "a")):
        assert store.index_on(attrs) == r.index_on(attrs)


def test_project_parity_with_row_store():
    r = sample_relation()
    store = ColumnStore.from_relation(r)
    projected = r.project(("c", "a"))
    assert store.project(("c", "a")) == projected.rows
    assert store.column("b") == [row[1] for row in r.rows]
    with pytest.raises(KeyError):
        store.column("missing")


def test_sorted_order_uses_type_tagged_tie_order():
    store = ColumnStore(("v",))
    store.extend([("b",), (2,), ("a",), (1,)], [0.5, 0.5, 0.5, 0.1])
    order = store.sorted_order()
    assert [store.row(i) for i in order] == [(1,), (2,), ("a",), ("b",)]


def test_sorted_order_external_weights():
    store = ColumnStore(("v",))
    store.extend([(1,), (2,)], [0.1, 0.9])
    assert store.sorted_order(weights=[5.0, 1.0]) == [1, 0]
    with pytest.raises(ValueError):
        store.sorted_order(weights=[1.0])


def test_relation_columnar_view_is_cached_and_invalidated():
    r = sample_relation()
    view = r.columnar()
    assert view is r.columnar()
    r.add((9, "q", 1.0), 0.7)
    fresh = r.columnar()
    assert fresh is not view
    assert len(fresh) == 5


def test_numpy_backend_flag_and_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
    assert resolve_backend(None) == "list"
    monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "1")
    resolved = resolve_backend(None)
    assert resolved in ("numpy", "list")  # degrades without numpy installed
    with pytest.raises(ValueError):
        resolve_backend("arrow")


def test_numpy_backend_weight_vector_parity():
    numpy = pytest.importorskip("numpy")
    r = sample_relation()
    store = r.columnar(backend="numpy")
    weights = store.weights
    assert isinstance(weights, numpy.ndarray)
    assert weights.dtype == numpy.float64
    assert list(weights) == r.weights
    assert store.rows() == r.rows
    assert store.sorted_order() == r.columnar(backend="list").sorted_order()
