"""The space-accounting layer: calibrated byte models, live/peak
profiles, memory-aware admission, and planner Q-error feedback.

Three properties anchor the suite (the issue's acceptance criteria):

- *O(1) accounting* — the gauges never walk structures; engine runs
  under a profile report per-category entry counts that match the
  structures' own bookkeeping;
- *clean refusal* — a server over its ``--max-mem-mb`` watermark
  answers new queries with ``mem_pressure``, never ``internal``, and
  sheds idle cursors before refusing;
- *feedback closes the loop* — drained cursors land a Q-error
  observation per statement template; truncated ones don't.
"""

from __future__ import annotations

import time

import pytest

import repro.sql
from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database
from repro.engine.executor import execute
from repro.engine.planner import plan_compiled
from repro.obs.memory import (
    MEM_BOUNDS,
    QERROR_BOUNDS,
    MemoryProfile,
    SpaceGauge,
    attach_tracker,
    batch_sort_bytes,
    columnar_row_bytes,
    hrjn_result_bytes,
    hrjn_seen_bytes,
    join_build_entry_bytes,
    pq_entry_bytes,
    q_error,
    rec_entry_bytes,
    rec_solution_bytes,
    row_bytes,
    sorted_scan_bytes,
    tdp_bucket_bytes,
    tdp_tuple_bytes,
    tracker_of,
)
from repro.obs.slo import SloError, parse_slo, spec_counts
from repro.server import QueryService
from repro.util.counters import Counters
from repro.util.histogram import Histogram

PATH_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def path_db():
    return path_database(length=3, size=120, domain=18, seed=23)


def profiled_counters(profile: MemoryProfile) -> Counters:
    counters = Counters()
    attach_tracker(counters, profile)
    return counters


# ----------------------------------------------------------------------
# Byte models and Q-error
# ----------------------------------------------------------------------
def test_byte_models_are_positive_ints():
    models = [
        pq_entry_bytes(3),
        rec_entry_bytes(2),
        rec_solution_bytes(2),
        tdp_tuple_bytes(),
        tdp_bucket_bytes(),
        hrjn_seen_bytes(),
        hrjn_result_bytes(4),
        sorted_scan_bytes(),
        row_bytes(4),
        join_build_entry_bytes(),
        columnar_row_bytes(4),
        batch_sort_bytes(),
    ]
    assert all(isinstance(m, int) and m > 0 for m in models)
    # Wider structures cost more.
    assert pq_entry_bytes(6) > pq_entry_bytes(2)
    assert columnar_row_bytes(8) > columnar_row_bytes(2)


def test_bucket_bounds_shapes():
    assert MEM_BOUNDS[0] == 1024.0
    assert list(MEM_BOUNDS) == sorted(MEM_BOUNDS)
    assert QERROR_BOUNDS[0] == 1.0  # the exact-estimate bucket
    assert QERROR_BOUNDS[-1] >= 1e6


def test_q_error_convention():
    assert q_error(10, 10) == 1.0
    assert q_error(100, 10) == 10.0
    assert q_error(10, 100) == 10.0
    # Both sides floored at one row: no division by zero, empty results
    # against tiny estimates compare as exact.
    assert q_error(0, 0) == 1.0
    assert q_error(0.25, 0) == 1.0
    assert q_error(0, 500) == 500.0


# ----------------------------------------------------------------------
# Gauges and profiles
# ----------------------------------------------------------------------
def test_space_gauge_tracks_live_and_peak():
    profile = MemoryProfile("part:lazy")
    gauge = profile.gauge("part.pq", 100)
    assert isinstance(gauge, SpaceGauge)
    gauge.add(3)
    gauge.remove(2)
    gauge.add(1)
    assert gauge.entries == 2
    assert gauge.peak_entries == 3
    assert gauge.live_bytes == 200
    assert gauge.peak_bytes == 300
    assert profile.live_bytes == 200
    assert profile.peak_bytes == 300
    # The same category returns the same gauge (shared per execution).
    assert profile.gauge("part.pq", 100) is gauge


def test_profile_peak_is_concurrent_across_gauges():
    profile = MemoryProfile()
    a = profile.gauge("a", 10)
    b = profile.gauge("b", 10)
    a.add(5)  # live 50
    b.add(5)  # live 100  <- the true high-water mark
    a.remove(5)
    b.remove(5)
    assert profile.live_bytes == 0
    assert profile.peak_bytes == 100  # not max(50, 50)


def test_profile_merge_takes_maxima_and_sums_streams():
    left = MemoryProfile("rec")
    left.streams = 1
    left.gauge("rec.pq", 10).add(4)
    right = MemoryProfile("rec")
    right.streams = 2
    right.gauge("rec.pq", 10).add(9)
    right.gauge("rec.pq", 10).remove(9)
    right.shards.append({"shard": 0, "peak_bytes": 7})
    left.merge(right)
    assert left.streams == 3
    assert left.peak_bytes == max(40, 90)  # maxima, not 130
    assert left.gauge("rec.pq", 10).peak_entries == 9
    assert left.shards == [{"shard": 0, "peak_bytes": 7}]


def test_profile_snapshot_roundtrip():
    profile = MemoryProfile("batch")
    profile.streams = 1
    profile.gauge("columnar.rows", 48).add(10)
    profile.gauge("batch.sort", 56).add(10)
    snapshot = profile.snapshot()
    rebuilt = MemoryProfile().merge_snapshot(snapshot)
    assert rebuilt.engine == "batch"
    assert rebuilt.peak_bytes == profile.peak_bytes
    assert rebuilt.snapshot()["categories"] == snapshot["categories"]
    summary = rebuilt.summary()
    assert summary["peak_mb"] == round(profile.peak_bytes / 1048576, 3)
    assert set(summary["categories"]) == {"columnar.rows", "batch.sort"}


def test_tracker_rides_counters_invisibly():
    profile = MemoryProfile()
    counters = profiled_counters(profile)
    assert tracker_of(counters) is profile
    assert tracker_of(None) is None
    assert tracker_of(Counters()) is None
    # The dynamic attribute is invisible to the dataclass machinery.
    assert "space" not in counters.snapshot()
    merged = Counters()
    merged.merge(counters)
    assert tracker_of(merged) is None


# ----------------------------------------------------------------------
# Engine accounting (every instrumented structure reports)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method, expected",
    [
        ("part:lazy", {"tdp.tuples", "tdp.buckets", "part.pq"}),
        ("rec", {"tdp.tuples", "tdp.buckets", "rec.pq", "rec.solutions"}),
        (
            "batch",
            {"join.build", "join.rows", "columnar.rows", "batch.sort"},
        ),
    ],
)
def test_engine_categories_report(path_db, method, expected):
    from repro.query.cq import path_query

    profile = MemoryProfile(method)
    counters = profiled_counters(profile)
    results = list(
        rank_enumerate(
            path_db, path_query(3), method=method, k=60, counters=counters
        )
    )
    assert len(results) == 60
    assert expected <= set(profile.categories())
    assert profile.peak_bytes > 0
    for category, gauge in profile.categories().items():
        assert gauge.peak_entries > 0, category


def test_rank_join_categories_report(path_db):
    from repro.query.cq import path_query
    from repro.topk.rank_join import rank_join_topk

    profile = MemoryProfile("rank_join")
    counters = profiled_counters(profile)
    results = rank_join_topk(path_db, path_query(3), k=60, counters=counters)
    assert len(results) == 60
    assert {"rankjoin.sorted", "hrjn.seen", "hrjn.buffer"} <= set(
        profile.categories()
    )
    assert profile.peak_bytes > 0


def test_accounting_is_silent_without_tracker(path_db):
    """No profile attached: engines run exactly as before (no gauges,
    no dynamic attributes) — the zero-cost default."""
    from repro.query.cq import path_query

    counters = Counters()
    results = list(
        rank_enumerate(
            path_db, path_query(3), method="part:lazy", k=30,
            counters=counters,
        )
    )
    assert len(results) == 30
    assert tracker_of(counters) is None


def test_part_vs_rec_peak_separation(path_db):
    """The paper's space separation: REC memoizes every solution prefix
    per bucket, PART keeps only frontier candidates — REC's accounted
    peak must dominate PART's on the same enumeration."""
    from repro.query.cq import path_query

    peaks = {}
    for method in ("part:lazy", "rec"):
        profile = MemoryProfile(method)
        counters = profiled_counters(profile)
        list(
            rank_enumerate(
                path_db, path_query(3), method=method, k=500,
                counters=counters,
            )
        )
        peaks[method] = profile.peak_bytes
    assert peaks["rec"] > peaks["part:lazy"]


def test_executor_threads_memory_through(path_db):
    sql = PATH_SQL.format(k=40)
    compiled = repro.sql.analyze(path_db, sql)
    plan = plan_compiled(path_db, compiled)
    memory = MemoryProfile()
    rows = list(
        execute(path_db, compiled, plan, memory=memory)
    )
    assert len(rows) == 40
    assert memory.engine == plan.engine
    assert memory.streams == 1
    assert memory.touched and memory.peak_bytes > 0


def test_parallel_workers_ship_shard_snapshots():
    from repro.parallel import parallel_rank_enumerate
    from repro.query.cq import path_query

    db = path_database(length=2, size=60, domain=12, seed=5)
    memory = MemoryProfile()
    # k past the full join size: the merge drains every shard stream to
    # its done frame, so both snapshots land deterministically (a top-k
    # cutoff may race a worker's done frame when tracing is off).
    results = list(
        parallel_rank_enumerate(
            db, path_query(2), workers=2, k=100_000, memory=memory
        )
    )
    assert len(results) >= 50
    # Worker bytes live in worker processes: attribution arrives via the
    # done frames, deliberately excluded from the parent's own totals.
    shards = {shard["shard"] for shard in memory.shards}
    assert shards == {0, 1}
    assert all(shard["peak_bytes"] > 0 for shard in memory.shards)


# ----------------------------------------------------------------------
# Service integration: payloads, admission, eviction, Q-error
# ----------------------------------------------------------------------
def drain(service, cursor_id, n=500):
    while True:
        page = service.fetch(cursor_id, n=n)
        if page["done"]:
            return page


def test_query_and_fetch_carry_mem_payload(path_db):
    service = QueryService(path_db)
    opened = service.query(PATH_SQL.format(k=200), fetch=10)
    assert opened["mem"]["peak_bytes"] > 0
    assert opened["mem"]["live_bytes"] > 0
    page = service.fetch(opened["cursor"], n=10)
    assert page["mem"]["peak_bytes"] >= opened["mem"]["peak_bytes"]
    described = service.cursors.stats()["cursors"][0]
    assert described["peak_bytes"] == page["mem"]["peak_bytes"]
    service.shutdown()


def test_memory_pressure_refuses_with_clean_code(path_db):
    """Fresh cursors are idle-protected, so a tiny watermark with a long
    grace refuses the second query — as mem_pressure, never internal."""
    service = QueryService(path_db, max_mem_mb=0.001, mem_evict_idle_s=60.0)
    sql = PATH_SQL.format(k=500)
    first = service.handle({"id": 1, "op": "query", "sql": sql, "fetch": 5})
    assert first["ok"]
    second = service.handle({"id": 2, "op": "query", "sql": sql, "fetch": 5})
    assert not second["ok"]
    assert second["error"]["code"] == "mem_pressure"
    assert "watermark" in second["error"]["message"]
    assert service.memory_stats()["pressure_rejections"] == 1
    # The refused request never opened a cursor.
    assert len(service.cursors) == 1
    service.shutdown()


def test_memory_pressure_evicts_idle_cursors_first(path_db):
    service = QueryService(path_db, max_mem_mb=0.001, mem_evict_idle_s=0.01)
    sql = PATH_SQL.format(k=500)
    first = service.query(sql, fetch=5)
    time.sleep(0.05)  # age the cursor past the eviction grace
    second = service.query(sql, fetch=5)
    assert second["cursor"] is not None
    stats = service.memory_stats()
    assert stats["pressure_evictions"] >= 1
    assert stats["pressure_rejections"] == 0
    # The evicted session is gone; fetching it is unknown_cursor.
    response = service.handle(
        {"id": 3, "op": "fetch", "cursor": first["cursor"]}
    )
    assert not response["ok"]
    assert response["error"]["code"] == "unknown_cursor"
    service.shutdown()


def test_retired_cursor_feeds_peak_histogram_and_aggregate(path_db):
    service = QueryService(path_db)
    opened = service.query(PATH_SQL.format(k=120), fetch=0)
    drain(service, opened["cursor"])
    memory = service.memory_stats()
    assert opened["engine"] in memory["profiles"]
    assert memory["profiles"][opened["engine"]]["peak_bytes"] > 0
    children = dict(
        (labels["engine"], child)
        for labels, child in service._mem_metric.children()
    )
    assert children[opened["engine"]].summary()["count"] == 1
    service.shutdown()


def test_qerror_recorded_only_when_stream_ran_dry(path_db):
    service = QueryService(path_db)
    # Truncated at LIMIT: the actual cardinality is unknown — no sample.
    opened = service.query(PATH_SQL.format(k=10), fetch=0)
    drain(service, opened["cursor"])
    assert not list(service._qerror_metric.children())
    # LIMIT far above the join size: the stream runs dry — one sample.
    opened = service.query(PATH_SQL.format(k=10_000_000), fetch=0)
    drain(service, opened["cursor"])
    children = list(service._qerror_metric.children())
    assert len(children) == 1
    labels, child = children[0]
    assert len(labels["template"]) == 16  # the template digest
    assert child.summary()["count"] == 1
    service.shutdown()


def test_memory_metric_families_export(path_db):
    service = QueryService(path_db, max_mem_mb=64.0)
    opened = service.query(PATH_SQL.format(k=60), fetch=0)
    drain(service, opened["cursor"])
    text = service.metrics()["metrics"]
    assert "# TYPE repro_mem_peak_bytes histogram" in text
    assert 'repro_mem_peak_bytes_count{engine="' in text
    assert "repro_mem_live_bytes 0" in text
    assert f"repro_mem_watermark_bytes {64 * 1024 * 1024}" in text
    assert "repro_mem_pressure_rejections_total 0" in text
    assert "repro_mem_pressure_evictions_total 0" in text
    service.shutdown()


# ----------------------------------------------------------------------
# SLO grammar: peak_mem_mb<=
# ----------------------------------------------------------------------
def test_peak_mem_slo_spec_parses():
    spec = parse_slo("peak_mem_mb<=64")
    assert spec.kind == "memory"
    assert spec.indicator == "peak_mem"
    assert spec.percentile == 99.0
    assert spec.threshold_ms == 64.0  # MB in the spec-unit slot
    assert "64 MB" in spec.objective()
    spec = parse_slo("peak_mem_p95_mb<=1.5")
    assert spec.percentile == 95.0


@pytest.mark.parametrize(
    "raw",
    ["peak_mem_mb>=64", "peak_mem_mb<=64%", "peak_mem_mb<=0",
     "peak_mem_p200_mb<=64"],
)
def test_peak_mem_slo_spec_rejects(raw):
    with pytest.raises(SloError):
        parse_slo(raw)


def test_peak_mem_spec_counts_converts_mb_to_bytes():
    hist = Histogram(bounds=MEM_BOUNDS)
    hist.record(512 * 1024)        # half a MB: good
    hist.record(10 * 1024 * 1024)  # ten MB: bad under a 1 MB objective
    spec = parse_slo("peak_mem_mb<=1")
    total, bad = spec_counts(spec, lambda name: hist, lambda: (0, 0))
    assert total == 2
    assert bad == 1


def test_service_evaluates_peak_mem_slo(path_db):
    service = QueryService(path_db, slos=["peak_mem_mb<=4096"])
    opened = service.query(PATH_SQL.format(k=60), fetch=0)
    drain(service, opened["cursor"])
    report = service.slo()
    assert report["specs"] == ["peak_mem_mb<=4096"]
    slo = report["slos"][0]
    assert slo["objective"].endswith("4096 MB")
    assert slo["status"] == "ok"
    service.shutdown()


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE + CLI surfaces
# ----------------------------------------------------------------------
def test_run_analyze_reports_memory_and_estimates(path_db):
    from repro.obs import run_analyze
    from repro.obs.analyze import render_analyze

    report = run_analyze(path_db, PATH_SQL.format(k=50))
    assert report["memory"]["peak_bytes"] > 0
    assert report["memory"]["categories"]
    estimates = report["estimates"]
    assert estimates["actual_rows"] == 50
    assert estimates["truncated"] is True
    assert estimates["qerror"] >= 1.0
    rendered = render_analyze(report)
    assert "memory:" in rendered
    assert "estimate:" in rendered
    assert "LIMIT-truncated" in rendered


def test_explain_analyze_op_carries_memory(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {
            "id": 1,
            "op": "explain",
            "sql": PATH_SQL.format(k=30),
            "analyze": True,
        }
    )
    assert response["ok"]
    assert response["analyze"]["memory"]["peak_bytes"] > 0
    assert response["analyze"]["estimates"]["actual_rows"] == 30
    # The analyzed run folds into the same aggregates a cursor would.
    assert service.memory_stats()["profiles"]
    service.shutdown()


def test_stats_and_summary_render_memory(path_db):
    from repro.obs.cli import render_summary

    service = QueryService(path_db, max_mem_mb=32.0)
    opened = service.query(PATH_SQL.format(k=40), fetch=0)
    drain(service, opened["cursor"])
    stats = service.stats()
    assert stats["memory"]["watermark_bytes"] == 32 * 1024 * 1024
    text = render_summary(stats)
    assert "memory live=" in text
    assert "watermark=32 MB" in text
    assert "peak memory (accounted, per engine):" in text
    service.shutdown()


def test_obs_cli_watch_guards():
    from repro.obs.cli import main as obs_main

    # --watch applies to the summary and --metrics views only, and needs
    # a positive period; both are caught before any connection attempt.
    assert obs_main(["--watch", "2", "--traces"]) == 2
    assert obs_main(["--watch", "0", "--metrics"]) == 2
