"""The ``repro-serve`` console entry: spec parsing fast, boot smoke slow.

The boot test is what CI's "server smoke" job runs: start the real
subprocess, wait for the ``listening on`` line, run a client query over
the wire, and require a clean shutdown.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.server.cli import build_parser, parse_generator_spec

SRC = str(Path(__file__).resolve().parent.parent / "src")


def test_generator_spec_parses_to_database():
    db = parse_generator_spec("path:length=3,size=60,domain=10,seed=3")
    assert set(db.names()) == {"R1", "R2", "R3"}
    assert len(db["R1"]) == 60
    graph = parse_generator_spec("graph:num_edges=50,num_nodes=20,seed=1")
    assert graph.names() == ["E"]


def test_generator_spec_rejects_garbage():
    with pytest.raises(SystemExit):
        parse_generator_spec("warp:size=10")
    with pytest.raises(SystemExit):
        parse_generator_spec("path:length")
    with pytest.raises(SystemExit):
        parse_generator_spec("path:length=three")
    with pytest.raises(SystemExit):
        parse_generator_spec("path:warp_factor=9")


def test_parser_defaults():
    args = build_parser().parse_args(["--demo", "star"])
    assert args.demo == "star"
    assert args.max_cursors == 64
    assert args.port != 0  # the published default port


@pytest.mark.slow
def test_serve_boot_and_client_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--demo",
            "graph",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = process.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        from repro.server import Client

        sql = (
            "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
            "ORDER BY weight LIMIT 12"
        )
        with Client(port=port) as client:
            rows = client.execute(sql, batch=5).fetchall()
            assert len(rows) == 12
            weights = [w for _, w in rows]
            assert weights == sorted(weights)
            assert client.stats()["queries"] == 1
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
