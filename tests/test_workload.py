"""The workload subsystem: samplers, arrivals, traces, drivers, validation.

The determinism contract gets the heaviest coverage — the acceptance
bar for ``repro-loadgen`` is that a (scenario, seed, duration, clients)
tuple fully determines the request trace — followed by short end-to-end
runs (in-process and wire) asserting zero errors and zero replay
mismatches under concurrent mutations, for 1 and 4 client lanes.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.server.cli import parse_generator_spec
from repro.server.service import QueryService
from repro.workload import (
    SCENARIOS,
    BurstyOnOff,
    ClosedLoop,
    HotspotSampler,
    InProcessConnection,
    IntParam,
    OpenLoopPoisson,
    SampledPage,
    UniformSampler,
    ZipfianSampler,
    build_trace,
    make_sampler,
    normalize_page,
    render_text,
    run_scenario,
    verify_samples,
)
from repro.workload.scenarios import PATH_DATASET


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------
def _draws(sampler, seed, n=4000):
    rng = random.Random(seed)
    return [sampler.draw(rng) for _ in range(n)]


def test_samplers_deterministic_and_in_range():
    for sampler in (
        UniformSampler(7),
        ZipfianSampler(7, skew=1.2),
        HotspotSampler(7, hot_fraction=0.2, hot_weight=0.8),
    ):
        a, b = _draws(sampler, 11), _draws(sampler, 11)
        assert a == b
        assert all(0 <= i < 7 for i in a)
        assert _draws(sampler, 12) != a


def test_zipf_concentrates_on_low_ranks():
    counts = Counter(_draws(ZipfianSampler(20, skew=1.2), 3))
    assert counts[0] > counts[10] > 0 or counts[10] == 0
    assert counts[0] == max(counts.values())


def test_hotspot_hot_share():
    sampler = HotspotSampler(100, hot_fraction=0.1, hot_weight=0.9)
    draws = _draws(sampler, 5, n=6000)
    hot = sum(1 for i in draws if i < sampler.hot_count)
    assert 0.85 < hot / len(draws) < 0.95


def test_make_sampler_shapes_and_errors():
    assert isinstance(make_sampler("uniform", 3), UniformSampler)
    assert isinstance(make_sampler("zipf", 3), ZipfianSampler)
    assert isinstance(make_sampler("hotspot", 3), HotspotSampler)
    with pytest.raises(ValueError, match="unknown popularity shape"):
        make_sampler("bimodal", 3)
    with pytest.raises(ValueError):
        UniformSampler(0)
    with pytest.raises(ValueError):
        ZipfianSampler(3, skew=0.0)
    with pytest.raises(ValueError):
        HotspotSampler(3, hot_fraction=0.0)


def test_int_param_skew_and_range():
    rng = random.Random(2)
    cache: dict = {}
    spec = IntParam(10, 19, skew=1.3)
    draws = [spec.draw(rng, cache) for _ in range(2000)]
    assert all(10 <= v <= 19 for v in draws)
    assert Counter(draws)[10] == max(Counter(draws).values())
    assert len(cache) == 1  # the zipf sampler is built once per spec


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def test_closed_loop_schedule_is_unpaced_and_sized():
    offsets = ClosedLoop(ops_per_client_s=10).lane_offsets(
        random.Random(1), 2.0, lanes=4
    )
    assert offsets == [None] * 20


def test_poisson_offsets_sorted_within_horizon_and_rate_scaled():
    rng = random.Random(9)
    offsets = OpenLoopPoisson(rate=200.0).lane_offsets(rng, 5.0, lanes=2)
    assert offsets == sorted(offsets)
    assert all(0 < t < 5.0 for t in offsets)
    # Each of 2 lanes gets ~rate/2 * duration = 500 events.
    assert 350 < len(offsets) < 650


def test_bursty_on_phase_denser_than_off_phase():
    rng = random.Random(4)
    process = BurstyOnOff(on_rate=200.0, off_rate=10.0, on_s=1.0, off_s=1.0)
    offsets = process.lane_offsets(rng, 20.0, lanes=1)
    on = sum(1 for t in offsets if (t % 2.0) < 1.0)
    off = len(offsets) - on
    assert on > 5 * max(off, 1)


def test_arrival_validation():
    with pytest.raises(ValueError):
        ClosedLoop(0)
    with pytest.raises(ValueError):
        OpenLoopPoisson(-1)
    with pytest.raises(ValueError):
        BurstyOnOff(on_rate=0)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def test_trace_is_a_pure_function_of_its_arguments():
    scenario = SCENARIOS["read-mostly"]
    a = build_trace(scenario, seed=7, duration=5.0, clients=4)
    b = build_trace(scenario, seed=7, duration=5.0, clients=4)
    assert a.query_lanes == b.query_lanes
    assert a.mutation_lane == b.mutation_lane
    assert a.sha256() == b.sha256()
    # Any knob changes the trace.
    assert build_trace(scenario, seed=8, duration=5.0, clients=4).sha256() != a.sha256()
    assert build_trace(scenario, seed=7, duration=4.0, clients=4).sha256() != a.sha256()
    assert build_trace(scenario, seed=7, duration=5.0, clients=2).sha256() != a.sha256()


def test_trace_shape_and_content():
    scenario = SCENARIOS["churn"]
    trace = build_trace(scenario, seed=3, duration=3.0, clients=3)
    assert len(trace.query_lanes) == 3
    assert trace.query_count > 0
    assert trace.mutation_count > 0
    template_names = {t.name for t in scenario.templates}
    for lane in trace.query_lanes:
        for request in lane:
            assert request.kind == "query"
            assert request.template in template_names
            assert "SELECT" in request.sql
            assert request.offset_s is None or 0 <= request.offset_s < 3.0
    offsets = [r.offset_s for r in trace.mutation_lane]
    assert offsets == sorted(offsets)
    assert all(
        r.sql.startswith(("INSERT", "DELETE")) for r in trace.mutation_lane
    )


def test_read_only_scenario_has_no_mutations():
    trace = build_trace(SCENARIOS["read-only"], seed=1, duration=2.0, clients=2)
    assert trace.mutation_lane == []


def test_trace_rejects_bad_arguments():
    scenario = SCENARIOS["read-only"]
    with pytest.raises(ValueError):
        build_trace(scenario, seed=1, duration=0.0, clients=1)
    with pytest.raises(ValueError):
        build_trace(scenario, seed=1, duration=1.0, clients=0)


# ----------------------------------------------------------------------
# End-to-end runs (short horizons keep the tier-1 suite fast)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("clients", [1, 4])
def test_inprocess_run_clean_and_validated(clients):
    result = run_scenario(
        "read-mostly",
        seed=7,
        duration=1.2,
        clients=clients,
        mode="inprocess",
        sample=0.5,
    )
    report = result.report
    assert report["errors"]["total"] == 0
    assert report["trace"]["queries"] == result.trace.query_count
    assert report["trace"]["mutations"] > 0  # concurrent mutations ran
    validation = report["validation"]
    assert validation["enabled"]
    assert validation["sampled_pages"] > 0
    assert validation["mismatches"] == 0
    assert validation["unverifiable"] == 0
    for op in ("query", "fetch"):
        summary = report["ops"][op]
        assert summary["count"] > 0
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
    assert report["ttfr_ms"]["count"] > 0
    assert report["throughput"]["ops_per_s"] > 0
    # The server-side per-op latency satellite: visible through stats.
    server = report["server"]
    assert server["op_latency_ms"]["query"]["count"] >= report["ops"]["query"]["count"]
    assert server["op_latency_ms"]["query"]["mean"] <= server["op_latency_ms"]["query"]["max"]
    text = render_text(report)
    assert "0 mismatches" in text or "validate:" in text
    assert "errors:   none" in text


def test_wire_run_clean_and_validated():
    result = run_scenario(
        "churn",
        seed=5,
        duration=1.2,
        clients=2,
        mode="wire",
        sample=0.5,
    )
    report = result.report
    assert report["mode"] == "wire"
    assert report["errors"]["total"] == 0
    assert report["validation"]["mismatches"] == 0
    assert report["validation"]["checked"] > 0
    assert report["server"]["mutations"] == report["trace"]["mutations"]


def test_identical_seed_replays_identical_trace_across_runs():
    a = run_scenario(
        "read-only", seed=11, duration=1.0, clients=2, mode="inprocess",
        sample=0.0,
    )
    b = run_scenario(
        "read-only", seed=11, duration=1.0, clients=2, mode="inprocess",
        sample=0.0,
    )
    assert a.trace.query_lanes == b.trace.query_lanes
    assert a.report["trace"]["sha256"] == b.report["trace"]["sha256"]


def test_unknown_scenario_and_mode_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nope", duration=0.5)
    with pytest.raises(ValueError, match="unknown mode"):
        run_scenario("read-only", duration=0.5, mode="quantum")


# ----------------------------------------------------------------------
# Error accounting and the validator's teeth
# ----------------------------------------------------------------------
def test_driver_counts_sql_errors_and_continues():
    from repro.dynamic import VersionedDatabase
    from repro.workload.driver import run_trace
    from repro.workload.scenarios import (
        QueryTemplate,
        Scenario,
    )

    scenario = Scenario(
        name="broken",
        description="one bad template",
        dataset=PATH_DATASET,
        templates=(
            QueryTemplate(name="bad", sql="SELECT * FROM NoSuchRelation"),
            QueryTemplate(
                name="good",
                sql="SELECT * FROM R1 ORDER BY weight LIMIT {k}",
                params=(("k", IntParam(3, 5)),),
            ),
        ),
        popularity="uniform",
        arrival=ClosedLoop(ops_per_client_s=20),
    )
    trace = build_trace(scenario, seed=2, duration=1.0, clients=1)
    service = QueryService(
        VersionedDatabase(parse_generator_spec(PATH_DATASET), copy=False)
    )
    result = run_trace(
        trace,
        lambda: InProcessConnection(service),
        mode="inprocess",
        sample=0.0,
    )
    errors = result.report["errors"]
    assert errors["by_code"].get("sql_error", 0) > 0
    # The good template still produced ranked rows despite the failures.
    assert result.report["rows"] > 0


def test_verify_samples_detects_corruption():
    def initial_db():
        return parse_generator_spec(PATH_DATASET)

    import repro.sql

    sql = "SELECT * FROM R1 ORDER BY weight LIMIT 5"
    honest = normalize_page(repro.sql.query(initial_db(), sql).fetchall())
    ok = verify_samples(
        initial_db,
        mutation_log=[],
        samples=[SampledPage(sql=sql, version=1, offset=0, rows=honest)],
    )
    assert ok.checked == 1 and not ok.mismatches

    corrupted = ((("tampered",), 0.0),) + tuple(honest[1:])
    bad = verify_samples(
        initial_db,
        mutation_log=[],
        samples=[SampledPage(sql=sql, version=1, offset=0, rows=corrupted)],
    )
    assert len(bad.mismatches) == 1
    assert "row 0" in bad.mismatches[0].detail

    # A sample pinned to a version the mutation log cannot reach is
    # reported as unverifiable, never silently passed.
    gap = verify_samples(
        initial_db,
        mutation_log=[],
        samples=[SampledPage(sql=sql, version=9, offset=0, rows=honest)],
    )
    assert gap.unverifiable == 1 and gap.checked == 0


def test_verify_samples_replays_mutations_to_the_pinned_version():
    def initial_db():
        return parse_generator_spec(PATH_DATASET)

    import repro.sql
    from repro.dynamic import VersionedDatabase

    shadow = VersionedDatabase(initial_db(), copy=False)
    mutations = [
        "INSERT INTO R1 (A1, A2, weight) VALUES (1, 2, -5.0)",
        "DELETE FROM R1 WHERE A1 = 1 AND A2 = 2",
    ]
    log = []
    sql = "SELECT * FROM R1 ORDER BY weight LIMIT 5"
    samples = [
        SampledPage(
            sql=sql,
            version=1,
            offset=0,
            rows=normalize_page(repro.sql.query(shadow.snapshot(), sql).fetchall()),
        )
    ]
    for statement in mutations:
        result = repro.sql.mutate(shadow, statement)
        log.append((result.version, statement))
        samples.append(
            SampledPage(
                sql=sql,
                version=result.version,
                offset=0,
                rows=normalize_page(
                    repro.sql.query(shadow.snapshot(), sql).fetchall()
                ),
            )
        )
    outcome = verify_samples(initial_db, log, samples)
    assert outcome.checked == 3
    assert not outcome.mismatches and outcome.unverifiable == 0


def test_normalize_page_shapes():
    page = normalize_page([[[1, 2], 0.5], [[3, 4], [0.25, 0.75]]])
    assert page == (((1, 2), 0.5), ((3, 4), (0.25, 0.75)))


# ----------------------------------------------------------------------
# The repro-loadgen CLI (in-process: fast, and counted by coverage)
# ----------------------------------------------------------------------
def test_cli_list_and_usage_errors(capsys):
    from repro.workload.cli import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in out

    assert main([]) == 64  # --scenario required
    assert main(["--scenario", "read-only", "--mode", "inprocess",
                 "--connect", "x:1"]) == 64
    assert main(["--scenario", "read-only", "--connect", "not-a-port"]) == 64


def test_cli_trace_only_is_deterministic(capsys):
    import json as jsonlib

    from repro.workload.cli import main

    argv = ["--scenario", "read-mostly", "--seed", "7", "--duration", "5",
            "--trace-only"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = jsonlib.loads(first)
    assert payload["sha256"]
    assert payload["query_lanes"] and payload["mutation_lane"]


def test_cli_end_to_end_inprocess(tmp_path, capsys):
    import json as jsonlib

    from repro.workload.cli import main

    report_path = tmp_path / "report.json"
    code = main([
        "--scenario", "read-mostly", "--seed", "7", "--duration", "1",
        "--clients", "2", "--mode", "inprocess", "--sample", "0.5",
        "--json", str(report_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "SLO report" in out and "errors:   none" in out
    report = jsonlib.loads(report_path.read_text())
    assert report["errors"]["total"] == 0
    assert report["validation"]["mismatches"] == 0
    assert report["ops"]["query"]["p95_ms"] >= report["ops"]["query"]["p50_ms"]


# ----------------------------------------------------------------------
# The server-side satellites exercised directly
# ----------------------------------------------------------------------
def test_query_response_reports_pinned_snapshot_version():
    from repro.dynamic import VersionedDatabase

    service = QueryService(
        VersionedDatabase(parse_generator_spec(PATH_DATASET), copy=False)
    )
    connection = InProcessConnection(service)
    sql = "SELECT * FROM R1 ORDER BY weight LIMIT 3"
    assert connection.call("query", sql=sql, fetch=3)["version"] == 1
    connection.call(
        "mutate", sql="INSERT INTO R1 (A1, A2, weight) VALUES (0, 0, 0.5)"
    )
    assert connection.call("query", sql=sql, fetch=3)["version"] == 2


def test_stats_op_latency_counts_every_dispatched_op():
    from repro.dynamic import VersionedDatabase

    service = QueryService(
        VersionedDatabase(parse_generator_spec(PATH_DATASET), copy=False)
    )
    connection = InProcessConnection(service)
    connection.call(
        "query", sql="SELECT * FROM R1 ORDER BY weight LIMIT 2", fetch=2
    )
    with pytest.raises(Exception):
        connection.call("query", sql="SELECT broken")
    latency = connection.call("stats")["op_latency_ms"]
    # Two query dispatches — the failed one still cost server time.
    assert latency["query"]["count"] == 2
    assert latency["query"]["mean"] <= latency["query"]["max"]
    # A stats dispatch observes itself only after building its payload,
    # so the *second* stats call sees the first one's timing.
    assert connection.call("stats")["op_latency_ms"]["stats"]["count"] == 1
