"""Tests for fractional edge covers and the AGM bound (§3 claims)."""

import math

import pytest
from hypothesis import given, settings

from repro.data.generators import random_graph_database, triangle_worstcase_database
from repro.joins.generic_join import evaluate as generic_join
from repro.query.agm import (
    agm_bound,
    fractional_cover_number,
    fractional_edge_cover,
    integral_cover_number,
)
from repro.query.cq import Atom, ConjunctiveQuery, QueryError, cycle_query, path_query, star_query, triangle_query

from conftest import graph_db_strategy


def test_triangle_fractional_cover_is_three_halves():
    assert fractional_cover_number(triangle_query()) == pytest.approx(1.5)


def test_fourcycle_fractional_cover_is_two():
    assert fractional_cover_number(cycle_query(4)) == pytest.approx(2.0)


def test_fivecycle_fractional_vs_integral_gap():
    q = cycle_query(5)
    assert fractional_cover_number(q) == pytest.approx(2.5)
    assert integral_cover_number(q) == 3


def test_path_cover_numbers():
    # A length-l chain has l+1 variables and needs ceil((l+1)/2) atoms,
    # both fractionally and integrally (consecutive disjoint edges).
    assert fractional_cover_number(path_query(3)) == pytest.approx(2.0)
    assert integral_cover_number(path_query(3)) == 2
    assert fractional_cover_number(path_query(4)) == pytest.approx(3.0)
    assert integral_cover_number(path_query(4)) == 3


def test_star_cover_is_number_of_arms():
    # Every arm has a private variable, so all atoms are needed.
    assert fractional_cover_number(star_query(3)) == pytest.approx(3.0)


def test_cover_weights_cover_every_variable():
    q = triangle_query()
    cover = fractional_edge_cover(q)
    for variable in q.variables:
        total = sum(
            w
            for w, atom in zip(cover.weights, q.atoms)
            if variable in atom.variable_set
        )
        assert total >= 1.0 - 1e-9


def test_sizes_length_validated():
    with pytest.raises(QueryError):
        fractional_edge_cover(triangle_query(), sizes=[1, 2])


def test_agm_bound_on_worstcase_triangle_matches_n_to_1_5():
    db = triangle_worstcase_database(40)
    n = len(db["R"])
    bound = agm_bound(db, triangle_query())
    assert bound == pytest.approx(n**1.5, rel=1e-6)


def test_agm_bound_zero_for_empty_relation():
    db = triangle_worstcase_database(10)
    db["T"].rows.clear()
    db["T"].weights.clear()
    assert agm_bound(db, triangle_query()) == 0.0


@settings(max_examples=30, deadline=None)
@given(graph_db_strategy())
def test_agm_bound_dominates_true_output_size(db):
    for q in (triangle_query(("E", "E", "E")), cycle_query(4)):
        out = generic_join(db, q)
        assert len(out) <= agm_bound(db, q) + 1e-6


def test_integral_cover_of_single_atom():
    q = ConjunctiveQuery([Atom("R", ("a", "b"))])
    assert integral_cover_number(q) == 1
    assert fractional_cover_number(q) == pytest.approx(1.0)
