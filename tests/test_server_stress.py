"""Concurrency stress tests for the query service.

Two regimes the unit tests cannot reach:

- many threads hammering *one* cursor: the stream lock must serialize
  pulls so the union of all pages is an exact dup-free, gap-free prefix
  of the ranked stream;
- eviction racing an in-flight fetch: the loser must see a *clean*
  protocol error (``unknown_cursor``, fed by :class:`StreamClosed`) —
  never a silent ``done`` that truncates the ranked stream, and never an
  ``internal`` error escaping the wire handler.
"""

from __future__ import annotations

import threading

import pytest

from repro.anyk.api import PausableStream, StreamClosed
from repro.data.generators import random_graph_database
import repro.server.protocol as protocol
from repro.server import QueryService
from repro.sql import query as sql_query

SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)


def expected_rows(db, k):
    """The serial ranked prefix, in wire (JSON-able) shape."""
    result = sql_query(db, SQL.format(k=k))
    return protocol.jsonable_rows(list(result))


def test_many_threads_fetch_one_cursor_without_dup_or_skip():
    db = random_graph_database(num_edges=300, num_nodes=40, seed=3)
    k = 500
    expected = expected_rows(db, k)
    assert len(expected) == k  # the instance is big enough to matter

    service = QueryService(db)
    opened = service.query(SQL.format(k=k))
    cursor = opened["cursor"]

    pages: list[list] = []
    pages_lock = threading.Lock()
    errors: list[dict] = []

    def hammer():
        while True:
            response = service.handle(
                {"id": 0, "op": "fetch", "cursor": cursor, "n": 13}
            )
            if not response["ok"]:
                with pages_lock:
                    errors.append(response["error"])
                return
            rows = response["rows"]
            if rows:
                with pages_lock:
                    pages.append(rows)
            if response["done"]:
                return

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()

    # Once drained the service auto-closes the cursor; late fetchers get
    # the clean unknown_cursor error, nothing else.
    assert all(e["code"] == protocol.UNKNOWN_CURSOR for e in errors)

    collected = [row for page in pages for row in page]
    # Join results of this query are unique rows, so multiset equality +
    # count gives dup-free and gap-free in one shot.
    def freeze(rows):
        return [
            (tuple(tuple(v) if isinstance(v, list) else v for v in row), w)
            for row, w in rows
        ]

    assert sorted(map(repr, freeze(collected))) == sorted(
        map(repr, freeze(expected))
    )
    # Each page is a contiguous ascending slice of the expected prefix.
    position = {repr(item): i for i, item in enumerate(freeze(expected))}
    for page in pages:
        indexes = [position[repr(item)] for item in freeze(page)]
        assert indexes == list(
            range(indexes[0], indexes[0] + len(indexes))
        ), "a page interleaved with another thread's pull"


def test_eviction_racing_fetch_is_a_clean_protocol_error():
    db = random_graph_database(num_edges=300, num_nodes=40, seed=5)
    expected = expected_rows(db, 400)
    # One slot, instant idle eviction: every new query evicts the cursor
    # any racing fetch is using.
    service = QueryService(db, max_cursors=1, idle_evict_s=0.0)

    stop = threading.Event()
    outcomes: list[str] = []
    fetched: list[list] = []
    unexpected: list[dict] = []
    outcome_lock = threading.Lock()

    def fetch_loop():
        while not stop.is_set():
            opened = service.handle(
                {"id": 1, "op": "query", "sql": SQL.format(k=400)}
            )
            if not opened["ok"]:
                with outcome_lock:
                    if opened["error"]["code"] not in (
                        protocol.CURSOR_LIMIT,
                        protocol.UNKNOWN_CURSOR,
                    ):
                        unexpected.append(opened["error"])
                    outcomes.append(opened["error"]["code"])
                continue
            cursor = opened["cursor"]
            while not stop.is_set():
                response = service.handle(
                    {"id": 2, "op": "fetch", "cursor": cursor, "n": 7}
                )
                if not response["ok"]:
                    # The only acceptable failure: the cursor is gone
                    # (evicted mid-fetch or between fetches) — a clean,
                    # machine-readable protocol error.
                    with outcome_lock:
                        if response["error"]["code"] != protocol.UNKNOWN_CURSOR:
                            unexpected.append(response["error"])
                        outcomes.append(response["error"]["code"])
                    break
                with outcome_lock:
                    if response["rows"]:
                        fetched.append(response["rows"])
                    outcomes.append("rows")
                if response["done"]:
                    break

    threads = [threading.Thread(target=fetch_loop) for _ in range(6)]
    for thread in threads:
        thread.start()
    import time

    time.sleep(1.0)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()

    # Nothing ever surfaced as anything but the clean protocol errors,
    # the race actually happened (fetches lost to eviction), and every
    # page that did come through is a slice of the ranked stream.
    assert unexpected == []
    assert protocol.UNKNOWN_CURSOR in outcomes or protocol.CURSOR_LIMIT in outcomes
    assert "rows" in outcomes
    position = {repr(item): i for i, item in enumerate(expected)}
    for page in fetched:
        indexes = [position[repr(item)] for item in page]
        assert indexes == list(range(indexes[0], indexes[0] + len(indexes)))


def test_stream_closed_is_not_swallowed_as_done():
    """The primitive the protocol behavior rests on: closing a stream
    with results pending raises, it does not fake exhaustion."""
    stream = PausableStream(iter([((1,), 0.1), ((2,), 0.2)]))
    page, done = stream.take(1)
    assert page and not done
    stream.close()
    with pytest.raises(StreamClosed):
        stream.take(1)


def test_concurrent_opens_respect_the_admission_limit():
    db = random_graph_database(num_edges=120, num_nodes=25, seed=9)
    service = QueryService(db, max_cursors=4, idle_evict_s=None)
    results: list[str] = []
    lock = threading.Lock()

    def open_one():
        response = service.handle(
            {"id": 3, "op": "query", "sql": SQL.format(k=50)}
        )
        with lock:
            if response["ok"]:
                results.append(response["cursor"])
            else:
                assert response["error"]["code"] == protocol.CURSOR_LIMIT
                results.append("rejected")

    threads = [threading.Thread(target=open_one) for _ in range(12)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    opened = [r for r in results if r != "rejected"]
    assert len(opened) == 4  # exactly the limit, never more
    stats = service.cursors.stats()
    assert stats["open"] == 4
    assert stats["rejected"] >= 8
