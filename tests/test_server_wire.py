"""The TCP wire layer and the Python client.

Each test boots a real server on an ephemeral port (daemon threads, so
teardown is cheap) and talks to it over a socket — the same bytes a
foreign-language client would see.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

import repro.sql
from repro.data.generators import path_database, random_graph_database
from repro.server import Client, ServerError, serve_background

GRAPH_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def graph_db():
    return random_graph_database(num_edges=400, num_nodes=70, seed=11)


@pytest.fixture()
def served(graph_db):
    server, port = serve_background(graph_db, max_cursors=8)
    yield server, port
    server.shutdown()
    server.server_close()


def test_wire_results_match_direct_library(served, graph_db):
    _, port = served
    sql = GRAPH_SQL.format(k=40)
    with Client(port=port) as client:
        cursor = client.execute(sql, batch=7)
        wire = cursor.fetchall()
    direct = list(repro.sql.query(graph_db, sql))
    assert wire == direct


def test_cursor_survives_reconnect(served):
    """Enumeration state outlives the connection that created it."""
    _, port = served
    sql = GRAPH_SQL.format(k=30)
    with Client(port=port) as one:
        cursor = one.execute(sql, batch=10, prefetch=10)
        first_page = [pair for pair in cursor._pending]
        cursor_id = cursor.cursor_id
    assert cursor_id is not None
    with Client(port=port) as two:
        response = two.call("fetch", cursor=cursor_id, n=1000)
        rest = response["rows"]
        assert response["done"]
    with Client(port=port) as three:
        full = three.execute(sql, batch=1000).fetchall()
    resumed = first_page + [(tuple(r), w) for r, w in rest]
    assert resumed == full


def test_lex_weights_roundtrip_as_tuples(served):
    _, port = served
    sql = (
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "ORDER BY lex(weight) LIMIT 5"
    )
    with Client(port=port) as client:
        rows = client.execute(sql).fetchall()
    assert rows and all(isinstance(w, tuple) for _, w in rows)
    assert rows == sorted(rows, key=lambda pair: pair[1])


def test_malformed_json_gets_error_line(served):
    _, port = served
    with socket.create_connection(("127.0.0.1", port)) as sock:
        handle = sock.makefile("rwb")
        handle.write(b"this is not json\n")
        handle.flush()
        response = json.loads(handle.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        # The connection survives the bad line.
        handle.write(b'{"id": 7, "op": "stats"}\n')
        handle.flush()
        response = json.loads(handle.readline())
        assert response["ok"] and response["id"] == 7


def test_server_errors_raise_client_side(served):
    _, port = served
    with Client(port=port) as client:
        with pytest.raises(ServerError) as excinfo:
            client.call("fetch", cursor="c999999")
        assert excinfo.value.code == "unknown_cursor"
        with pytest.raises(ServerError) as excinfo:
            client.execute("SELECT FROM nothing")
        assert excinfo.value.code == "sql_error"


def test_explain_and_stats_over_the_wire(served):
    _, port = served
    sql = GRAPH_SQL.format(k=10)
    with Client(port=port) as client:
        text = client.explain(sql)
        assert "engine:" in text and "because:" in text
        client.execute(sql).fetchall()
        stats = client.stats()
    assert stats["queries"] >= 1
    assert stats["plan_cache"]["hits"] >= 1  # execute after explain
    assert stats["rows_served"] >= 10


def test_result_cursor_close_frees_server_slot(served):
    server, port = served
    with Client(port=port) as client:
        cursor = client.execute(GRAPH_SQL.format(k=1000), batch=5, prefetch=5)
        assert len(server.service.cursors) == 1
        cursor.close()
        assert len(server.service.cursors) == 0
        cursor.close()  # idempotent
        assert cursor.fetch() == []


def test_concurrent_clients_get_correct_streams(graph_db):
    server, port = serve_background(graph_db, max_cursors=16)
    try:
        sql = GRAPH_SQL.format(k=50)
        expected = list(repro.sql.query(graph_db, sql))
        failures = []

        def worker() -> None:
            try:
                with Client(port=port) as client:
                    for _ in range(3):
                        got = client.execute(sql, batch=9).fetchall()
                        if got != expected:
                            failures.append("stream mismatch")
            except Exception as exc:  # pragma: no cover - diagnostic path
                failures.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        info = server.service.plan_cache.info()
        # 18 queries total; only first-round racers can miss concurrently,
        # so at least the 12 second/third-round queries must hit.
        assert info["hits"] >= 12
    finally:
        server.shutdown()
        server.server_close()


def test_admission_limit_over_the_wire(graph_db):
    server, port = serve_background(
        graph_db, max_cursors=2, idle_evict_s=None
    )
    try:
        with Client(port=port) as client:
            sql = GRAPH_SQL.format(k=1000)
            held = [client.execute(sql, batch=1, prefetch=1) for _ in range(2)]
            with pytest.raises(ServerError) as excinfo:
                client.execute(sql, batch=1, prefetch=1)
            assert excinfo.value.code == "cursor_limit"
            held[0].close()
            third = client.execute(sql, batch=1, prefetch=1)
            assert third.cursor_id is not None
    finally:
        server.shutdown()
        server.server_close()


def test_deadline_over_the_wire(graph_db):
    server, port = serve_background(graph_db)
    try:
        with Client(port=port, deadline_ms=10_000) as client:
            # A generous client-default deadline lets everything finish...
            rows = client.execute(GRAPH_SQL.format(k=20)).fetchall()
            assert len(rows) == 20
    finally:
        server.shutdown()
        server.server_close()


def test_tight_deadline_still_progresses_via_partial_pages(graph_db):
    """A 1 ms deadline forces partial pages, yet iteration completes:
    every fetch delivers at least the row it was mid-producing, so the
    client makes progress page by page instead of losing work."""
    server, port = serve_background(graph_db)
    try:
        sql = GRAPH_SQL.format(k=30)
        with Client(port=port) as client:
            expected = client.execute(sql, batch=1000).fetchall()
            cursor = client.execute(sql, batch=30, prefetch=0, deadline_ms=1)
            rows = list(cursor)
        assert rows == expected
    finally:
        server.shutdown()
        server.server_close()


def test_empty_deadline_page_raises_instead_of_spinning():
    """An empty page on an open cursor (deadline expired before the
    first row, e.g. under queueing delay) must raise, not busy-loop."""
    from repro.server import DeadlineExceeded
    from repro.server.client import ResultCursor

    class StarvedTransport:
        deadline_ms = 1
        calls = 0

        def call(self, op, **fields):
            assert op == "fetch"
            self.calls += 1
            return {
                "ok": True,
                "rows": [],
                "done": False,
                "deadline_exceeded": True,
            }

    transport = StarvedTransport()
    cursor = ResultCursor(
        transport,
        {"cursor": "c1", "columns": ["x"], "engine": "part:lazy",
         "rows": [], "done": False},
        batch=10,
        deadline_ms=1,
    )
    with pytest.raises(DeadlineExceeded):
        list(cursor)
    assert transport.calls == 1  # exactly one round trip, no spinning
    assert cursor.deadline_exceeded
    assert cursor.cursor_id == "c1"  # still resumable with a saner deadline
