"""Tests for the Combined Algorithm (CA) and the J* rank join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import rank_join_database, scored_lists
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import path_query, star_query
from repro.topk.access import VerticalSource
from repro.topk.ca import combined_algorithm
from repro.topk.jstar import jstar_stream, jstar_topk
from repro.topk.rank_join import rank_join_stream
from repro.util.counters import Counters

from conftest import (
    path_db_strategy,
    ranked_weights,
    scored_lists_strategy,
    star_db_strategy,
)


# ----------------------------------------------------------------------
# CA
# ----------------------------------------------------------------------
def _true_scores(lists, objects):
    index = [{o: s for o, s in column} for column in lists]
    return sorted(
        (round(sum(m[o] for m in index), 9) for o in objects), reverse=True
    )


@settings(max_examples=40, deadline=None)
@given(
    scored_lists_strategy(),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=8),
)
def test_ca_correct_for_any_ratio(lists, k, ratio):
    k = min(k, len(lists[0]))
    got = combined_algorithm(VerticalSource(lists), k, ratio=ratio)
    assert len(got) == k
    index = [{o: s for o, s in column} for column in lists]
    oracle = sorted(
        (round(sum(m[o] for m in index), 9) for o in index[0]), reverse=True
    )[:k]
    assert _true_scores(lists, [o for o, _ in got]) == oracle


def test_ca_parameter_validation():
    lists = scored_lists(10, 2, seed=0)
    with pytest.raises(ValueError):
        combined_algorithm(VerticalSource(lists), 0)
    with pytest.raises(ValueError):
        combined_algorithm(VerticalSource(lists), 1, ratio=0)


def test_ca_interpolates_random_access_volume():
    """Larger cost ratios => fewer random accesses (toward NRA)."""
    lists = scored_lists(800, 3, "independent", seed=1)
    randoms = {}
    for ratio in (1, 20):
        c = Counters()
        combined_algorithm(VerticalSource(lists, c), 5, ratio=ratio)
        randoms[ratio] = c.random_accesses
    assert randoms[20] < randoms[1]


def test_ca_uses_fewer_random_accesses_than_ta():
    from repro.topk.threshold import threshold_algorithm

    lists = scored_lists(800, 3, "independent", seed=2)
    c_ta, c_ca = Counters(), Counters()
    threshold_algorithm(VerticalSource(lists, c_ta), 5)
    combined_algorithm(VerticalSource(lists, c_ca), 5, ratio=10)
    assert c_ca.random_accesses < c_ta.random_accesses


# ----------------------------------------------------------------------
# J*
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(db_and_length=path_db_strategy(max_length=3))
def test_jstar_full_ranking_matches_naive(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    assert ranked_weights(jstar_stream(db, q)) == expected


@settings(max_examples=20, deadline=None)
@given(db_and_arms=star_db_strategy(max_arms=3, max_size=6))
def test_jstar_on_star_queries(db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    assert ranked_weights(jstar_stream(db, q)) == expected


@settings(max_examples=15, deadline=None)
@given(db_and_length=path_db_strategy(max_length=2))
def test_jstar_agrees_with_hrjn(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    assert ranked_weights(jstar_stream(db, q)) == ranked_weights(
        rank_join_stream(db, q)
    )


def test_jstar_topk_prefix_and_validation():
    db = rank_join_database(80, 10, seed=3)
    q = path_query(2)
    full = ranked_weights(jstar_stream(db, q))
    assert ranked_weights(jstar_topk(db, q, 3)) == full[:3]
    with pytest.raises(ValueError):
        jstar_topk(db, q, 0)


def test_jstar_with_max_combine():
    db = rank_join_database(40, 5, seed=4)
    q = path_query(2)
    expected = sorted(round(w, 9) for w in naive_join(db, q, combine=max).weights)
    assert ranked_weights(jstar_stream(db, q, combine=max)) == expected


def test_jstar_empty_stream():
    from repro.data.database import Database
    from repro.data.relation import Relation

    db = Database(
        [Relation("R1", ("A1", "A2")), Relation("R2", ("A2", "A3"), [(1, 2)])]
    )
    assert list(jstar_stream(db, path_query(2))) == []


def test_jstar_early_termination_work_scales_with_depth():
    shallow = rank_join_database(600, 5, seed=5)
    deep = rank_join_database(600, 400, seed=5)
    c_shallow, c_deep = Counters(), Counters()
    jstar_topk(shallow, path_query(2), 1, counters=c_shallow)
    jstar_topk(deep, path_query(2), 1, counters=c_deep)
    assert c_deep.tuples_read > 2 * c_shallow.tuples_read
