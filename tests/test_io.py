"""Tests for relation / graph / scored-list file I/O."""

import pytest

from repro.data.io import (
    load_graph,
    load_relation,
    load_scored_lists,
    save_relation,
)
from repro.data.relation import Relation, SchemaError
from repro.topk.access import VerticalSource


def test_relation_round_trip(tmp_path):
    original = Relation(
        "R", ("a", "b"), [(1, "x"), (2, "y")], [0.25, 0.5]
    )
    path = tmp_path / "r.csv"
    save_relation(original, path)
    loaded = load_relation(path)
    assert loaded.name == "r"
    assert loaded.schema == ("a", "b")
    assert loaded.rows == original.rows
    assert loaded.weights == original.weights


def test_round_trip_without_weights(tmp_path):
    original = Relation("R", ("a",), [(1,), (2,)])
    path = tmp_path / "r.csv"
    save_relation(original, path, include_weights=False)
    loaded = load_relation(path)
    assert loaded.rows == [(1,), (2,)]
    assert loaded.weights == [0.0, 0.0]


def test_load_with_explicit_schema_no_header(tmp_path):
    path = tmp_path / "raw.tsv"
    path.write_text("1\t2\t0.5\n3\t4\t0.25\n")
    rel = load_relation(path, schema=("x", "y"), delimiter="\t")
    assert rel.rows == [(1, 2), (3, 4)]
    assert rel.weights == [0.5, 0.25]


def test_load_explicit_schema_without_weight_column(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("1,2\n3,4\n")
    rel = load_relation(path, schema=("x", "y"))
    assert rel.weights == [0.0, 0.0]


def test_value_typing_int_float_string(tmp_path):
    path = tmp_path / "typed.csv"
    path.write_text("a,b,c\n1,2.5,hello\n")
    rel = load_relation(path)
    assert rel.rows == [(1, 2.5, "hello")]


def test_field_count_mismatch_raises(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b\n1\n")
    with pytest.raises(SchemaError, match="expected 2 fields"):
        load_relation(path)


def test_empty_file_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        load_relation(path)


def test_load_graph_with_comments_and_weights(tmp_path):
    path = tmp_path / "graph.csv"
    path.write_text("# a comment\n1,2,0.5\n2,3\n")
    db = load_graph(path, default_weight=0.1)
    rel = db["E"]
    assert rel.rows == [(1, 2), (2, 3)]
    assert rel.weights == [0.5, 0.1]


def test_load_graph_bad_row(tmp_path):
    path = tmp_path / "graph.csv"
    path.write_text("1,2,3,4\n")
    with pytest.raises(SchemaError):
        load_graph(path)


def test_scored_lists_sorted_and_usable(tmp_path):
    p1 = tmp_path / "l1.csv"
    p2 = tmp_path / "l2.csv"
    p1.write_text("a,0.1\nb,0.9\n")
    p2.write_text("b,0.2\na,0.8\n")
    lists = load_scored_lists([p1, p2])
    assert lists[0][0] == ("b", 0.9)  # sorted descending on load
    source = VerticalSource(lists)
    assert source.num_objects == 2


def test_scored_lists_bad_row(tmp_path):
    p = tmp_path / "l.csv"
    p.write_text("a\n")
    with pytest.raises(SchemaError):
        load_scored_lists([p])
