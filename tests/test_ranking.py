"""Tests for ranking functions (selective dioids)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anyk.ranking import ALL_RANKINGS, FLOAT_RANKINGS, LEX, MAX, PRODUCT, SUM

positive = st.integers(min_value=1, max_value=1000).map(lambda i: i / 16.0)
anyfloat = st.integers(min_value=-1000, max_value=1000).map(lambda i: i / 16.0)


def test_identities():
    assert SUM.combine(SUM.identity, 3.0) == 3.0
    assert MAX.combine(MAX.identity, 3.0) == 3.0
    assert PRODUCT.combine(PRODUCT.identity, 3.0) == 3.0
    assert LEX.combine(LEX.identity, (3.0,)) == (3.0,)


@given(anyfloat, anyfloat, anyfloat)
def test_sum_max_monotone(a, b, c):
    for ranking in (SUM, MAX):
        la, lb, lc = ranking.lift(a), ranking.lift(b), ranking.lift(c)
        if la <= lb:
            assert ranking.combine(lc, la) <= ranking.combine(lc, lb)
            assert ranking.combine(la, lc) <= ranking.combine(lb, lc)


@given(positive, positive)
def test_product_raw_combine_consistent_with_lift(a, b):
    lifted = PRODUCT.combine(PRODUCT.lift(a), PRODUCT.lift(b))
    raw = PRODUCT.lift(PRODUCT.float_combine()(a, b))
    assert lifted == pytest.approx(raw)


@given(anyfloat, anyfloat)
def test_sum_max_raw_combine_consistent(a, b):
    for ranking in (SUM, MAX):
        lifted = ranking.combine(ranking.lift(a), ranking.lift(b))
        raw = ranking.lift(ranking.float_combine()(a, b))
        assert lifted == pytest.approx(raw)


def test_product_rejects_nonpositive_weights():
    with pytest.raises(ValueError):
        PRODUCT.lift(0.0)
    with pytest.raises(ValueError):
        PRODUCT.lift(-1.0)


def test_lex_is_not_float_based():
    assert not LEX.float_based
    with pytest.raises(TypeError):
        LEX.float_combine()


@given(
    st.lists(anyfloat, min_size=1, max_size=4),
    st.lists(anyfloat, min_size=1, max_size=4),
)
def test_lex_concatenation_and_order(xs, ys):
    wx = LEX.combine_many(LEX.lift(x) for x in xs)
    wy = LEX.combine_many(LEX.lift(y) for y in ys)
    assert LEX.combine(wx, wy) == tuple(xs) + tuple(ys)
    # Total order: any two equal-length vectors compare.
    if len(wx) == len(wy):
        assert (wx < wy) or (wy < wx) or (wx == wy)


def test_combine_many_orders_left_to_right():
    assert SUM.combine_many([1.0, 2.0, 3.0]) == 6.0
    assert LEX.combine_many([(1.0,), (2.0,)]) == (1.0, 2.0)
    assert SUM.combine_many([]) == SUM.identity


def test_float_rankings_listed():
    assert SUM in FLOAT_RANKINGS
    assert LEX not in FLOAT_RANKINGS
    assert set(FLOAT_RANKINGS) <= set(ALL_RANKINGS)


def test_repr_contains_name():
    assert "sum" in repr(SUM)
