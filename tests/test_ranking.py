"""Tests for ranking functions (selective dioids)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anyk.ranking import ALL_RANKINGS, FLOAT_RANKINGS, LEX, MAX, PRODUCT, SUM

positive = st.integers(min_value=1, max_value=1000).map(lambda i: i / 16.0)
anyfloat = st.integers(min_value=-1000, max_value=1000).map(lambda i: i / 16.0)


def test_identities():
    assert SUM.combine(SUM.identity, 3.0) == 3.0
    assert MAX.combine(MAX.identity, 3.0) == 3.0
    assert PRODUCT.combine(PRODUCT.identity, 3.0) == 3.0
    assert LEX.combine(LEX.identity, (3.0,)) == (3.0,)


@given(anyfloat, anyfloat, anyfloat)
def test_sum_max_monotone(a, b, c):
    for ranking in (SUM, MAX):
        la, lb, lc = ranking.lift(a), ranking.lift(b), ranking.lift(c)
        if la <= lb:
            assert ranking.combine(lc, la) <= ranking.combine(lc, lb)
            assert ranking.combine(la, lc) <= ranking.combine(lb, lc)


@given(positive, positive)
def test_product_raw_combine_consistent_with_lift(a, b):
    lifted = PRODUCT.combine(PRODUCT.lift(a), PRODUCT.lift(b))
    raw = PRODUCT.lift(PRODUCT.float_combine()(a, b))
    assert lifted == pytest.approx(raw)


@given(anyfloat, anyfloat)
def test_sum_max_raw_combine_consistent(a, b):
    for ranking in (SUM, MAX):
        lifted = ranking.combine(ranking.lift(a), ranking.lift(b))
        raw = ranking.lift(ranking.float_combine()(a, b))
        assert lifted == pytest.approx(raw)


def test_product_rejects_nonpositive_weights():
    with pytest.raises(ValueError):
        PRODUCT.lift(0.0)
    with pytest.raises(ValueError):
        PRODUCT.lift(-1.0)


def test_lex_is_not_float_based():
    assert not LEX.float_based
    with pytest.raises(TypeError):
        LEX.float_combine()


@given(
    st.lists(anyfloat, min_size=1, max_size=4),
    st.lists(anyfloat, min_size=1, max_size=4),
)
def test_lex_concatenation_and_order(xs, ys):
    wx = LEX.combine_many(LEX.lift(x) for x in xs)
    wy = LEX.combine_many(LEX.lift(y) for y in ys)
    assert LEX.combine(wx, wy) == tuple(xs) + tuple(ys)
    # Total order: any two equal-length vectors compare.
    if len(wx) == len(wy):
        assert (wx < wy) or (wy < wx) or (wx == wy)


def test_combine_many_orders_left_to_right():
    assert SUM.combine_many([1.0, 2.0, 3.0]) == 6.0
    assert LEX.combine_many([(1.0,), (2.0,)]) == (1.0, 2.0)
    assert SUM.combine_many([]) == SUM.identity


def test_float_rankings_listed():
    assert SUM in FLOAT_RANKINGS
    assert LEX not in FLOAT_RANKINGS
    assert set(FLOAT_RANKINGS) <= set(ALL_RANKINGS)


def test_repr_contains_name():
    assert "sum" in repr(SUM)


# ----------------------------------------------------------------------
# Deterministic tie-breaking (tuple identity, never insertion order)
# ----------------------------------------------------------------------
def test_ranking_registry_round_trip():
    from repro.anyk.ranking import RANKINGS_BY_NAME, ranking_by_name

    for ranking in ALL_RANKINGS:
        assert ranking_by_name(ranking.name) is ranking
    assert set(RANKINGS_BY_NAME) == {r.name for r in ALL_RANKINGS}
    with pytest.raises(ValueError):
        ranking_by_name("nope")


def test_solution_tie_key_orders_mixed_types():
    from repro.anyk.ranking import solution_tie_key

    rows = [(1, "b"), ("a", 2), (1, "a"), (0, "z")]
    ordered = sorted(rows, key=solution_tie_key)
    # Total order, deterministic, no int<str TypeError.
    assert ordered == sorted(ordered, key=solution_tie_key)
    assert ordered[0] == (0, "z")  # ints before strs, then by value


def test_stabilize_ties_sorts_equal_weight_groups():
    from repro.anyk.ranking import stabilize_ties

    stream = [((2,), 0.5), ((9, 1), 1.0), ((1, 2), 1.0), ((1, 1), 1.0), ((3,), 2.0)]
    out = list(stabilize_ties(stream))
    assert out == [
        ((2,), 0.5),
        ((1, 1), 1.0),
        ((1, 2), 1.0),
        ((9, 1), 1.0),
        ((3,), 2.0),
    ]
    assert list(stabilize_ties([])) == []


def test_all_equal_weights_enumerate_in_row_order():
    """Regression: with every weight equal, the whole output is one tie
    group and must come out ordered by tuple identity — for every engine,
    so shard merges (and cross-engine diffs) are deterministic."""
    from repro.anyk.api import rank_enumerate
    from repro.data.database import Database
    from repro.data.relation import Relation
    from repro.query.cq import path_query

    rows1 = [(i, j) for i in range(3) for j in range(3)]
    rows2 = [(j, m) for j in range(3) for m in range(3)]
    db = Database(
        [
            Relation("R1", ("A1", "A2"), rows1, [1.0] * len(rows1)),
            Relation("R2", ("A2", "A3"), rows2, [1.0] * len(rows2)),
        ]
    )
    query = path_query(2)
    expected = None
    for method in ("part:lazy", "part:eager", "part:all", "rec", "batch"):
        got = list(rank_enumerate(db, query, method=method))
        assert got == sorted(got, key=lambda pair: pair[0])
        if expected is None:
            expected = got
        else:
            assert got == expected, method
