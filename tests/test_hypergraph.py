"""Tests for hypergraphs, GYO reduction and join trees."""

import pytest

from repro.query.cq import Atom, ConjunctiveQuery, QueryError, cycle_query, path_query, star_query, triangle_query
from repro.query.hypergraph import (
    Hypergraph,
    connected_components,
    gyo_reduction,
    is_acyclic,
    join_tree_or_raise,
)


def test_acyclic_queries_recognized():
    assert is_acyclic(path_query(4))
    assert is_acyclic(star_query(4))
    assert is_acyclic(ConjunctiveQuery([Atom("R", ("a", "b"))]))


def test_cyclic_queries_recognized():
    assert not is_acyclic(triangle_query())
    assert not is_acyclic(cycle_query(4))
    assert not is_acyclic(cycle_query(5))


def test_alpha_acyclicity_big_atom_covers_cycle():
    # Adding an atom covering all three triangle variables makes the query
    # α-acyclic (the classic subtlety of α-acyclicity).
    q = ConjunctiveQuery(
        [
            Atom("R", ("a", "b")),
            Atom("S", ("b", "c")),
            Atom("T", ("c", "a")),
            Atom("U", ("a", "b", "c")),
        ]
    )
    assert is_acyclic(q)


def test_join_tree_parent_structure():
    tree = gyo_reduction(path_query(3))
    assert tree is not None
    roots = [node for node, parent in tree.parent.items() if parent is None]
    assert roots == [tree.root]
    assert sorted(tree.order) == [0, 1, 2]
    assert tree.order[0] == tree.root


def test_join_tree_running_intersection():
    for q in (path_query(4), star_query(4)):
        tree = gyo_reduction(q)
        assert tree is not None
        assert tree.satisfies_running_intersection()


def test_edge_join_variables():
    tree = gyo_reduction(path_query(2))
    assert tree is not None
    child = next(n for n, p in tree.parent.items() if p is not None)
    assert tree.edge_join_variables(child) == frozenset({"A2"})


def test_leaves_are_childless():
    tree = gyo_reduction(star_query(3))
    assert tree is not None
    for leaf in tree.leaves():
        assert tree.children[leaf] == []


def test_join_tree_or_raise_on_cyclic():
    with pytest.raises(QueryError, match="cyclic"):
        join_tree_or_raise(triangle_query())


def test_cross_product_queries_are_acyclic():
    q = ConjunctiveQuery([Atom("R", ("a",)), Atom("S", ("b",))])
    tree = gyo_reduction(q)
    assert tree is not None
    assert tree.satisfies_running_intersection()


def test_hypergraph_structure():
    hg = Hypergraph(triangle_query())
    assert set(hg.vertices) == {"A", "B", "C"}
    assert hg.incident_edges("B") == [0, 1]
    assert hg.primal_neighbors()["A"] == {"B", "C"}
    assert hg.is_connected()


def test_hypergraph_disconnected():
    q = ConjunctiveQuery([Atom("R", ("a", "b")), Atom("S", ("c", "d"))])
    assert not Hypergraph(q).is_connected()
    assert connected_components(q) == [[0], [1]]


def test_connected_components_single():
    assert connected_components(path_query(3)) == [[0, 1, 2]]
