"""Tests for the rank_enumerate façade, batch baseline, and cyclic routes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import METHODS, rank_enumerate, top_k
from repro.anyk.batch import batch_enumerate
from repro.anyk.cyclic import is_fourcycle
from repro.anyk.ranking import LEX, MAX, PRODUCT, SUM
from repro.data.generators import path_database, random_graph_database
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import QueryError, cycle_query, path_query, triangle_query
from repro.util.counters import Counters

from conftest import graph_db_strategy, multiset_of, path_db_strategy, ranked_weights


def _oracle(db, q, combine=lambda a, b: a + b):
    out = generic_join(db, q, combine=combine)
    return sorted(round(w, 9) for w in out.weights)


def test_methods_constant_lists_everything():
    assert "part:lazy" in METHODS
    assert "rec" in METHODS
    assert "batch" in METHODS
    assert "lawler" in METHODS
    assert len([m for m in METHODS if m.startswith("part:")]) == 5


@pytest.mark.parametrize("method", METHODS)
def test_every_method_on_acyclic(method):
    db = path_database(3, 15, 4, seed=1)
    q = path_query(3)
    got = ranked_weights(rank_enumerate(db, q, method=method))
    assert got == _oracle(db, q)


@pytest.mark.parametrize("method", ["part:lazy", "part:all", "rec", "batch"])
def test_every_method_on_fourcycle(method):
    db = random_graph_database(70, 14, seed=2)
    q = cycle_query(4)
    got = ranked_weights(rank_enumerate(db, q, method=method))
    assert got == _oracle(db, q)


@pytest.mark.parametrize("method", ["part:eager", "rec", "batch"])
def test_every_method_on_triangle_ghd_route(method):
    db = random_graph_database(60, 12, seed=3)
    q = triangle_query(("E", "E", "E"))
    got = ranked_weights(rank_enumerate(db, q, method=method))
    assert got == _oracle(db, q)


def test_k_truncates_stream():
    db = path_database(3, 20, 4, seed=4)
    q = path_query(3)
    full = _oracle(db, q)
    assert ranked_weights(rank_enumerate(db, q, k=5)) == full[:5]
    assert [round(float(w), 9) for _, w in top_k(db, q, 3)] == full[:3]


def test_k_validation():
    db = path_database(2, 5, 3, seed=0)
    with pytest.raises(ValueError):
        list(rank_enumerate(db, path_query(2), k=0))


def test_unknown_method_rejected():
    db = path_database(2, 5, 3, seed=0)
    with pytest.raises(ValueError, match="unknown any-k method"):
        list(rank_enumerate(db, path_query(2), method="bogus"))


def test_lawler_rejected_on_cyclic():
    db = random_graph_database(20, 8, seed=1)
    with pytest.raises(QueryError):
        list(rank_enumerate(db, cycle_query(4), method="lawler"))


def test_lex_rejected_on_cyclic():
    db = random_graph_database(20, 8, seed=1)
    with pytest.raises(TypeError):
        list(rank_enumerate(db, cycle_query(4), ranking=LEX))


def test_rankings_on_cyclic_queries():
    db = random_graph_database(
        50, 10, seed=5, weight_range=(0.1, 1.0)
    )  # positive weights for PRODUCT
    q = cycle_query(4)
    assert ranked_weights(rank_enumerate(db, q, ranking=MAX)) == _oracle(
        db, q, combine=max
    )
    got = [w for _, w in rank_enumerate(db, q, ranking=PRODUCT)]
    assert all(got[i] <= got[i + 1] + 1e-12 for i in range(len(got) - 1))


def test_is_fourcycle_detector():
    assert is_fourcycle(cycle_query(4))
    assert not is_fourcycle(cycle_query(3))
    assert not is_fourcycle(path_query(4))


def test_batch_rejects_lex():
    db = path_database(2, 5, 3, seed=0)
    with pytest.raises(TypeError):
        list(batch_enumerate(db, path_query(2), ranking=LEX))


@settings(max_examples=20, deadline=None)
@given(db=graph_db_strategy(), k=st.integers(min_value=1, max_value=8))
def test_topk_prefix_property_fourcycle(db, k):
    """Any-k top-k is always a prefix of the full ranking (hypothesis)."""
    q = cycle_query(4)
    full = _oracle(db, q)
    got = ranked_weights(rank_enumerate(db, q, k=k))
    assert got == full[: min(k, len(full))]


def test_rows_reordered_to_query_variables():
    db = random_graph_database(40, 8, seed=6)
    q = cycle_query(4)
    for row, _ in rank_enumerate(db, q, k=10):
        assert len(row) == 4  # x1..x4, in query order
    # Verify against generic join rows.
    expected_rows = set(generic_join(db, q).rows)
    for row, _ in rank_enumerate(db, q, k=10):
        assert row in expected_rows


def test_counters_flow_through():
    db = path_database(2, 10, 3, seed=7)
    c = Counters()
    list(rank_enumerate(db, path_query(2), counters=c))
    assert c.heap_ops > 0
    assert c.output_tuples > 0
