"""Unit tests for the RAM-model operation counters."""

from repro.util.counters import Counters, global_counters, reset_global_counters


def test_counters_start_at_zero():
    c = Counters()
    assert c.total_work() == 0
    assert c.snapshot()["total_work"] == 0


def test_counters_accumulate_and_reset():
    c = Counters()
    c.tuples_read += 3
    c.comparisons += 2
    c.heap_ops += 1
    assert c.total_work() == 6
    c.reset()
    assert c.total_work() == 0
    assert c.extras == {}


def test_bump_creates_named_extras():
    c = Counters()
    c.bump("naive_dp_work", 10)
    c.bump("naive_dp_work", 5)
    assert c.extras["naive_dp_work"] == 15
    assert c.total_work() == 15
    assert c.snapshot()["naive_dp_work"] == 15


def test_total_accesses_is_middleware_cost():
    c = Counters()
    c.sorted_accesses += 4
    c.random_accesses += 6
    c.tuples_read += 100  # RAM-model work must not leak into access cost
    assert c.total_accesses() == 10


def test_merge_adds_counts_and_extras():
    a = Counters()
    b = Counters()
    a.tuples_read = 2
    a.bump("x", 1)
    b.tuples_read = 3
    b.bump("x", 4)
    b.bump("y", 2)
    a.merge(b)
    assert a.tuples_read == 5
    assert a.extras == {"x": 5, "y": 2}


def test_snapshot_contains_all_fields():
    keys = Counters().snapshot().keys()
    for field in (
        "tuples_read",
        "intermediate_tuples",
        "output_tuples",
        "comparisons",
        "hash_probes",
        "sorted_accesses",
        "random_accesses",
        "heap_ops",
        "total_work",
    ):
        assert field in keys


def test_global_counters_reset_helper():
    global_counters.tuples_read += 1
    returned = reset_global_counters()
    assert returned is global_counters
    assert global_counters.tuples_read == 0


# ----------------------------------------------------------------------
# Thread safety (the concurrent-server regime)
# ----------------------------------------------------------------------
def test_concurrent_bump_add_merge_lose_no_updates():
    """Hammer the shared-update paths from many threads; totals are exact.

    Without the internal lock, ``bump``'s read-modify-write on the extras
    dict and ``merge``'s field loop both lose updates under contention —
    this is the regression test for the server's counters aggregation.
    """
    import threading

    shared = Counters()
    threads_n, iterations = 8, 2000

    def worker(seed: int) -> None:
        local = Counters()
        for i in range(iterations):
            shared.bump("wire_requests")
            shared.add("tuples_read", 2)
            local.heap_ops += 1          # private instance: plain bumps OK
            local.bump("session_rows", 3)
            if i % 100 == 99:
                shared.merge(local)
                local = Counters()
        shared.merge(local)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    total = threads_n * iterations
    assert shared.extras["wire_requests"] == total
    assert shared.tuples_read == 2 * total
    assert shared.heap_ops == total
    assert shared.extras["session_rows"] == 3 * total


def test_snapshot_is_consistent_under_concurrent_merges():
    import threading

    shared = Counters()
    stop = threading.Event()

    def writer() -> None:
        delta = Counters()
        delta.tuples_read = 1
        delta.bump("x", 1)
        while not stop.is_set():
            shared.merge(delta)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(200):
            snap = shared.snapshot()
            # Each merge adds one tuples_read and one x together; a torn
            # snapshot would catch them mid-merge and disagree wildly.
            assert abs(snap["tuples_read"] - snap.get("x", 0)) <= 4
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
