"""Unit tests for the RAM-model operation counters."""

from repro.util.counters import Counters, global_counters, reset_global_counters


def test_counters_start_at_zero():
    c = Counters()
    assert c.total_work() == 0
    assert c.snapshot()["total_work"] == 0


def test_counters_accumulate_and_reset():
    c = Counters()
    c.tuples_read += 3
    c.comparisons += 2
    c.heap_ops += 1
    assert c.total_work() == 6
    c.reset()
    assert c.total_work() == 0
    assert c.extras == {}


def test_bump_creates_named_extras():
    c = Counters()
    c.bump("naive_dp_work", 10)
    c.bump("naive_dp_work", 5)
    assert c.extras["naive_dp_work"] == 15
    assert c.total_work() == 15
    assert c.snapshot()["naive_dp_work"] == 15


def test_total_accesses_is_middleware_cost():
    c = Counters()
    c.sorted_accesses += 4
    c.random_accesses += 6
    c.tuples_read += 100  # RAM-model work must not leak into access cost
    assert c.total_accesses() == 10


def test_merge_adds_counts_and_extras():
    a = Counters()
    b = Counters()
    a.tuples_read = 2
    a.bump("x", 1)
    b.tuples_read = 3
    b.bump("x", 4)
    b.bump("y", 2)
    a.merge(b)
    assert a.tuples_read == 5
    assert a.extras == {"x": 5, "y": 2}


def test_snapshot_contains_all_fields():
    keys = Counters().snapshot().keys()
    for field in (
        "tuples_read",
        "intermediate_tuples",
        "output_tuples",
        "comparisons",
        "hash_probes",
        "sorted_accesses",
        "random_accesses",
        "heap_ops",
        "total_work",
    ):
        assert field in keys


def test_global_counters_reset_helper():
    global_counters.tuples_read += 1
    returned = reset_global_counters()
    assert returned is global_counters
    assert global_counters.tuples_read == 0
