"""Tests for the weighted relation substrate."""

import math

import pytest

from repro.data.relation import Relation, SchemaError


def test_basic_construction_and_iteration():
    r = Relation("R", ("a", "b"), [(1, 2), (3, 4)], [0.5, 0.25])
    assert len(r) == 2
    assert list(r) == [(1, 2), (3, 4)]
    assert r.weights == [0.5, 0.25]
    assert r.arity == 2


def test_default_weights_are_zero():
    r = Relation("R", ("a",), [(1,), (2,)])
    assert r.weights == [0.0, 0.0]


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        Relation("R", ())


def test_duplicate_attributes_rejected():
    with pytest.raises(SchemaError):
        Relation("R", ("a", "a"))


def test_arity_mismatch_rejected():
    r = Relation("R", ("a", "b"))
    with pytest.raises(SchemaError):
        r.add((1,))
    with pytest.raises(SchemaError):
        r.add((1, 2, 3))


def test_weight_row_count_mismatch_rejected():
    with pytest.raises(SchemaError):
        Relation("R", ("a",), [(1,)], [0.1, 0.2])


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_non_finite_weights_rejected(bad):
    r = Relation("R", ("a",))
    with pytest.raises(SchemaError):
        r.add((1,), bad)


def test_positions_and_key_of():
    r = Relation("R", ("a", "b", "c"))
    assert r.positions(("c", "a")) == (2, 0)
    assert r.key_of((10, 20, 30), ("c", "a")) == (30, 10)
    with pytest.raises(SchemaError):
        r.positions(("missing",))


def test_index_on_groups_rows():
    r = Relation("R", ("a", "b"), [(1, 9), (1, 8), (2, 9)])
    index = r.index_on(("a",))
    assert index[(1,)] == [0, 1]
    assert index[(2,)] == [2]
    assert set(r.distinct_keys(("b",))) == {(9,), (8,)}


def test_index_invalidated_on_mutation():
    r = Relation("R", ("a",), [(1,)])
    first = r.index_on(("a",))
    assert first[(1,)] == [0]
    r.add((1,))
    assert r.index_on(("a",))[(1,)] == [0, 1]


def test_index_is_cached_between_reads():
    r = Relation("R", ("a",), [(1,)])
    assert r.index_on(("a",)) is r.index_on(("a",))


def test_project_keeps_weights_and_duplicates():
    r = Relation("R", ("a", "b"), [(1, 2), (1, 3)], [0.1, 0.2])
    p = r.project(("a",))
    assert p.rows == [(1,), (1,)]
    assert p.weights == [0.1, 0.2]


def test_select_filters_rows():
    r = Relation("R", ("a",), [(1,), (2,), (3,)], [0.1, 0.2, 0.3])
    s = r.select(lambda row: row[0] >= 2)
    assert s.rows == [(2,), (3,)]
    assert s.weights == [0.2, 0.3]


def test_rename_changes_schema_only():
    r = Relation("R", ("a", "b"), [(1, 2)], [0.5])
    renamed = r.rename({"a": "x"})
    assert renamed.schema == ("x", "b")
    assert renamed.rows == [(1, 2)]
    assert renamed.weights == [0.5]


def test_copy_is_independent():
    r = Relation("R", ("a",), [(1,)])
    c = r.copy("C")
    c.add((2,))
    assert len(r) == 1
    assert len(c) == 2
    assert c.name == "C"


def test_sorted_by_weight_ascending_with_ties_on_rows():
    r = Relation("R", ("a",), [(3,), (1,), (2,)], [0.5, 0.5, 0.1])
    s = r.sorted_by_weight()
    assert s.rows == [(2,), (1,), (3,)]
    assert s.weights == [0.1, 0.5, 0.5]


def test_as_set_drops_duplicates():
    r = Relation("R", ("a",), [(1,), (1,), (2,)])
    assert r.as_set() == {(1,), (2,)}

# ----------------------------------------------------------------------
# Regressions: mixed-type tie order, version propagation, positions memo
# ----------------------------------------------------------------------
def test_sorted_by_weight_mixed_type_column_does_not_crash():
    """Regression: tie-breaking by raw row raised ``TypeError`` when an
    equal-weight tie group mixed ``str`` and ``int`` values in one
    column (the hub-graph datasets' string hub labels vs int spokes).
    Ties now use the type-tagged ``solution_tie_key`` order: within one
    weight, ints sort before strs (by type name), then by value."""
    r = Relation(
        "Hub",
        ("node", "spoke"),
        [("hub", 1), (2, 1), ("apex", 1), (1, 1)],
        [0.5, 0.5, 0.5, 0.5],
    )
    s = r.sorted_by_weight()
    assert s.rows == [(1, 1), (2, 1), ("apex", 1), ("hub", 1)]
    assert s.weights == [0.5] * 4


def test_sorted_by_weight_mixed_types_still_orders_by_weight_first():
    r = Relation("R", ("a",), [("z",), (1,)], [0.9, 0.1])
    assert r.sorted_by_weight().rows == [(1,), ("z",)]


def test_version_survives_all_three_copying_ops():
    """Regression: ``rename`` and ``sorted_by_weight`` reset ``version``
    to 0 while ``copy`` preserved it, so a derived relation could alias
    a static (version-0) fingerprint in the plan/stats caches."""
    r = Relation("R", ("a", "b"), [(1, 2), (3, 4)], [0.2, 0.1])
    r.version = 7
    assert r.copy().version == 7
    assert r.rename({"a": "x"}).version == 7
    assert r.sorted_by_weight().version == 7
    # Chaining keeps the generation too.
    assert r.rename({"b": "y"}).sorted_by_weight().copy().version == 7


def test_positions_are_memoized_per_attrs_tuple():
    r = Relation("R", ("a", "b", "c"))
    first = r.positions(("c", "a"))
    assert first == (2, 0)
    assert r.positions(("c", "a")) is first  # cached tuple, not re-resolved
    assert r.positions(["c", "a"]) is first  # list spelling shares the entry
    with pytest.raises(SchemaError):
        r.positions(("c", "missing"))


def test_bulk_load_matches_per_row_add():
    a = Relation("R", ("x", "y"))
    b = Relation("R", ("x", "y"))
    rows = [(1, 2), (3, 4), (5, 6)]
    weights = [0.3, 0.1, 0.2]
    for row, w in zip(rows, weights):
        a.add(row, w)
    b.bulk_load(rows, weights)
    assert a.rows == b.rows and a.weights == b.weights
    # Same validation as add(): arity and finiteness.
    with pytest.raises(SchemaError):
        b.bulk_load([(1,)], [0.0])
    with pytest.raises(SchemaError):
        b.bulk_load([(1, 2)], [float("nan")])
    with pytest.raises(SchemaError):
        b.bulk_load([(1, 2)], [0.1, 0.2])
    # Invalidates cached indexes exactly like add().
    index = b.index_on(("x",))
    assert index[(1,)] == [0]
    b.bulk_load([(1, 9)], [0.0])
    assert b.index_on(("x",))[(1,)] == [0, 3]
