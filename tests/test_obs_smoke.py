"""End-to-end observability smoke: ``repro-serve`` + ``repro-obs`` as
real processes over TCP.

What CI's ``obs-smoke`` job runs: boot the server subprocess, run a
query through the Python client, then assert the whole observability
surface is live on the wire — the ``metrics`` op returns well-formed
Prometheus text that reflects the query, the ``trace`` op returns the
non-empty span tree for the ``trace_id`` the query response echoed, and
the ``repro-obs`` CLI renders all of it against the live server.  Kept
separate from the other smoke files so the CI jobs stay independently
selectable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT 40"
)


@pytest.mark.slow
def test_obs_smoke(capsys):
    # Any in-process QueryService built by an earlier test enables the
    # process-global tracer; this smoke asserts the *server-side* span
    # tree, so client-side spans joining the trace would reorder it.
    from repro.obs.trace import tracer

    tracer.disable()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--gen",
            "path:length=3,size=200,domain=30,seed=7",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = server.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        from repro.obs.cli import main as obs_main
        from repro.server import Client

        with Client(port=port, timeout=30.0) as client:
            cursor = client.execute(SQL, batch=15)
            rows = cursor.fetchall()
            assert len(rows) == 40
            assert cursor.results_emitted == 40
            assert cursor.trace_id, "responses must echo a trace_id"

            # -- metrics op: well-formed Prometheus text ----------------
            text = client.metrics()
            assert text.endswith("\n")
            assert "# TYPE repro_op_latency_ms histogram" in text
            assert "# TYPE repro_queries_total gauge" in text
            assert "repro_queries_total 1" in text
            assert 'repro_op_latency_ms_count{op="fetch"}' in text
            assert "repro_result_delay_ms_bucket" in text
            for line in text.strip().splitlines():
                assert line.startswith("#") or " " in line, line
            assert isinstance(client.metrics(format="json"), dict)

            # -- trace op: a non-empty span tree for the echoed id ------
            looked_up = client.trace(cursor.trace_id)
            spans = looked_up["trace"]["spans"]
            assert spans, "trace op returned an empty span tree"
            assert spans[0]["name"] == "fetch"
            assert any(span["name"] == "page_fetch" for span in spans)
            assert all(span["duration_ms"] is not None for span in spans)
            assert cursor.trace_id in looked_up["rendered"]

            # -- stats op: percentile-backed op latency -----------------
            stats = client.stats()
            assert stats["op_latency_ms"]["fetch"]["p50_ms"] >= 0.0
            assert stats["delay_profiles"], "drained cursor must fold a profile"

        # -- the repro-obs CLI against the live server ------------------
        host_port = ["--port", str(port)]
        assert obs_main(host_port) == 0
        summary = capsys.readouterr().out
        assert "queries=1" in summary
        assert "op latency (ms)" in summary
        assert "anytime delay (in-engine, ms):" in summary

        assert obs_main(host_port + ["--metrics"]) == 0
        assert "repro_queries_total 1" in capsys.readouterr().out

        assert obs_main(host_port + ["--traces"]) == 0
        assert "tracer:" in capsys.readouterr().out

        assert obs_main(host_port + ["--trace", cursor.trace_id]) == 0
        assert "page_fetch" in capsys.readouterr().out
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=30)
        server.stdout.close()


@pytest.mark.slow
def test_obs_smoke_layer2_propagation_log_slo(tmp_path, capsys):
    """Layer 2 over a real wire: a sharded (``--workers 4``) query whose
    client, server, and per-worker spans join into ONE trace tree; a
    rotating ``--query-log``; and a ``--slo`` verdict — all against a
    ``repro-serve`` subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    log_path = tmp_path / "query.log"

    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--gen",
            # Big enough to clear the parallel router's tuple floor.
            "path:length=3,size=2000,domain=40,seed=7",
            "--port",
            "0",
            "--workers",
            "4",
            "--query-log",
            str(log_path),
            "--log-sample",
            "1.0",
            "--log-max-bytes",
            "1024",
            "--slo",
            "query_p99_ms<=60000",
            "--slo",
            "error_rate<=50%",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(4):
            line = server.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port, "repro-serve never printed its listening line"

        from repro.obs.cli import main as obs_main
        from repro.obs.events import read_events
        from repro.obs.trace import tracer
        from repro.server import Client

        prev_enabled = tracer.enabled
        tracer.enabled = True  # opt into client-side spans for the join
        try:
            with Client(port=port, timeout=60.0) as client:
                cursor = client.execute(SQL, batch=20)
                query_trace_id = cursor.trace_id
                rows = cursor.fetchall()
                assert len(rows) == 40

                # -- one joined client -> server -> worker trace tree --
                looked_up = client.trace(query_trace_id)
                spans = looked_up["trace"]["spans"]
                names = [span["name"] for span in spans]
                assert "client.query" in names  # this process
                assert "serialize" in names and "wait" in names
                assert "query" in names  # the server subprocess
                by_id = {span["span_id"]: span for span in spans}
                execute = [s for s in spans if s["name"] == "execute.setup"]
                assert len(execute) == 1
                shard_roots = [
                    s for s in spans if s["name"].startswith("shard[")
                ]
                assert len(shard_roots) >= 4, (
                    "per-worker span subtrees must graft into the trace"
                )
                for shard in shard_roots:
                    assert shard["parent_id"] == execute[0]["span_id"]
                shard_ids = {s["span_id"] for s in shard_roots}
                assert any(
                    s["name"] == "enumerate" and s["parent_id"] in shard_ids
                    for s in spans
                )
                rendered = looked_up["rendered"]
                assert "client.query" in rendered and "shard[0]" in rendered

                # A propagated-but-evicted (or bogus) id answers with the
                # clean error code, not an empty 200 or an internal error.
                from repro.server.client import ServerError

                with pytest.raises(ServerError) as excinfo:
                    client.trace("t-never-existed")
                assert excinfo.value.code == "unknown_trace"

                # -- enough traffic to rotate the 1 KiB query log ------
                for _ in range(6):
                    client.execute(SQL, batch=20).fetchall()

                # -- the slo op over the wire --------------------------
                report = client.slo()
                assert report["status"] == "ok", report
                assert {entry["spec"] for entry in report["slos"]} == {
                    "query_p99_ms<=60000",
                    "error_rate<=50%",
                }
        finally:
            tracer.enabled = prev_enabled

        # -- the rotated, readable query log ---------------------------
        assert os.path.exists(str(log_path) + ".1"), "log never rotated"
        events = list(read_events(str(log_path)))
        assert any(event["op"] == "query" for event in events)
        assert all(
            event["sql_hash"] for event in events if event.get("sql")
        )

        # -- repro-obs: SLO verdicts and the log view ------------------
        host_port = ["--port", str(port)]
        assert obs_main(host_port + ["--slo"]) == 0
        assert "slo status: ok" in capsys.readouterr().out

        assert obs_main(["--log", str(log_path)]) == 0
        assert "query" in capsys.readouterr().out

        assert obs_main(host_port + ["--trace", "nope"]) == 1
        assert "no buffered trace" in capsys.readouterr().out
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=30)
        server.stdout.close()
