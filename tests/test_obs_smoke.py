"""End-to-end observability smoke: ``repro-serve`` + ``repro-obs`` as
real processes over TCP.

What CI's ``obs-smoke`` job runs: boot the server subprocess, run a
query through the Python client, then assert the whole observability
surface is live on the wire — the ``metrics`` op returns well-formed
Prometheus text that reflects the query, the ``trace`` op returns the
non-empty span tree for the ``trace_id`` the query response echoed, and
the ``repro-obs`` CLI renders all of it against the live server.  Kept
separate from the other smoke files so the CI jobs stay independently
selectable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT 40"
)


@pytest.mark.slow
def test_obs_smoke(capsys):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--gen",
            "path:length=3,size=200,domain=30,seed=7",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = server.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        from repro.obs.cli import main as obs_main
        from repro.server import Client

        with Client(port=port, timeout=30.0) as client:
            cursor = client.execute(SQL, batch=15)
            rows = cursor.fetchall()
            assert len(rows) == 40
            assert cursor.results_emitted == 40
            assert cursor.trace_id, "responses must echo a trace_id"

            # -- metrics op: well-formed Prometheus text ----------------
            text = client.metrics()
            assert text.endswith("\n")
            assert "# TYPE repro_op_latency_ms histogram" in text
            assert "# TYPE repro_queries_total gauge" in text
            assert "repro_queries_total 1" in text
            assert 'repro_op_latency_ms_count{op="fetch"}' in text
            assert "repro_result_delay_ms_bucket" in text
            for line in text.strip().splitlines():
                assert line.startswith("#") or " " in line, line
            assert isinstance(client.metrics(format="json"), dict)

            # -- trace op: a non-empty span tree for the echoed id ------
            looked_up = client.trace(cursor.trace_id)
            spans = looked_up["trace"]["spans"]
            assert spans, "trace op returned an empty span tree"
            assert spans[0]["name"] == "fetch"
            assert any(span["name"] == "page_fetch" for span in spans)
            assert all(span["duration_ms"] is not None for span in spans)
            assert cursor.trace_id in looked_up["rendered"]

            # -- stats op: percentile-backed op latency -----------------
            stats = client.stats()
            assert stats["op_latency_ms"]["fetch"]["p50_ms"] >= 0.0
            assert stats["delay_profiles"], "drained cursor must fold a profile"

        # -- the repro-obs CLI against the live server ------------------
        host_port = ["--port", str(port)]
        assert obs_main(host_port) == 0
        summary = capsys.readouterr().out
        assert "queries=1" in summary
        assert "op latency (ms)" in summary
        assert "anytime delay (in-engine, ms):" in summary

        assert obs_main(host_port + ["--metrics"]) == 0
        assert "repro_queries_total 1" in capsys.readouterr().out

        assert obs_main(host_port + ["--traces"]) == 0
        assert "tracer:" in capsys.readouterr().out

        assert obs_main(host_port + ["--trace", cursor.trace_id]) == 0
        assert "page_fetch" in capsys.readouterr().out
    finally:
        server.send_signal(signal.SIGINT)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            server.wait(timeout=30)
        server.stdout.close()
