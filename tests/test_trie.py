"""Tests for sorted tries and Leapfrog-style iterators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.relation import Relation
from repro.joins.trie import Trie, TrieIterator, ordkey


def _trie(rows, weights=None, order=("a", "b")):
    rel = Relation("R", ("a", "b"), rows, weights)
    return Trie(rel, order)


def test_trie_requires_schema_permutation():
    rel = Relation("R", ("a", "b"))
    with pytest.raises(ValueError):
        Trie(rel, ("a", "c"))


def test_first_level_values_sorted_distinct():
    t = _trie([(2, 1), (1, 1), (2, 3), (1, 2)])
    it = t.iterator()
    it.open()
    values = []
    while not it.at_end():
        values.append(it.key())
        it.next()
    assert values == [1, 2]


def test_descend_and_up():
    t = _trie([(1, 5), (1, 7), (2, 6)])
    it = t.iterator()
    it.open()
    assert it.key() == 1
    it.open()
    assert it.key() == 5
    it.next()
    assert it.key() == 7
    it.up()
    it.next()
    assert it.key() == 2
    it.open()
    assert it.key() == 6


def test_seek_jumps_forward():
    t = _trie([(i, 0) for i in range(0, 20, 2)])
    it = t.iterator()
    it.open()
    it.seek(7)
    assert it.key() == 8
    it.seek(8)
    assert it.key() == 8  # seek to first >= target
    it.seek(99)
    assert it.at_end()


def test_weight_lists_preserve_duplicates():
    t = _trie([(1, 5), (1, 5)], weights=[0.25, 0.75])
    it = t.iterator()
    it.open()
    it.open()
    assert sorted(it.weights()) == [0.25, 0.75]


def test_weights_only_at_last_level():
    t = _trie([(1, 5)])
    it = t.iterator()
    it.open()
    with pytest.raises(RuntimeError):
        it.weights()


def test_cannot_open_below_last_level():
    t = _trie([(1, 5)])
    it = t.iterator()
    it.open()
    it.open()
    with pytest.raises(RuntimeError):
        it.open()


def test_alternate_attribute_order():
    t = _trie([(1, 9), (2, 8)], order=("b", "a"))
    it = t.iterator()
    it.open()
    assert it.key() == 8  # first level is now b


def test_ordkey_mixed_types_total_order():
    values = ["x", 3, "a", 1]
    ordered = sorted(values, key=ordkey)
    assert ordered == [1, 3, "a", "x"]  # ints before strs by type name


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=30,
    )
)
def test_trie_enumerates_distinct_sorted_pairs(rows):
    t = _trie(rows)
    it = t.iterator()
    pairs = []
    it.open()
    while not it.at_end():
        a = it.key()
        it.open()
        while not it.at_end():
            pairs.append((a, it.key()))
            it.next()
        it.up()
        it.next()
    assert pairs == sorted(set(rows))
