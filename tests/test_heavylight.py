"""Tests for the heavy/light union-of-trees 4-cycle decomposition."""

from collections import Counter as Multiset

import pytest
from hypothesis import given, settings

from repro.data.generators import fourcycle_hub_database, random_graph_database
from repro.joins.base import multiset
from repro.joins.boolean import fourcycle_boolean, has_any_result
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.heavylight import fourcycle_pattern, fourcycle_union_of_trees
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import QueryError, cycle_query, path_query, triangle_query
from repro.query.hypergraph import is_acyclic

from conftest import graph_db_strategy


def _union_results(db, query, **kwargs):
    """Evaluate every tree with Yannakakis and reattach fixed variables."""
    results = []
    for tree in fourcycle_union_of_trees(db, query, **kwargs):
        out = yannakakis_join(tree.database, tree.query)
        for row, weight in zip(out.rows, out.weights):
            binding = dict(zip(out.schema, row))
            binding.update(tree.fixed)
            results.append(
                (
                    tuple(binding[v] for v in query.variables),
                    round(weight, 9),
                )
            )
    return Multiset(results)


def test_pattern_accepts_canonical_fourcycle():
    variables, order = fourcycle_pattern(cycle_query(4))
    assert variables == ["x1", "x2", "x3", "x4"]
    assert order == [0, 1, 2, 3]


@pytest.mark.parametrize(
    "query", [triangle_query(), cycle_query(3), cycle_query(5), path_query(4)]
)
def test_pattern_rejects_non_fourcycles(query):
    with pytest.raises(QueryError):
        fourcycle_pattern(query)


def test_trees_are_acyclic():
    db = random_graph_database(80, 12, seed=1)
    for tree in fourcycle_union_of_trees(db, cycle_query(4)):
        assert is_acyclic(tree.query)


@settings(max_examples=25, deadline=None)
@given(graph_db_strategy())
def test_union_equals_wco_output(db):
    q = cycle_query(4)
    assert _union_results(db, q) == multiset(generic_join(db, q))


@pytest.mark.parametrize("threshold", [0.0, 0.5, 2.0, 10.0**9])
def test_union_correct_for_any_threshold(threshold):
    """Extreme thresholds exercise the all-heavy and all-light cases."""
    db = random_graph_database(60, 10, seed=3)
    q = cycle_query(4)
    assert _union_results(db, q, threshold=threshold) == multiset(
        generic_join(db, q)
    )


def test_union_disjoint_trees():
    """Every answer appears in exactly one tree (no dedup needed)."""
    db = fourcycle_hub_database(64, seed=2)
    q = cycle_query(4)
    per_tree_totals = _union_results(db, q)
    wco = multiset(generic_join(db, q))
    assert per_tree_totals == wco  # equality of multisets == disjointness


def test_union_with_max_combine():
    db = random_graph_database(50, 9, seed=4)
    q = cycle_query(4)
    got = _union_results(db, q, combine=max)
    # Reference: generic join with max combiner.
    exp = Multiset(
        (row, round(w, 9))
        for row, w in zip(*(lambda r: (r.rows, r.weights))(
            generic_join(db, q, combine=max)
        ))
    )
    # Per-tree evaluation must also use max; redo with explicit combine.
    got = []
    for tree in fourcycle_union_of_trees(db, q, combine=max):
        out = yannakakis_join(tree.database, tree.query, combine=max)
        for row, weight in zip(out.rows, out.weights):
            binding = dict(zip(out.schema, row))
            binding.update(tree.fixed)
            got.append((tuple(binding[v] for v in q.variables), round(weight, 9)))
    assert Multiset(got) == exp


def test_fourcycle_boolean_agrees_with_general():
    for seed in range(6):
        db = random_graph_database(40, 14, seed=seed)
        q = cycle_query(4)
        assert fourcycle_boolean(db, q) == has_any_result(db, q)


def test_fourcycle_boolean_positive_on_hub():
    db = fourcycle_hub_database(32, seed=0)
    assert fourcycle_boolean(db, cycle_query(4)) is True


def test_empty_graph_has_no_cycles():
    db = random_graph_database(0, 5, seed=0)
    assert fourcycle_boolean(db, cycle_query(4)) is False
    assert _union_results(db, cycle_query(4)) == Multiset()
