"""SQL front-end: lexer/parser round-trips and error diagnostics."""

import pytest

from repro.sql.errors import SqlError, locate
from repro.sql.lexer import tokenize
from repro.sql.nodes import ColumnRef, Literal, OrderBy
from repro.sql.parser import parse


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
def test_tokenize_kinds_and_positions():
    tokens = tokenize("SELECT a.b, 'it''s' FROM R1 -- comment\nLIMIT 2")
    kinds = [(t.kind, t.text) for t in tokens]
    assert kinds == [
        ("keyword", "SELECT"),
        ("ident", "a"),
        ("op", "."),
        ("ident", "b"),
        ("op", ","),
        ("string", "it's"),
        ("keyword", "FROM"),
        ("ident", "R1"),
        ("keyword", "LIMIT"),
        ("number", "2"),
        ("eof", ""),
    ]
    assert tokens[0].pos == 0
    assert tokens[1].pos == 7


def test_tokenize_rejects_bad_input():
    with pytest.raises(SqlError, match="unterminated string"):
        tokenize("SELECT 'oops")
    with pytest.raises(SqlError, match="illegal character"):
        tokenize("SELECT @")
    with pytest.raises(SqlError, match="malformed number"):
        tokenize("SELECT 1.2.3")


def test_locate_lines_and_columns():
    sql = "SELECT *\nFROM R\nWHERE x = 1"
    line, column, text = locate(sql, sql.index("WHERE"))
    assert (line, column, text) == (3, 0, "WHERE x = 1")


# ----------------------------------------------------------------------
# Parser: structure and round-trips
# ----------------------------------------------------------------------
ROUND_TRIP_STATEMENTS = [
    "SELECT * FROM R",
    "SELECT * FROM R AS a, S AS b WHERE a.x = b.x",
    "SELECT a.x, b.y FROM R AS a JOIN S AS b ON a.x = b.x "
    "ORDER BY weight ASC LIMIT 3",
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY max(weight) DESC LIMIT 10",
    "SELECT * FROM R WHERE R.x = 5 AND R.y <> 'z' ORDER BY product(weight)",
    "SELECT * FROM R CROSS JOIN S LIMIT 1",
    "SELECT * FROM R WHERE R.x >= 1.5 AND R.x < 9",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_parse_render_parse_round_trip(sql):
    """Rendering a parsed statement and re-parsing is a fixed point."""
    first = parse(sql)
    rendered = str(first)
    second = parse(rendered)
    assert second == first  # positions are compare=False
    assert str(second) == rendered


def test_parse_shapes():
    stmt = parse(
        "SELECT a.x FROM R AS a JOIN S AS b ON a.x = b.x "
        "WHERE a.y > 3 ORDER BY sum(weight) DESC LIMIT 7;"
    )
    assert stmt.columns == (ColumnRef("a", "x"),)
    assert [t.relation for t in stmt.tables] == ["R", "S"]
    assert [t.name for t in stmt.tables] == ["a", "b"]
    # ON and WHERE conjuncts pool into one predicate list.
    assert len(stmt.predicates) == 2
    assert stmt.predicates[1].right == Literal(3)
    assert stmt.order_by == OrderBy("sum", descending=True)
    assert stmt.limit == 7


def test_signed_literals():
    stmt = parse("SELECT * FROM R WHERE R.x > -1.5 AND R.y <= + 2")
    assert stmt.predicates[0].right == Literal(-1.5)
    assert stmt.predicates[1].right == Literal(2)
    with pytest.raises(SqlError, match="expected a number after"):
        parse("SELECT * FROM R WHERE R.x > -y")
    # `--` is a comment, so a doubled minus swallows the rest of the line.
    with pytest.raises(SqlError, match="expected a column or literal"):
        parse("SELECT * FROM R WHERE R.x > --1")


def test_parse_normalizations():
    stmt = parse("select * from r where r.x != 2 order by prod(WEIGHT)")
    assert stmt.predicates[0].op == "<>"
    assert stmt.order_by.aggregate == "product"
    assert parse("SELECT * FROM R ORDER BY weight").order_by == OrderBy("sum")
    # Bare alias (no AS) and implicit alias both resolve.
    assert parse("SELECT * FROM R r").tables[0].name == "r"


# ----------------------------------------------------------------------
# Diagnostics: position-annotated, self-documenting errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "sql,needle",
    [
        ("SELECT DISTINCT * FROM R", "DISTINCT is not supported"),
        ("SELECT * FROM R LEFT JOIN S ON R.x = S.x", "outer joins"),
        ("SELECT * FROM R NATURAL JOIN S", "NATURAL JOIN is not supported"),
        ("SELECT * FROM R JOIN S USING (x)", "USING is not supported"),
        ("SELECT * FROM (SELECT * FROM R)", "subqueries are not supported"),
        ("SELECT * FROM R WHERE R.x = 1 OR R.y = 2", "OR is not supported"),
        ("SELECT * FROM R WHERE NOT R.x = 1", "NOT is not supported"),
        ("SELECT * FROM R GROUP BY x", "GROUP BY is not supported"),
        ("SELECT * FROM R HAVING x = 1", "HAVING is not supported"),
        ("SELECT * FROM R UNION SELECT * FROM S", "set operations"),
        ("SELECT * FROM R LIMIT 3 OFFSET 2", "OFFSET is not supported"),
        ("SELECT * FROM R ORDER BY weight, x", "multiple ORDER BY keys"),
        ("SELECT * FROM R ORDER BY x", "implicit tuple 'weight'"),
        ("SELECT * FROM R ORDER BY median(weight)", "unknown ranking aggregate"),
        ("SELECT * FROM R ORDER BY sum(x)", "arbitrary expressions"),
        ("SELECT count(x) FROM R", "function calls are not supported"),
        ("SELECT *, x FROM R", "cannot be combined"),
        ("SELECT * FROM R LIMIT 0", "LIMIT must be >= 1"),
        ("SELECT * FROM R LIMIT k", "positive integer"),
        ("SELECT * FROM R WHERE x < 'a' AND", "expected a column or literal"),
        ("SELECT * FROM", "expected relation name"),
        ("SELECT * FROM R extra garbage", "unexpected"),
    ],
)
def test_unsupported_constructs_have_targeted_diagnostics(sql, needle):
    with pytest.raises(SqlError) as excinfo:
        parse(sql)
    assert needle in str(excinfo.value)


def test_errors_carry_position_and_caret():
    sql = "SELECT * FROM R WHERE R.x = 1 OR R.y = 2"
    with pytest.raises(SqlError) as excinfo:
        parse(sql)
    error = excinfo.value
    assert error.pos == sql.index("OR ")
    rendered = str(error)
    assert "line 1" in rendered
    assert f"column {sql.index('OR ') + 1}" in rendered
    # The caret line points at the offending token.
    lines = rendered.splitlines()
    assert lines[-1].strip() == "^"
    assert lines[-2][lines[-1].index("^")] == "O"


def test_multiline_error_location():
    sql = "SELECT *\nFROM R\nORDER BY x"
    with pytest.raises(SqlError) as excinfo:
        parse(sql)
    assert "line 3" in str(excinfo.value)


# ----------------------------------------------------------------------
# Mutation statements (INSERT INTO / DELETE FROM)
# ----------------------------------------------------------------------
def test_parse_insert_round_trips():
    from repro.sql.nodes import InsertStatement
    from repro.sql.parser import parse_any

    statement = parse_any(
        "insert into E (src, dst, weight) values (1, 2, 0.5), (3, 4, -1)"
    )
    assert isinstance(statement, InsertStatement)
    assert statement.relation == "E"
    assert statement.columns == ("src", "dst", "weight")
    assert [tuple(v.value for v in row) for row in statement.rows] == [
        (1, 2, 0.5),
        (3, 4, -1),
    ]
    assert (
        str(statement)
        == "INSERT INTO E (src, dst, weight) VALUES (1, 2, 0.5), (3, 4, -1)"
    )


def test_parse_insert_without_column_list():
    from repro.sql.parser import parse_any

    statement = parse_any("INSERT INTO E VALUES ('a', 'b');")
    assert statement.columns is None
    assert [v.value for v in statement.rows[0]] == ["a", "b"]


def test_parse_delete_with_and_without_where():
    from repro.sql.nodes import DeleteStatement
    from repro.sql.parser import parse_any

    bare = parse_any("DELETE FROM E")
    assert isinstance(bare, DeleteStatement)
    assert bare.predicates == ()
    filtered = parse_any("delete from E where src = 1 and dst <> 'x'")
    assert len(filtered.predicates) == 2
    assert str(filtered) == "DELETE FROM E WHERE src = 1 AND dst <> 'x'"


@pytest.mark.parametrize(
    "sql, needle",
    [
        ("INSERT INTO E (a.b) VALUES (1)", "bare column names"),
        ("INSERT INTO E VALUES (x)", "must be number or string literals"),
        ("INSERT INTO E VALUES (1, 2) garbage", "unexpected"),
        ("INSERT INTO E", "expected VALUES"),
        ("DELETE FROM E AS alias", "does not take table aliases"),
        ("DELETE FROM E WHERE", "expected a column or literal"),
        ("UPDATE E SET a = 1", "UPDATE is not supported"),
    ],
)
def test_mutation_diagnostics(sql, needle):
    from repro.sql.parser import parse_any

    with pytest.raises(SqlError) as excinfo:
        parse_any(sql)
    assert needle in str(excinfo.value)


def test_parse_rejects_mutations_where_select_is_expected():
    with pytest.raises(SqlError, match="repro.sql.mutate"):
        parse("INSERT INTO E VALUES (1, 2)")
