"""End-to-end: SQL-routed execution agrees with direct rank_enumerate.

The acceptance property of the SQL front-end: for the standard query
shapes (path, star, 4-cycle, triangle), ``repro.sql.query`` returns
exactly the ``(row, weight)`` sequence of the corresponding direct
:func:`repro.anyk.rank_enumerate` call, whatever engine the router picks —
the SQL layer adds semantics (filters, projection, DESC), never changes
ranked-enumeration results.
"""

import pytest

from repro import sql as repro_sql
from repro.anyk import MAX, PRODUCT, rank_enumerate
from repro.anyk.ranking import SUM
from repro.data.database import Database
from repro.data.generators import (
    path_database,
    random_graph_database,
    star_database,
)
from repro.data.relation import Relation
from repro.query.cq import cycle_query, path_query, star_query, triangle_query
from repro.sql.errors import SqlError

PATH3_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY {ranking} LIMIT {k}"
)
STAR3_SQL = (
    "SELECT * FROM R1, R2, R3 "
    "WHERE R1.A0 = R2.A0 AND R2.A0 = R3.A0 ORDER BY {ranking} LIMIT {k}"
)
CYCLE4_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "JOIN E AS e3 ON e2.dst = e3.src "
    "JOIN E AS e4 ON e3.dst = e4.src AND e4.dst = e1.src "
    "ORDER BY {ranking} LIMIT {k}"
)
TRIANGLE_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "JOIN E AS e3 ON e2.dst = e3.src AND e3.dst = e1.src "
    "ORDER BY {ranking} LIMIT {k}"
)


def _sql_matches_direct(db, sql_text, query, ranking, k):
    """Run SQL and the direct pipeline with the routed engine; must agree."""
    result = repro_sql.query(db, sql_text)
    got = list(result)
    engine = result.plan.engine
    if engine == "rank_join":
        # The middleware is exercised separately; force comparability here.
        result = repro_sql.query(db, sql_text, engine="part:lazy")
        got = list(result)
        engine = "part:lazy"
    expected = list(
        rank_enumerate(db, query, ranking=ranking, method=engine, k=k)
    )
    assert got == expected
    return result.plan


@pytest.mark.parametrize("k", [1, 5, 40])
def test_path_query_agrees(k):
    db = path_database(length=3, size=70, domain=9, seed=11)
    plan = _sql_matches_direct(
        db, PATH3_SQL.format(ranking="weight", k=k), path_query(3), SUM, k
    )
    assert plan.estimates.acyclic


@pytest.mark.parametrize("k", [1, 7, 30])
def test_star_query_agrees(k):
    db = star_database(arms=3, size=60, domain=7, seed=5)
    _sql_matches_direct(
        db, STAR3_SQL.format(ranking="sum(weight)", k=k), star_query(3), SUM, k
    )


@pytest.mark.parametrize("k", [1, 6, 25])
def test_fourcycle_query_agrees(k):
    db = random_graph_database(num_edges=250, num_nodes=35, seed=2)
    plan = _sql_matches_direct(
        db, CYCLE4_SQL.format(ranking="weight", k=k), cycle_query(4), SUM, k
    )
    assert plan.estimates.fourcycle


def test_triangle_query_agrees():
    db = random_graph_database(num_edges=220, num_nodes=30, seed=9)
    plan = _sql_matches_direct(
        db,
        TRIANGLE_SQL.format(ranking="weight", k=8),
        triangle_query(("E", "E", "E")),
        SUM,
        8,
    )
    assert not plan.estimates.acyclic and not plan.estimates.fourcycle


@pytest.mark.parametrize(
    "ranking_sql,ranking",
    [("max(weight)", MAX), ("product(weight)", PRODUCT)],
)
def test_alternative_rankings_agree(ranking_sql, ranking):
    db = path_database(
        length=3, size=50, domain=8, seed=3, weight_range=(0.1, 1.0)
    )
    _sql_matches_direct(
        db,
        PATH3_SQL.format(ranking=ranking_sql, k=10),
        path_query(3),
        ranking,
        10,
    )


def test_lex_ranking_routes_to_anyk_and_runs():
    db = path_database(length=2, size=40, domain=6, seed=4)
    result = repro_sql.query(
        db,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "ORDER BY lex(weight) LIMIT 5",
    )
    rows = list(result)
    assert result.plan.is_anyk  # batch cannot carry LEX vectors
    assert all(isinstance(w, tuple) for _, w in rows)


def test_rank_join_engine_agrees_on_weights():
    db = path_database(length=2, size=100, domain=10, seed=6)
    sql_text = (
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight LIMIT 4"
    )
    result = repro_sql.query(db, sql_text)
    got = list(result)
    assert result.plan.engine == "rank_join"  # binary join, tiny k
    expected = list(rank_enumerate(db, path_query(2), k=4))
    # Engines may order equal-weight rows differently; weights must match
    # exactly and rows must agree within each weight class.
    assert [round(w, 9) for _, w in got] == [round(w, 9) for _, w in expected]
    assert sorted(map(repr, got)) == sorted(map(repr, expected))


# ----------------------------------------------------------------------
# SQL-only semantics: filters, projection, DESC, no LIMIT
# ----------------------------------------------------------------------
def _movie_db() -> Database:
    follows = Relation(
        "Follows",
        ("fan", "critic"),
        [("amy", "cam"), ("bob", "cam"), ("amy", "dee"), ("eve", "dee")],
        [0.1, 0.2, 0.3, 0.4],
    )
    reviews = Relation(
        "Reviews",
        ("critic", "movie", "stars"),
        [
            ("cam", "heat", 5),
            ("cam", "solaris", 3),
            ("dee", "heat", 4),
            ("dee", "brazil", 2),
        ],
        [0.5, 0.6, 0.7, 0.8],
    )
    return Database([follows, reviews])


def test_constant_filters_prefilter_relations():
    db = _movie_db()
    result = repro_sql.query(
        db,
        "SELECT * FROM Follows AS f JOIN Reviews AS r ON f.critic = r.critic "
        "WHERE r.stars >= 4 AND f.fan <> 'eve' ORDER BY weight",
    )
    rows = list(result)
    assert all(row[3] == "heat" or row[2] != "brazil" for row, _ in rows)
    expected_pairs = {
        ("amy", "cam", "heat", 5),
        ("bob", "cam", "heat", 5),
        ("amy", "dee", "heat", 4),
    }
    assert {row for row, _ in rows} == expected_pairs
    weights = [w for _, w in rows]
    assert weights == sorted(weights)


def test_projection_keeps_ranked_order_and_duplicates():
    db = _movie_db()
    result = repro_sql.query(
        db,
        "SELECT r.movie FROM Follows AS f JOIN Reviews AS r "
        "ON f.critic = r.critic ORDER BY weight",
    )
    assert result.columns == ("r.movie",)
    rows = list(result)
    full = list(
        repro_sql.query(
            db,
            "SELECT * FROM Follows AS f JOIN Reviews AS r "
            "ON f.critic = r.critic ORDER BY weight",
        )
    )
    # Projection maps the same ranked stream; duplicates are retained.
    assert [w for _, w in rows] == [w for _, w in full]
    # Full rows are (f.fan, f.critic, r.movie, r.stars): r.critic merges
    # into the join variable, so movie sits at position 2.
    assert [row[0] for row, _ in rows] == [row[2] for row, _ in full]
    assert len(rows) > len({row for row, _ in rows})


def test_desc_is_exact_reverse_on_distinct_weights():
    db = path_database(length=2, size=30, domain=5, seed=8)
    ascending = list(
        repro_sql.query(
            db,
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight ASC",
        )
    )
    descending = list(
        repro_sql.query(
            db,
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight DESC",
        )
    )
    assert [w for _, w in descending] == [
        pytest.approx(w) for _, w in reversed(ascending)
    ]
    assert {r for r, _ in descending} == {r for r, _ in ascending}


def test_no_limit_streams_everything():
    db = star_database(arms=2, size=25, domain=5, seed=12)
    rows = list(
        repro_sql.query(
            db,
            "SELECT * FROM R1 JOIN R2 ON R1.A0 = R2.A0 ORDER BY weight",
        )
    )
    expected = list(rank_enumerate(db, star_query(2), method="batch"))
    assert rows == expected


def test_cross_join_is_supported():
    db = Database(
        [
            Relation("A", ("x",), [(1,), (2,)], [0.1, 0.2]),
            Relation("B", ("y",), [(7,), (8,)], [0.3, 0.4]),
        ]
    )
    rows = list(repro_sql.query(db, "SELECT * FROM A CROSS JOIN B ORDER BY weight"))
    assert {r for r, _ in rows} == {(1, 7), (1, 8), (2, 7), (2, 8)}
    weights = [w for _, w in rows]
    assert weights == sorted(weights)


# ----------------------------------------------------------------------
# Semantic diagnostics against the catalog
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "sql_text,needle",
    [
        ("SELECT * FROM Nope", "unknown relation"),
        ("SELECT * FROM Follows, Follows", "duplicate table name"),
        ("SELECT * FROM Follows WHERE Follows.zzz = 1", "no column"),
        ("SELECT * FROM Follows WHERE Other.fan = 1", "unknown table"),
        (
            "SELECT * FROM Follows AS f, Reviews AS r WHERE critic = 'cam'",
            "ambiguous",
        ),
        ("SELECT * FROM Follows WHERE missing = 1", "no FROM table"),
        (
            "SELECT * FROM Follows AS f, Reviews AS r WHERE f.fan < r.movie",
            "theta-joins",
        ),
        ("SELECT * FROM Follows WHERE 1 = 2", "two literals"),
        (
            "SELECT * FROM Follows ORDER BY max(weight) DESC",
            "DESC is only supported with sum",
        ),
    ],
)
def test_semantic_errors_are_positioned(sql_text, needle):
    db = _movie_db()
    with pytest.raises(SqlError) as excinfo:
        repro_sql.query(db, sql_text)
    assert needle in str(excinfo.value)
    assert excinfo.value.pos is not None


def test_result_metadata():
    db = _movie_db()
    result = repro_sql.query(
        db,
        "SELECT * FROM Follows AS f JOIN Reviews AS r ON f.critic = r.critic "
        "ORDER BY weight LIMIT 2",
    )
    assert result.columns == (
        "f.fan",
        "f.critic",
        "r.movie",
        "r.stars",
    )
    assert result.plan.engine in ("rank_join", "part:lazy", "batch", "rec")
    assert len(result.fetchall()) == 2
