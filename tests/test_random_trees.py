"""Property tests on random tree-shaped queries.

Paths and stars are the extreme join-tree shapes; these tests generate
random trees in between (random parent pointers, mixed arities) and check
the full pipeline on them: GYO recognizes them as acyclic, every engine
agrees, any-k enumerates exactly, and the factorized count matches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk.api import rank_enumerate
from repro.anyk.ranking import MAX
from repro.data.database import Database
from repro.data.relation import Relation
from repro.factorized import FactorizedRepresentation, count_results
from repro.joins.base import multiset
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.naive import evaluate as naive_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import Atom, ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction

from conftest import ranked_weights, weight_strategy


@st.composite
def tree_query_db(draw, max_atoms: int = 4, max_size: int = 7, domain: int = 3):
    """A random tree-shaped query with its database.

    Atom i > 0 attaches to a random earlier atom j, sharing variable
    ``v{j}`` and introducing ``v{i}``; some atoms get an extra private
    variable (arity 3), so join trees of every shape and mixed arities
    appear.
    """
    atom_count = draw(st.integers(min_value=1, max_value=max_atoms))
    atoms = []
    schemas = []
    for i in range(atom_count):
        if i == 0:
            variables = [f"v0"]
        else:
            parent = draw(st.integers(min_value=0, max_value=i - 1))
            variables = [f"v{parent}", f"v{i}"]
        if draw(st.booleans()):
            variables.append(f"w{i}")  # private extra variable
        atoms.append(Atom(f"R{i}", tuple(variables)))
        schemas.append(tuple(f"c{p}" for p in range(len(variables))))

    db = Database()
    for i, (atom, schema) in enumerate(zip(atoms, schemas)):
        size = draw(st.integers(min_value=0, max_value=max_size))
        rows = [
            tuple(
                draw(st.integers(min_value=0, max_value=domain - 1))
                for _ in schema
            )
            for _ in range(size)
        ]
        weights = [draw(weight_strategy) for _ in range(size)]
        db.add(Relation(f"R{i}", schema, rows, weights))
    return db, ConjunctiveQuery(atoms, name="RandomTree")


@settings(max_examples=40, deadline=None)
@given(tree_query_db())
def test_tree_queries_are_acyclic(db_and_query):
    _, query = db_and_query
    tree = gyo_reduction(query)
    assert tree is not None
    assert tree.satisfies_running_intersection()


@settings(max_examples=30, deadline=None)
@given(tree_query_db())
def test_engines_agree_on_tree_queries(db_and_query):
    db, query = db_and_query
    reference = multiset(naive_join(db, query))
    assert multiset(yannakakis_join(db, query)) == reference
    assert multiset(generic_join(db, query)) == reference


@settings(max_examples=30, deadline=None)
@given(tree_query_db())
def test_anyk_exact_on_tree_queries(db_and_query):
    db, query = db_and_query
    expected = sorted(round(w, 9) for w in naive_join(db, query).weights)
    for method in ("part:lazy", "part:take2", "part:all", "rec"):
        got = ranked_weights(rank_enumerate(db, query, method=method))
        assert got == expected, method


@settings(max_examples=25, deadline=None)
@given(tree_query_db())
def test_anyk_max_ranking_on_tree_queries(db_and_query):
    db, query = db_and_query
    expected = sorted(
        round(w, 9) for w in naive_join(db, query, combine=max).weights
    )
    got = ranked_weights(rank_enumerate(db, query, ranking=MAX))
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(tree_query_db())
def test_factorized_count_on_tree_queries(db_and_query):
    db, query = db_and_query
    frep = FactorizedRepresentation(db, query)
    assert count_results(frep) == len(naive_join(db, query))
