"""Smoke tests: every example script runs to completion and prints the
sections it promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "lightest 4-cycles" in out
    assert "simple" in out
    assert "total_work" in out


@pytest.mark.slow
def test_optimal_joins_tour_runs():
    out = _run("optimal_joins_tour.py")
    assert "Generic-Join" in out
    assert "Yannakakis intermediates:           0" in out


@pytest.mark.slow
def test_middleware_topk_runs():
    out = _run("middleware_topk.py")
    assert "Threshold Algorithm" in out
    for regime in ("correlated", "independent", "inverse"):
        assert regime in out


@pytest.mark.slow
def test_anyk_showcase_runs():
    out = _run("anyk_showcase.py")
    assert "identical output" in out
    assert "MISMATCH" not in out
    assert "lex-best" in out


@pytest.mark.slow
def test_parallel_topk_runs():
    out = _run("parallel_topk.py")
    assert "2-shard merged prefix == serial prefix: True" in out
    assert "parallel: 2 workers" in out
    assert "byte-identical" in out


@pytest.mark.slow
def test_serve_client_runs():
    out = _run("serve_client.py")
    assert "identical to one uninterrupted run: True" in out
    assert "plan_cached=True" in out
    assert "cursor_limit" in out
    assert "server stopped cleanly" in out


@pytest.mark.slow
def test_factorized_aggregates_runs():
    out = _run("factorized_aggregates.py")
    assert "any-k agrees" in out
    assert "cheapest route cost" in out


@pytest.mark.slow
def test_sql_topk_runs():
    out = _run("sql_topk.py")
    assert "engine:   part:lazy" in out
    assert "SQL result == direct rank_enumerate: True" in out
    assert "engine:   batch" in out


@pytest.mark.slow
def test_loadgen_demo_runs():
    out = _run("loadgen_demo.py")
    assert "scenario: bursty" in out
    assert "0 mismatches" in out
    assert "errors:   none" in out
    assert "clean run, every sampled page verified: True" in out


@pytest.mark.slow
def test_kshortest_paths_runs():
    out = _run("kshortest_paths.py")
    assert "Hoffman-Pavley" in out
    assert "k-shortest-paths == any-k, verified" in out
