"""Parameter binding and the template-keyed plan cache.

The differential core: a statement served through a *bound template*
(one cached entry, values substituted per request) must produce the
byte-identical ranked stream to the same statement planned fresh with
inline literals — across engines and parallelism budgets.  Plus the
cache-key semantics (what shares an entry, what must not) and the
thread-safety of the per-entry hit counter.
"""

from __future__ import annotations

import threading

import pytest

from repro.data.generators import path_database
from repro.server import QueryService
from repro.server.plancache import (
    CachedPlan,
    PlanCache,
    bind_compiled,
    fingerprint_drift,
    normalize_sql,
    parameterize_sql,
)
from repro.sql.errors import SqlError

PARAM_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "WHERE R1.A1 > ? ORDER BY weight LIMIT ?"
)
LITERAL_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "WHERE R1.A1 > {v} ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def db():
    return path_database(length=3, size=120, domain=18, seed=23)


def drain(service, sql, engine=None, params=None):
    response = service.handle(
        {
            "id": 1,
            "op": "query",
            "sql": sql,
            "engine": engine,
            "params": params,
            "fetch": 25,
        }
    )
    assert response["ok"], response
    rows = list(response["rows"])
    cursor = response["cursor"]
    while cursor is not None and not response["done"]:
        response = service.handle(
            {"id": 2, "op": "fetch", "cursor": cursor, "n": 25}
        )
        assert response["ok"], response
        rows.extend(response["rows"])
        if response["done"]:
            break
    return rows


# ----------------------------------------------------------------------
# The differential: bound templates == fresh literal planning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["part:lazy", "rec", "batch", "rank_join"])
@pytest.mark.parametrize("workers", [1, 4])
def test_bound_template_matches_fresh_literals(db, engine, workers):
    fresh = QueryService(db, workers=workers)
    cached = QueryService(db, workers=workers)
    for v, k in [(2, 10), (7, 5), (2, 25), (11, 10)]:
        expected = drain(
            fresh, LITERAL_SQL.format(v=v, k=k), engine=engine
        )
        got = drain(cached, PARAM_SQL, engine=engine, params=[v, k])
        assert got == expected, f"divergence at v={v} k={k}"
    # Every instantiation after the first hit the one template entry.
    info = cached.plan_cache.info()
    assert info["entries"] == 1
    assert info["misses"] == 1 and info["hits"] == 3


def test_literal_and_placeholder_spellings_share_one_entry(db):
    service = QueryService(db)
    a = drain(service, LITERAL_SQL.format(v=4, k=8))
    b = drain(service, PARAM_SQL, params=[4, 8])
    assert a == b
    info = service.plan_cache.info()
    assert info["entries"] == 1 and info["hits"] == 1


# ----------------------------------------------------------------------
# Cache-key semantics
# ----------------------------------------------------------------------
def test_distinct_shapes_never_collide(db):
    # Same relations, same constants — but the filtered column differs,
    # so the templates (and the answers) must stay separate.
    service = QueryService(db)
    on_a1 = drain(
        service,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "WHERE R1.A1 > 3 ORDER BY weight LIMIT 10",
    )
    on_a2 = drain(
        service,
        "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "WHERE R2.A2 > 3 ORDER BY weight LIMIT 10",
    )
    info = service.plan_cache.info()
    assert info["entries"] == 2 and info["hits"] == 0
    assert on_a1 != on_a2


def test_operator_and_value_type_stay_out_of_the_template():
    # The comparison operator is template structure (shapes with > and
    # >= must not share); the value is not.
    gt, _ = normalize_sql("SELECT * FROM E WHERE E.src > 3 LIMIT 5")
    ge, _ = normalize_sql("SELECT * FROM E WHERE E.src >= 3 LIMIT 5")
    assert gt != ge
    five, _ = normalize_sql("SELECT * FROM E WHERE E.src > 5 LIMIT 5")
    assert gt == five


def test_engine_and_workers_separate_entries(db):
    service = QueryService(db)
    sql = LITERAL_SQL.format(v=2, k=10)
    drain(service, sql)
    drain(service, sql, engine="rec")
    assert service.plan_cache.info()["entries"] == 2
    key_w1 = PlanCache.key("T", None, 1)
    key_w4 = PlanCache.key("T", None, 4)
    assert key_w1 != key_w4


# ----------------------------------------------------------------------
# Binding errors
# ----------------------------------------------------------------------
def test_param_arity_mismatch_is_a_clean_sql_error(db):
    service = QueryService(db)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PARAM_SQL, "params": [1]}
    )
    assert not response["ok"]
    assert response["error"]["code"] == "sql_error"
    assert "2 bind parameter" in response["error"]["message"]


def test_limit_param_must_be_positive_int(db):
    service = QueryService(db)
    for bad in [0, -3, 2.5]:
        response = service.handle(
            {"id": 1, "op": "query", "sql": PARAM_SQL, "params": [1, bad]}
        )
        assert not response["ok"], bad
        assert response["error"]["code"] == "sql_error"


def test_params_vector_rejects_non_scalars(db):
    service = QueryService(db)
    for bad in [[True, 5], [[1], 5], [None, 5]]:
        response = service.handle(
            {"id": 1, "op": "query", "sql": PARAM_SQL, "params": bad}
        )
        assert not response["ok"], bad
        assert response["error"]["code"] in ("bad_request", "sql_error")


def test_mutations_refuse_placeholders(db):
    service = QueryService(db)
    for sql in [
        "INSERT INTO R1 VALUES (?, 2)",
        "DELETE FROM R1 WHERE A1 = ?",
    ]:
        response = service.handle({"id": 1, "op": "mutate", "sql": sql})
        assert not response["ok"], sql
        assert response["error"]["code"] == "sql_error"


def test_unbound_template_cannot_execute():
    from repro.data.generators import path_database
    from repro.engine.planner import plan_compiled
    from repro.sql.analyzer import analyze_statement
    from repro.sql.parser import parse

    db = path_database(length=2, size=30, domain=10, seed=3)
    statement = parse("SELECT * FROM R1 WHERE R1.A1 > ? LIMIT 3")
    compiled = analyze_statement(db, "q", statement)
    assert compiled.is_template
    with pytest.raises(SqlError, match="unbound parameters"):
        plan_compiled(db, compiled)


# ----------------------------------------------------------------------
# parameterize / bind round trip
# ----------------------------------------------------------------------
def test_parameterize_orders_slots_by_appearance():
    parameterized = parameterize_sql(
        "SELECT * FROM E WHERE E.src > 2 AND E.dst < ? LIMIT 7"
    )
    assert parameterized.slots == (("lit", 2), ("arg", 0), ("lit", 7))
    assert parameterized.placeholders == 1
    values = parameterized.resolve([9])
    assert values == (2, 9, 7)


def test_bind_compiled_renders_concrete_statement(db):
    parameterized = parameterize_sql(PARAM_SQL)
    from repro.sql.analyzer import analyze_statement

    template = analyze_statement(db, PARAM_SQL, parameterized.statement)
    bound = bind_compiled(template, parameterized.resolve([3, 12]), PARAM_SQL)
    assert not bound.is_template
    assert bound.k == 12
    assert "?" not in str(bound.statement)
    assert any(f.value == 3 for f in bound.filters)


def test_fingerprint_drift_thresholds():
    a = (("R", ("x",), 100, 1),)
    assert fingerprint_drift(a, a) == 0.0
    assert fingerprint_drift(a, (("R", ("x",), 110, 2),)) == pytest.approx(0.1)
    # Empty flip and shape changes always recost.
    assert fingerprint_drift(a, (("R", ("x",), 0, 2),)) == float("inf")
    assert fingerprint_drift(a, (("S", ("x",), 100, 1),)) == float("inf")
    assert fingerprint_drift(a, ()) == float("inf")


# ----------------------------------------------------------------------
# Concurrency: the per-entry hit counter is atomic
# ----------------------------------------------------------------------
def test_cached_plan_hits_survive_threaded_lookups():
    cache = PlanCache(maxsize=8)
    key = PlanCache.key("T", None, 1)
    entry = CachedPlan(None, None)
    cache.store(key, entry)
    lookups_per_thread = 500
    threads = 8

    def hammer():
        for _ in range(lookups_per_thread):
            assert cache.lookup(key) is entry

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    # Pre-fix, the unlocked `entry.hits += 1` lost increments under
    # exactly this interleaving.
    assert entry.hits == lookups_per_thread * threads
    assert cache.info()["hits"] == lookups_per_thread * threads
