"""Executable versions of the tutorial's headline claims.

Each test pins one sentence of the paper to a concrete, fast check; the
benchmark harness (EXPERIMENTS.md) measures the full series, these tests
guard the claims' validity at unit scale.
"""

import math

import pytest

from repro.anyk.api import rank_enumerate
from repro.data.generators import (
    fourcycle_hub_database,
    random_graph_database,
    triangle_worstcase_database,
)
from repro.joins.binary_plan import best_left_deep
from repro.joins.boolean import fourcycle_boolean
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.heavylight import fourcycle_union_of_trees
from repro.query.agm import agm_bound, fractional_cover_number
from repro.query.cq import cycle_query, triangle_query
from repro.query.decomposition import best_decomposition
from repro.query.hypergraph import is_acyclic
from repro.util.counters import Counters


def test_claim_triangle_output_bounded_by_n_to_1_5():
    """§3: 'the AGM bound shows that final output size cannot exceed
    n^1.5' — and ρ*(triangle) = 3/2."""
    assert fractional_cover_number(triangle_query()) == pytest.approx(1.5)
    db = triangle_worstcase_database(60)
    n = len(db["R"])
    assert agm_bound(db, triangle_query()) == pytest.approx(n**1.5, rel=1e-9)
    assert len(generic_join(db, triangle_query())) <= n**1.5


def test_claim_no_binary_plan_escapes_the_triangle_blowup():
    """§3: 'No matter the join order for a binary join plan, the first
    binary join produces O(n²) intermediate results.'"""
    n = 30
    db = triangle_worstcase_database(n)
    _, best_cost = best_left_deep(db, triangle_query())
    assert best_cost >= (n // 2 - 1) ** 2


def test_claim_fourcycle_worst_case_output_is_quadratic():
    """§1: 'In a graph with n edges, there can be O(n²) 4-cycles' — and
    the hub instance realizes Θ(n²)."""
    db = fourcycle_hub_database(64, seed=1)
    n = len(db["E"])
    out = generic_join(db, cycle_query(4))
    assert len(out) >= (n / 8) ** 2


def test_claim_fourcycle_single_tree_width_2_union_reaches_1_5():
    """§3: fractional hypertree width of the 4-cycle is 2 (single tree),
    'In contrast, submodular width is 1.5' — realized by the union of
    trees, whose total materialization stays within O(n^1.5)."""
    td = best_decomposition(cycle_query(4))
    assert td.fractional_hypertree_width() == pytest.approx(2.0)

    db = random_graph_database(400, 51, seed=9)
    n = len(db["E"])
    trees = fourcycle_union_of_trees(db, cycle_query(4))
    derived = sum(len(rel) for tree in trees for rel in tree.database)
    # Up to 4 copies of base relations per tree plus wedges: c · n^1.5.
    assert derived <= 10 * n**1.5
    for tree in trees:
        assert is_acyclic(tree.query)


def test_claim_boolean_fourcycle_subquadratic():
    """§1: 'the corresponding Boolean query can be answered in O(n^1.5)'
    — detection work grows strictly slower than full enumeration."""
    work = {}
    for n in (200, 800):
        db = random_graph_database(n, max(8, int((8 * n) ** 0.5)), seed=13)
        c_bool, c_full = Counters(), Counters()
        fourcycle_boolean(db, cycle_query(4), counters=c_bool)
        generic_join(db, cycle_query(4), counters=c_full)
        work[n] = (c_bool.total_work(), c_full.total_work())
    bool_growth = work[800][0] / work[200][0]
    full_growth = work[800][1] / work[200][1]
    assert bool_growth < full_growth


def test_claim_topk_cost_close_to_boolean():
    """§1: 'for small k, finding the k lightest cycles will have
    complexity close to the Boolean query ... this turns out to be
    correct' — top-10 work within a constant of detection work."""
    db = random_graph_database(800, int((8 * 800) ** 0.5), seed=17)
    c_topk, c_bool = Counters(), Counters()
    list(rank_enumerate(db, cycle_query(4), k=10, counters=c_topk))
    fourcycle_boolean(db, cycle_query(4), counters=c_bool)
    assert c_topk.total_work() < 5 * c_bool.total_work()


def test_claim_anyk_first_result_needs_no_full_output():
    """§4: a ranked-enumeration algorithm 'must return query results
    one-by-one in ranking order without knowing k in advance' — and the
    first result must not cost the full output."""
    from repro.data.generators import path_database
    from repro.query.cq import path_query

    db = path_database(4, 200, 10, seed=19)
    q = path_query(4)
    c_first, c_all = Counters(), Counters()
    next(iter(rank_enumerate(db, q, counters=c_first)))
    total = sum(1 for _ in rank_enumerate(db, q, counters=c_all))
    assert total > 1000
    assert c_first.total_work() < c_all.total_work() / 10


def test_claim_delay_logarithmic_not_polynomial():
    """§4: 'by exploiting the inherent structure of the join problem, the
    delay can be reduced to O(log k)' — per-result work must not scale
    with input size (contrast: the naive Lawler baseline does; E10)."""
    from repro.data.generators import path_database
    from repro.query.cq import path_query

    per_result = {}
    for n in (100, 400):
        db = path_database(3, n, n // 10, seed=23)
        c = Counters()
        stream = rank_enumerate(db, path_query(3), counters=c)
        next(stream)
        start = c.total_work()
        for count, _ in enumerate(stream, start=2):
            if count >= 100:
                break
        per_result[n] = (c.total_work() - start) / 99
    assert per_result[400] < 2.5 * per_result[100]
