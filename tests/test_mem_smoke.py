"""Memory-pressure admission over the wire: CI's ``mem-smoke`` job.

Boot the real ``repro-serve`` subprocess with a deliberately tiny
``--max-mem-mb`` watermark, drive queries past it, and require the
refusal to be the *clean* ``mem_pressure`` protocol error — never an
OOM kill, never ``internal`` — while the server keeps answering other
ops and shuts down gracefully.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT 5000"
)


@pytest.mark.slow
def test_mem_pressure_is_a_clean_wire_error():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--demo",
            "path",
            "--port",
            "0",
            "--max-mem-mb",
            "0.05",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = process.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        from repro.server import Client
        from repro.server.client import ServerError

        with Client(port=port) as client:
            # Fill the watermark with open (recently-touched, hence
            # eviction-protected) cursors until admission refuses.
            refusal = None
            held = []
            for _ in range(32):
                try:
                    opened = client.call("query", sql=SQL, fetch=10)
                except ServerError as exc:
                    refusal = exc
                    break
                assert opened["mem"]["live_bytes"] > 0
                held.append(opened["cursor"])
            assert refusal is not None, "watermark never refused admission"
            assert refusal.code == "mem_pressure"
            assert refusal.code != "internal"
            assert "watermark" in refusal.message

            # The server is degraded, not down: stats still answers and
            # records the rejection; held cursors still fetch.
            stats = client.stats()
            assert stats["memory"]["pressure_rejections"] >= 1
            assert stats["memory"]["watermark_bytes"] == int(0.05 * 1024 * 1024)
            page = client.call("fetch", cursor=held[0], n=5)
            assert len(page["rows"]) == 5

            # Draining/closing every cursor releases the accounted bytes
            # and admission recovers without a restart.
            for cursor_id in held:
                client.close_cursor(cursor_id)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.stats()["memory"]["live_bytes"] == 0:
                    break
                time.sleep(0.05)
            recovered = client.call("query", sql=SQL, fetch=5)
            assert len(recovered["rows"]) == 5
            if recovered["cursor"] is not None:
                client.close_cursor(recovered["cursor"])

        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
