"""Tests for tree decompositions and the cyclic → acyclic rewrite."""

import operator

import pytest
from hypothesis import given, settings

from repro.data.generators import random_graph_database
from repro.joins.base import multiset, reorder_to_query_schema
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import QueryError, cycle_query, path_query, triangle_query
from repro.query.decomposition import (
    best_decomposition,
    decompose_to_acyclic,
    decomposition_from_order,
    min_fill_decomposition,
    min_fill_order,
)
from repro.query.hypergraph import is_acyclic

from conftest import graph_db_strategy


def test_min_fill_order_is_permutation():
    q = cycle_query(5)
    order = min_fill_order(q)
    assert sorted(order) == sorted(q.variables)


@pytest.mark.parametrize(
    "query", [triangle_query(), cycle_query(4), cycle_query(5), path_query(4)]
)
def test_min_fill_decomposition_is_valid(query):
    td = min_fill_decomposition(query)
    assert td.is_valid()


def test_decomposition_from_order_rejects_non_permutation():
    with pytest.raises(QueryError):
        decomposition_from_order(triangle_query(), ["A", "B"])


def test_every_elimination_order_gives_valid_decomposition():
    import itertools

    q = cycle_query(4)
    for order in itertools.permutations(q.variables):
        td = decomposition_from_order(q, order)
        assert td.is_valid(), order


def test_triangle_best_decomposition_fhw():
    td = best_decomposition(triangle_query())
    assert td.fractional_hypertree_width() == pytest.approx(1.5)
    assert td.generalized_hypertree_width() == 2


def test_fourcycle_single_tree_fhw_is_two():
    # The tutorial's point: no single tree beats width 2 for the 4-cycle;
    # only the union of trees reaches 1.5.
    td = best_decomposition(cycle_query(4))
    assert td.fractional_hypertree_width() == pytest.approx(2.0)


def test_path_decomposition_width_one():
    td = best_decomposition(path_query(3))
    assert td.fractional_hypertree_width() == pytest.approx(1.0)
    assert td.width == 1


def test_atoms_assigned_exactly_once():
    td = min_fill_decomposition(cycle_query(5))
    assigned = [i for bag in td.bags for i in bag.atom_indexes]
    assert sorted(assigned) == list(range(5))


@settings(max_examples=25, deadline=None)
@given(graph_db_strategy())
def test_rewrite_equivalent_for_triangle(db):
    q = triangle_query(("E", "E", "E"))
    rewrite = decompose_to_acyclic(db, q)
    assert is_acyclic(rewrite.query)
    got = reorder_to_query_schema(
        yannakakis_join(rewrite.database, rewrite.query), q
    )
    expected = generic_join(db, q)
    assert multiset(got) == multiset(expected)


@settings(max_examples=15, deadline=None)
@given(graph_db_strategy(max_edges=10))
def test_rewrite_equivalent_for_five_cycle(db):
    q = cycle_query(5)
    rewrite = decompose_to_acyclic(db, q)
    got = reorder_to_query_schema(
        yannakakis_join(rewrite.database, rewrite.query), q
    )
    expected = generic_join(db, q)
    assert multiset(got) == multiset(expected)


def test_rewrite_combines_weights_once_per_atom():
    db = random_graph_database(30, 8, seed=4)
    q = cycle_query(4)
    rewrite = decompose_to_acyclic(db, q, combine=operator.add)
    got = reorder_to_query_schema(
        yannakakis_join(rewrite.database, rewrite.query), q
    )
    expected = generic_join(db, q)
    assert multiset(got) == multiset(expected)


def test_rewrite_with_max_combine():
    db = random_graph_database(30, 8, seed=5)
    q = triangle_query(("E", "E", "E"))
    rewrite = decompose_to_acyclic(db, q, combine=max)
    got = reorder_to_query_schema(
        yannakakis_join(rewrite.database, rewrite.query, combine=max), q
    )
    expected = generic_join(db, q, combine=max)
    assert multiset(got) == multiset(expected)


def test_children_mapping_consistent():
    td = min_fill_decomposition(cycle_query(4))
    kids = td.children()
    for child, parent in enumerate(td.parent):
        if parent is not None:
            assert child in kids[parent]
