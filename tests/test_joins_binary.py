"""Tests for hash joins, left-deep plans and intermediate accounting."""

import pytest
from hypothesis import given, settings

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.generators import triangle_worstcase_database
from repro.joins.base import atom_relation, multiset
from repro.joins.binary_plan import (
    all_left_deep_orders,
    best_left_deep,
    evaluate_left_deep,
    greedy_plan,
    worst_left_deep,
)
from repro.joins.hash_join import hash_join
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import Atom, ConjunctiveQuery, QueryError, path_query, triangle_query
from repro.util.counters import Counters

from conftest import path_db_strategy


def test_hash_join_natural_join_semantics():
    left = Relation("L", ("a", "b"), [(1, 2), (1, 3)], [0.1, 0.2])
    right = Relation("R", ("b", "c"), [(2, 9), (2, 8)], [0.5, 0.7])
    out = hash_join(left, right)
    assert out.schema == ("a", "b", "c")
    assert multiset(out) == multiset(
        Relation(
            "X", ("a", "b", "c"), [(1, 2, 9), (1, 2, 8)], [0.6, 0.8]
        )
    )


def test_hash_join_cross_product_when_no_shared():
    left = Relation("L", ("a",), [(1,), (2,)])
    right = Relation("R", ("b",), [(9,)])
    out = hash_join(left, right)
    assert sorted(out.rows) == [(1, 9), (2, 9)]


def test_hash_join_weight_combiner():
    left = Relation("L", ("a",), [(1,)], [0.4])
    right = Relation("R", ("a",), [(1,)], [0.9])
    out = hash_join(left, right, combine=max)
    assert out.weights == [0.9]


def test_hash_join_counts_intermediates():
    left = Relation("L", ("a",), [(1,)] * 3)
    right = Relation("R", ("a",), [(1,)] * 4)
    c = Counters()
    out = hash_join(left, right, counters=c)
    assert len(out) == 12
    assert c.intermediate_tuples == 12


def test_hash_join_bag_semantics_duplicates():
    left = Relation("L", ("a",), [(1,), (1,)], [0.1, 0.2])
    right = Relation("R", ("a",), [(1,)], [1.0])
    out = hash_join(left, right)
    assert sorted(round(w, 6) for w in out.weights) == [1.1, 1.2]


def test_atom_relation_repeated_variable_filter():
    db = Database([Relation("E", ("x", "y"), [(1, 1), (1, 2)], [0.3, 0.4])])
    q = ConjunctiveQuery([Atom("E", ("a", "a"))])
    rel = atom_relation(db, q, 0)
    assert rel.schema == ("a",)
    assert rel.rows == [(1,)]
    assert rel.weights == [0.3]


@settings(max_examples=30, deadline=None)
@given(path_db_strategy())
def test_left_deep_matches_naive(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    expected = multiset(naive_join(db, q))
    assert multiset(evaluate_left_deep(db, q)) == expected


def test_all_orders_agree_on_triangle():
    db = triangle_worstcase_database(12)
    q = triangle_query()
    expected = multiset(naive_join(db, q))
    for order in all_left_deep_orders(q):
        assert multiset(evaluate_left_deep(db, q, order)) == expected


def test_invalid_order_rejected():
    db = triangle_worstcase_database(8)
    with pytest.raises(QueryError):
        evaluate_left_deep(db, triangle_query(), order=[0, 0, 1])


def test_connected_orders_only():
    q = path_query(3)
    orders = list(all_left_deep_orders(q))
    # R1 then R3 is disconnected; it must not be enumerated.
    assert (0, 2, 1) not in orders
    assert (0, 1, 2) in orders
    all_orders = list(all_left_deep_orders(q, connected_only=False))
    assert len(all_orders) == 6


def test_greedy_plan_is_valid_permutation():
    db = triangle_worstcase_database(16)
    plan = greedy_plan(db, triangle_query())
    assert sorted(plan) == [0, 1, 2]


def test_every_triangle_order_blows_up_on_worstcase():
    """The §3 claim: no binary order avoids Θ(n²) intermediates."""
    n = 20
    db = triangle_worstcase_database(n)
    half = n // 2
    quadratic_floor = (half - 1) ** 2  # the forced pairwise join size
    _, best_cost = best_left_deep(db, triangle_query())
    assert best_cost >= quadratic_floor
    _, worst_cost = worst_left_deep(db, triangle_query())
    assert worst_cost >= best_cost


def test_intermediates_scale_quadratically():
    costs = {}
    for n in (16, 32):
        db = triangle_worstcase_database(n)
        c = Counters()
        evaluate_left_deep(db, triangle_query(), order=[0, 1, 2], counters=c)
        costs[n] = c.intermediate_tuples
    # Doubling n should roughly quadruple the intermediate count.
    assert costs[32] > 3 * costs[16]
