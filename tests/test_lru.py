"""The shared bounded LRU (`repro.util.lru`) backing the plan and stats
caches."""

import threading

import pytest

from repro.util import LruCache


def test_eviction_is_least_recently_used():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # freshen a; b is now least-recent
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2


def test_hit_miss_accounting_and_clear():
    cache = LruCache(4)
    assert cache.get("x") is None
    cache.put("x", 42)
    assert cache.get("x") == 42
    info = cache.info()
    assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1
    cache.clear()
    assert len(cache) == 0 and cache.info()["hits"] == 0


def test_rejects_zero_capacity():
    with pytest.raises(ValueError):
        LruCache(0)


def test_concurrent_put_get_stays_bounded():
    cache = LruCache(8)

    def worker(base: int) -> None:
        for i in range(500):
            cache.put((base, i % 16), i)
            cache.get((base, (i + 1) % 16))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert len(cache) <= 8
