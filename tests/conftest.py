"""Shared helpers and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from collections import Counter as Multiset

from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import Relation


# ----------------------------------------------------------------------
# Deterministic mini-database builders
# ----------------------------------------------------------------------
def tiny_db(*relations: Relation) -> Database:
    return Database(relations)


def weighted_relation(
    name: str,
    schema: tuple[str, ...],
    size: int,
    domain: int,
    seed: int,
) -> Relation:
    rng = random.Random(seed)
    rel = Relation(name, schema)
    for _ in range(size):
        rel.add(
            tuple(rng.randrange(domain) for _ in schema),
            round(rng.uniform(0.0, 1.0), 6),
        )
    return rel


def ranked_weights(pairs) -> list[float]:
    """Weights of (row, weight) pairs, rounded for float-stable compares."""
    return [round(float(w), 9) for _, w in pairs]


def multiset_of(pairs) -> Multiset:
    return Multiset((row, round(float(w), 9)) for row, w in pairs)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
#: Small weights with exact float behaviour (multiples of 1/64 avoid
#: associativity-noise in cross-engine comparisons).
weight_strategy = st.integers(min_value=0, max_value=640).map(lambda i: i / 64.0)


@st.composite
def relation_rows(draw, arity: int, max_size: int = 12, domain: int = 4):
    size = draw(st.integers(min_value=0, max_value=max_size))
    rows = [
        tuple(
            draw(st.integers(min_value=0, max_value=domain - 1))
            for _ in range(arity)
        )
        for _ in range(size)
    ]
    weights = [draw(weight_strategy) for _ in range(size)]
    return rows, weights


@st.composite
def path_db_strategy(draw, max_length: int = 3, max_size: int = 10, domain: int = 4):
    """A random path-query database R1(A1,A2), ..., Rl(Al,Al+1)."""
    length = draw(st.integers(min_value=1, max_value=max_length))
    db = Database()
    for i in range(1, length + 1):
        rows, weights = draw(relation_rows(2, max_size=max_size, domain=domain))
        db.add(Relation(f"R{i}", (f"A{i}", f"A{i + 1}"), rows, weights))
    return db, length


@st.composite
def star_db_strategy(draw, max_arms: int = 3, max_size: int = 8, domain: int = 4):
    arms = draw(st.integers(min_value=1, max_value=max_arms))
    db = Database()
    for i in range(1, arms + 1):
        rows, weights = draw(relation_rows(2, max_size=max_size, domain=domain))
        db.add(Relation(f"R{i}", ("A0", f"A{i}"), rows, weights))
    return db, arms


@st.composite
def graph_db_strategy(draw, max_edges: int = 14, nodes: int = 5):
    """A random weighted edge relation E(src, dst) without duplicates."""
    edge_count = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=nodes - 1),
                st.integers(min_value=0, max_value=nodes - 1),
            ),
            min_size=edge_count,
            max_size=edge_count,
            unique=True,
        )
    )
    weights = [draw(weight_strategy) for _ in edges]
    return Database([Relation("E", ("src", "dst"), edges, weights)])


@st.composite
def scored_lists_strategy(draw, max_objects: int = 12, max_lists: int = 3):
    num_objects = draw(st.integers(min_value=1, max_value=max_objects))
    num_lists = draw(st.integers(min_value=1, max_value=max_lists))
    lists = []
    for _ in range(num_lists):
        scores = [
            draw(st.integers(min_value=0, max_value=100)) / 100.0
            for _ in range(num_objects)
        ]
        column = sorted(
            ((f"o{i}", s) for i, s in enumerate(scores)),
            key=lambda pair: (-pair[1], pair[0]),
        )
        lists.append(column)
    return lists
