"""Observability layer 2: trace propagation, the query log, and SLOs.

Three subsystems, each tested at its own seam and then end to end:

- **Trace propagation** — W3C-traceparent-style ``trace_context``
  round-trips, server-side adoption of a caller's trace id, same-process
  client/server joins, and the grafting of per-shard worker span trees
  under the coordinator's execute span (the acceptance criterion: a
  ``workers=4`` query yields ONE tree with four shard subtrees).
- **Query log** — deterministic sampling, forced slow/error capture,
  size rotation, file views, and replay.
- **SLOs** — the spec grammar, conservative bucket counting, the rolling
  burn-rate engine's verdicts under a fake clock, and the server's
  ``slo`` op (including under ``--readonly``).
"""

from __future__ import annotations

import json

import pytest

from repro.data.generators import path_database
from repro.obs.events import (
    EventLog,
    read_events,
    render_event,
    replay_events,
    sql_hash,
)
from repro.obs.slo import (
    SloEngine,
    SloError,
    evaluate_specs,
    parse_slo,
    parse_slos,
    render_slo_report,
    worst_status,
)
from repro.obs.trace import (
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    tracer,
)
from repro.server import QueryService
from repro.util.histogram import Histogram

PATH_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def path_db():
    return path_database(length=3, size=120, domain=18, seed=23)


@pytest.fixture()
def global_tracer_restored():
    prev = tracer.enabled
    yield tracer
    tracer.enabled = prev


# ----------------------------------------------------------------------
# Trace context propagation
# ----------------------------------------------------------------------
def test_traceparent_roundtrips_dashed_trace_ids():
    trace_id = new_trace_id()
    assert "-" in trace_id  # the format the parser must survive
    header = format_traceparent(trace_id, "sdeadbeef.2a")
    parsed = parse_traceparent(header)
    assert parsed == (trace_id, "sdeadbeef.2a")


@pytest.mark.parametrize(
    "garbage",
    ["", "00", "zz-abc-def-01", "00-only-two", 42, None],
)
def test_parse_traceparent_rejects_garbage(garbage):
    assert parse_traceparent(garbage) is None


def test_server_adopts_propagated_trace_context(path_db):
    service = QueryService(path_db)
    joined_before = tracer.info()["joined"]
    trace_id = new_trace_id()
    header = format_traceparent(trace_id, "sclient.1")
    response = service.handle(
        {
            "id": 1,
            "op": "query",
            "sql": PATH_SQL.format(k=3),
            "fetch": 3,
            "trace_context": header,
        }
    )
    assert response["ok"]
    # The server adopted the caller's trace id instead of minting one.
    assert response["trace_id"] == trace_id
    looked_up = service.handle({"id": 2, "op": "trace", "trace": trace_id})
    assert looked_up["ok"]
    spans = looked_up["trace"]["spans"]
    root = spans[0]
    assert root["name"] == "query"
    # The server root is parented under the caller's span id, so a
    # joined rendering hangs the server subtree off the client span.
    assert root["parent_id"] == "sclient.1"
    # Adoption is not a join: nothing local was grafted onto.
    assert tracer.info()["joined"] == joined_before


def test_bad_trace_context_is_a_bad_request(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {"id": 1, "op": "stats", "trace_context": ["not", "a", "string"]}
    )
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"


def test_client_and_server_spans_join_over_the_wire(
    path_db, global_tracer_restored
):
    from repro.server import Client, serve_background

    server, port = serve_background(path_db)
    try:
        tracer.enabled = True  # the application opts into client spans
        with Client(port=port) as client:
            cursor = client.execute(PATH_SQL.format(k=4), batch=4)
            # The opening request's trace id (fetch round trips refresh
            # cursor.trace_id with their own).
            query_trace_id = cursor.trace_id
            rows = cursor.fetchall()
            assert len(rows) == 4
            looked_up = client.trace(trace_id=query_trace_id)
        names = [span["name"] for span in looked_up["trace"]["spans"]]
        # One tree: the client's round-trip spans AND the server's
        # stage spans, under the same trace id.
        assert "client.query" in names
        assert "serialize" in names and "wait" in names
        assert "query" in names and "plan" in names
        rendered = looked_up["rendered"]
        assert "client.query" in rendered and "page_fetch" in rendered
    finally:
        server.shutdown()
        server.server_close()


@pytest.mark.slow
def test_worker_spans_graft_under_the_coordinator_execute_span():
    """A workers=4 sharded query yields one trace tree with >= 4 shard
    subtrees, every worker span parented inside the coordinator's
    execute span (the PR's headline acceptance criterion)."""
    db = path_database(length=3, size=2000, domain=40, seed=7)
    service = QueryService(db, workers=4)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=8), "fetch": 8}
    )
    assert response["ok"] and response["rows"]
    # Drain to completion: worker span trees ship in the done frames and
    # graft when the merged stream shuts down.
    page, next_id = response, 2
    while not page.get("done"):
        page = service.handle(
            {"id": next_id, "op": "fetch", "cursor": response["cursor"], "n": 10}
        )
        assert page["ok"]
        next_id += 1
    looked_up = service.handle(
        {"id": next_id, "op": "trace", "trace": response["trace_id"]}
    )
    spans = looked_up["trace"]["spans"]
    by_id = {span["span_id"]: span for span in spans}
    execute_spans = [s for s in spans if s["name"] == "execute.setup"]
    assert len(execute_spans) == 1
    anchor_id = execute_spans[0]["span_id"]
    shard_roots = [s for s in spans if s["name"].startswith("shard[")]
    assert len(shard_roots) == 4
    assert {s["name"] for s in shard_roots} == {
        f"shard[{i}]" for i in range(4)
    }
    for shard_root in shard_roots:
        assert shard_root["parent_id"] == anchor_id
    # Worker-side stage spans rode the done frame and kept their
    # parent links within the shard subtree.
    shard_ids = {s["span_id"] for s in shard_roots}
    stage_names = {
        s["name"] for s in spans if s.get("parent_id") in shard_ids
    }
    assert {"setup", "enumerate"} <= stage_names
    # Every span in the record resolves to the one root: a single tree.
    def root_of(span):
        seen = set()
        while span.get("parent_id") in by_id:
            assert span["span_id"] not in seen  # no cycles
            seen.add(span["span_id"])
            span = by_id[span["parent_id"]]
        return span["span_id"]

    roots = {root_of(span) for span in spans}
    assert roots == {spans[0]["span_id"]}


def test_readonly_server_still_serves_every_obs_op(path_db):
    service = QueryService(path_db, readonly=True)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=3), "fetch": 3}
    )
    assert response["ok"]

    metrics = service.handle({"id": 2, "op": "metrics", "format": "json"})
    assert metrics["ok"]
    assert "repro_queries_total" in json.dumps(metrics["metrics"])

    looked_up = service.handle(
        {"id": 3, "op": "trace", "trace": response["trace_id"]}
    )
    assert looked_up["ok"] and looked_up["trace"]["spans"]

    slo = service.handle({"id": 4, "op": "slo"})
    assert slo["ok"]
    assert slo["status"] == "ok"
    assert [entry["spec"] for entry in slo["slos"]] == list(slo["specs"])

    refused = service.handle(
        {"id": 5, "op": "mutate", "sql": "DELETE FROM R1 WHERE A1 = 0"}
    )
    assert not refused["ok"]


# ----------------------------------------------------------------------
# The structured event log
# ----------------------------------------------------------------------
def test_event_log_sampling_is_deterministic(tmp_path):
    path = tmp_path / "q.log"
    log = EventLog(str(path), sample=0.5)
    for i in range(20):
        log.record({"op": "query", "latency_ms": 1.0, "i": i})
    log.close()
    events = list(read_events(str(path)))
    assert len(events) == 10  # floor-advancement: exactly half, no RNG
    info_written = [e["i"] for e in events]
    # Re-running the same sequence records the same subset.
    path2 = tmp_path / "q2.log"
    log2 = EventLog(str(path2), sample=0.5)
    for i in range(20):
        log2.record({"op": "query", "latency_ms": 1.0, "i": i})
    log2.close()
    assert [e["i"] for e in read_events(str(path2))] == info_written


def test_event_log_forces_slow_and_error_capture(tmp_path):
    path = tmp_path / "q.log"
    log = EventLog(str(path), sample=0.0, slow_ms=100.0)
    log.record_request(
        {"op": "query", "id": 1, "sql": "SELECT 1"},
        {"ok": True, "results_emitted": 1},
        latency_ms=1.0,
    )  # sampled out
    log.record_request(
        {"op": "query", "id": 2, "sql": "SELECT 2"},
        {"ok": True, "results_emitted": 1},
        latency_ms=250.0,
    )  # slow: forced
    log.record_request(
        {"op": "query", "id": 3, "sql": "SELECT broken"},
        {"ok": False, "error": {"code": "sql_error", "message": "no"}},
        latency_ms=1.0,
    )  # error: forced
    log.close()
    events = list(read_events(str(path)))
    assert [e["id"] for e in events] == [2, 3]
    assert events[0]["latency_ms"] >= 100.0
    assert events[1]["error"] == "sql_error"
    assert events[1]["sql_hash"] == sql_hash("SELECT broken")
    info = log.info()
    assert info["forced"] == 2 and info["written"] == 2


def test_event_log_rotates_by_size_and_reads_both_files(tmp_path):
    path = tmp_path / "q.log"
    log = EventLog(str(path), sample=1.0, max_bytes=1024)
    for i in range(120):
        log.record({"op": "query", "latency_ms": 1.0, "i": i})
    log.close()
    assert log.info()["rotations"] >= 2
    assert (tmp_path / "q.log.1").exists()
    events = list(read_events(str(path)))
    # Rotated-first ordering: the sequence numbers stay monotone.
    sequence = [e["i"] for e in events]
    assert sequence == sorted(sequence)
    # The surviving generations (.1 + current) are present; older
    # rotations were overwritten.
    assert 20 < len(sequence) < 120


def test_service_event_log_captures_requests(tmp_path, path_db):
    path = tmp_path / "service.log"
    service = QueryService(path_db, event_log=EventLog(str(path)))
    sql = PATH_SQL.format(k=3)
    response = service.handle({"id": 1, "op": "query", "sql": sql, "fetch": 3})
    service.handle({"id": 2, "op": "query", "sql": "SELECT nope"})
    service.shutdown()  # closes the log
    events = list(read_events(str(path)))
    assert len(events) == 2
    ok_event, err_event = events
    assert ok_event["op"] == "query"
    assert ok_event["sql_hash"] == sql_hash(sql)
    assert ok_event["trace_id"] == response["trace_id"]
    assert ok_event["results_emitted"] == 3
    assert "version" in ok_event and ok_event["plan_cached"] is False
    assert err_event["error"] == "sql_error"
    # Obs ops themselves (stats/metrics/trace/slo) are not logged.
    assert all(e["op"] in ("query",) for e in events)
    assert "query" in render_event(ok_event)


def test_replay_reissues_queries_and_skips_cursor_ops():
    issued = []

    def call(op, **fields):
        issued.append((op, fields))
        return {"ok": True}

    events = [
        {"op": "query", "sql": "SELECT 1", "results_emitted": 7},
        {"op": "fetch", "sql": None},
        {"op": "close"},
        {"op": "mutate", "sql": "DELETE FROM R1 WHERE A1 = 0"},
        {"op": "explain", "sql": "SELECT 2"},
    ]
    outcome = replay_events(events, call)
    assert outcome["replayed"] == 2 and outcome["failed"] == 0
    assert outcome["skipped"] == 3  # fetch, close, and the mutate
    assert issued[0] == ("query", {"sql": "SELECT 1", "fetch": 7})
    assert issued[1] == ("explain", {"sql": "SELECT 2"})

    issued.clear()
    outcome = replay_events(events, call, include_mutations=True)
    assert outcome["replayed"] == 3
    assert ("mutate", {"sql": "DELETE FROM R1 WHERE A1 = 0"}) in issued


# ----------------------------------------------------------------------
# SLO specs and the burn-rate engine
# ----------------------------------------------------------------------
def test_parse_slo_grammar():
    spec = parse_slo("query_p99_ms<=25")
    assert (spec.kind, spec.indicator, spec.percentile) == (
        "latency",
        "query",
        99.0,
    )
    assert spec.threshold_ms == 25.0
    assert spec.budget == pytest.approx(0.01)

    # No explicit percentile: p99 is the default.
    assert parse_slo("ttf_ms<=5").percentile == 99.0
    assert parse_slo("ttf_ms<=5").indicator == "ttf"

    rate = parse_slo("error_rate<=0.1%")
    assert rate.kind == "error_rate"
    assert rate.budget == pytest.approx(0.001)

    avail = parse_slo("availability>=99.9%")
    assert avail.kind == "availability"
    assert avail.budget == pytest.approx(0.001)

    assert "p95 of fetch latency" in parse_slo("fetch_p95_ms<=10").objective()


@pytest.mark.parametrize(
    "bad",
    [
        "nonsense",
        "query_p99_ms>=25",  # latency objectives use <=
        "error_rate>=1%",  # error_rate objectives use <=
        "availability<=99%",  # availability objectives use >=
        "error_rate<=150%",  # budget outside (0, 1)
        "query_p0_ms<=25",  # percentile outside (0, 100)
        "query_p99_ms<=0",  # threshold must be positive
        "query_p99_ms<=25%",  # ms, not percent
        "wat<=3",  # unknown indicator shape
    ],
)
def test_parse_slo_rejects_malformed_specs(bad):
    with pytest.raises(SloError):
        parse_slo(bad)


def test_evaluate_specs_counts_conservatively():
    hist = Histogram()
    for value in (1.0, 2.0, 30.0, 400.0):
        hist.record(value)
    specs = parse_slos(["query_p50_ms<=100", "error_rate<=10%"])
    report = evaluate_specs(
        specs, lambda name: hist if name == "query" else None, lambda: (10, 0)
    )
    latency, errors = report["slos"]
    assert latency["total"] == 4
    # 400 ms is over; 30 ms may be counted bad only if its bucket's
    # upper edge exceeds the threshold — never optimistically good.
    assert 1 <= latency["bad"] <= 2
    assert errors["status"] == "ok" and errors["total"] == 10
    assert isinstance(render_slo_report(report), list)


def test_slo_engine_burns_and_pages_with_a_fake_clock():
    clock_now = [0.0]
    counts = [[0, 0]]  # cumulative (total, bad) for the single spec

    specs = parse_slos(["error_rate<=1%"])
    engine = SloEngine(
        specs,
        lambda: [tuple(counts[0])],
        windows_s=(10.0, 60.0),
        min_tick_interval_s=0.0,
        clock=lambda: clock_now[0],
    )
    # Healthy traffic: 100 requests, 0 errors.
    for step in range(10):
        clock_now[0] += 1.0
        counts[0][0] += 10
        engine.tick()
    report = engine.evaluate()
    assert report["status"] == "ok"
    assert set(report["slos"][0]["burn_rates"]) == {"10s", "60s"}

    # Sustained failure: every request errors for a while.
    for step in range(10):
        clock_now[0] += 1.0
        counts[0][0] += 10
        counts[0][1] += 10
        engine.tick()
    report = engine.evaluate()
    assert report["status"] == "page"
    assert all(burn >= 10.0 for burn in report["slos"][0]["burn_rates"].values())

    # Recovery: the short window clears first, so the multi-window AND
    # de-escalates from page.
    for step in range(15):
        clock_now[0] += 1.0
        counts[0][0] += 10
        engine.tick()
    report = engine.evaluate()
    assert report["slos"][0]["burn_rates"]["10s"] == 0.0
    assert report["status"] != "page"


def test_worst_status_ranks_page_over_warn_over_ok():
    assert worst_status(["ok", "warn", "page"]) == "page"
    assert worst_status(["ok", "warn"]) == "warn"
    assert worst_status([]) == "ok"


def test_histogram_count_le_never_overcounts():
    hist = Histogram(bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.record(value)
    assert hist.count_le(1.0) == 1
    assert hist.count_le(10.0) == 2
    assert hist.count_le(9.0) == 1  # 5.0's bucket edge is 10 > 9: excluded
    assert hist.count_le(1000.0) == 3  # the overflow bucket never counts
    assert hist.count_le(0.0) == 0


def test_deliberately_violated_slo_pages_on_the_server(path_db):
    service = QueryService(path_db, slos=["query_p99_ms<=0.000001"])
    for i in range(5):
        service.handle(
            {"id": i + 1, "op": "query", "sql": PATH_SQL.format(k=2), "fetch": 2}
        )
    report = service.slo()
    assert report["status"] == "page"
    assert report["slos"][0]["bad"] == report["slos"][0]["total"] > 0
