"""Tests for the worst-case-optimal engines: Leapfrog Triejoin and
Generic-Join, including the §3 efficiency claims."""

import itertools

import pytest
from hypothesis import given, settings

from repro.data.database import Database
from repro.data.generators import triangle_worstcase_database
from repro.data.relation import Relation
from repro.joins.base import multiset
from repro.joins.binary_plan import evaluate_left_deep
from repro.joins.generic_join import boolean as gj_boolean
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import boolean as lftj_boolean
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import Atom, ConjunctiveQuery, cycle_query, path_query, triangle_query
from repro.util.counters import Counters

from conftest import graph_db_strategy, path_db_strategy


@pytest.mark.parametrize("engine", [generic_join, leapfrog_join])
@settings(max_examples=30, deadline=None)
@given(db_and_length=path_db_strategy())
def test_wco_matches_naive_on_paths(engine, db_and_length):
    db, length = db_and_length
    q = path_query(length)
    assert multiset(engine(db, q)) == multiset(naive_join(db, q))


@pytest.mark.parametrize("engine", [generic_join, leapfrog_join])
@settings(max_examples=25, deadline=None)
@given(db=graph_db_strategy())
def test_wco_matches_on_triangles_and_cycles(engine, db):
    for q in (triangle_query(("E", "E", "E")), cycle_query(4)):
        expected = multiset(naive_join(db, q, max_combinations=10**7))
        assert multiset(engine(db, q)) == expected


def test_engines_agree_on_every_variable_order():
    db = triangle_worstcase_database(10)
    q = triangle_query()
    expected = multiset(naive_join(db, q))
    for order in itertools.permutations(q.variables):
        assert multiset(generic_join(db, q, var_order=order)) == expected
        assert multiset(leapfrog_join(db, q, var_order=order)) == expected


def test_invalid_variable_order_rejected():
    db = triangle_worstcase_database(6)
    with pytest.raises(ValueError):
        generic_join(db, triangle_query(), var_order=("A", "B"))
    with pytest.raises(ValueError):
        leapfrog_join(db, triangle_query(), var_order=("A", "B"))


def test_bag_semantics_duplicate_inputs():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1), (0, 1)], [0.1, 0.2]),
            Relation("R2", ("A2", "A3"), [(1, 2)], [1.0]),
        ]
    )
    q = path_query(2)
    for engine in (generic_join, leapfrog_join):
        out = engine(db, q)
        assert sorted(round(w, 6) for w in out.weights) == [1.1, 1.2]


def test_weight_combiner_max():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)], [0.9]),
            Relation("R2", ("A2", "A3"), [(1, 2)], [0.3]),
        ]
    )
    for engine in (generic_join, leapfrog_join):
        assert engine(db, path_query(2), combine=max).weights == [0.9]


def test_repeated_variable_atoms():
    db = Database(
        [Relation("E", ("x", "y"), [(1, 1), (1, 2), (2, 2)], [0.1, 0.2, 0.3])]
    )
    q = ConjunctiveQuery([Atom("E", ("a", "a")), Atom("E", ("a", "b"))])
    expected = multiset(naive_join(db, q))
    for engine in (generic_join, leapfrog_join):
        assert multiset(engine(db, q)) == expected


def test_boolean_early_exit_agrees():
    db = triangle_worstcase_database(10)
    assert gj_boolean(db, triangle_query()) is True
    assert lftj_boolean(db, triangle_query()) is True
    empty = Database(
        [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(3, 4)]),
            Relation("T", ("C", "A"), [(4, 1)]),
        ]
    )
    assert gj_boolean(empty, triangle_query()) is False
    assert lftj_boolean(empty, triangle_query()) is False


def test_wco_beats_binary_plan_on_worstcase_triangle():
    """E1's shape: WCO work is o(binary-plan work) on the hard instance."""
    n = 60
    db = triangle_worstcase_database(n)
    q = triangle_query()
    c_bin, c_gj = Counters(), Counters()
    evaluate_left_deep(db, q, order=[0, 1, 2], counters=c_bin)
    generic_join(db, q, counters=c_gj)
    # Binary plans materialize ~ (n/2)² intermediates; Generic-Join's probe
    # count stays near-linear here.
    assert c_bin.intermediate_tuples > 5 * c_gj.total_work() / 10
    assert c_gj.hash_probes + c_gj.tuples_read < c_bin.intermediate_tuples


def test_wco_scaling_subquadratic_on_worstcase():
    work = {}
    for n in (40, 80):
        db = triangle_worstcase_database(n)
        c = Counters()
        generic_join(db, triangle_query(), counters=c)
        work[n] = c.total_work()
    # Doubling n must far less than quadruple WCO work on this instance.
    assert work[80] < 3 * work[40]
