"""Tests for HRJN / HRJN* rank joins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.generators import rank_join_database
from repro.data.relation import Relation
from repro.joins.base import atom_relation
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import path_query
from repro.topk.rank_join import HRJN, RelationScan, rank_join_stream, rank_join_topk
from repro.util.counters import Counters

from conftest import multiset_of, path_db_strategy, ranked_weights


def test_relation_scan_pulls_in_weight_order():
    rel = Relation("R", ("a",), [(1,), (2,), (3,)], [0.5, 0.1, 0.9])
    scan = RelationScan(rel)
    pulls = [scan.pull() for _ in range(4)]
    assert pulls[0] == ((2,), 0.1)
    assert pulls[1] == ((1,), 0.5)
    assert pulls[2] == ((3,), 0.9)
    assert pulls[3] is None
    assert scan.depth == 3


def test_hrjn_rejects_unknown_strategy():
    rel = Relation("R", ("a",), [(1,)])
    with pytest.raises(ValueError):
        HRJN(RelationScan(rel), RelationScan(rel), strategy="bogus")


@settings(max_examples=30, deadline=None)
@given(path_db_strategy(max_length=2))
def test_full_enumeration_matches_sorted_join(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    got = ranked_weights(rank_join_stream(db, q))
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(path_db_strategy(max_length=3), st.integers(min_value=1, max_value=5))
def test_topk_is_prefix_of_full_ranking(db_and_length, k):
    db, length = db_and_length
    q = path_query(length)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    got = ranked_weights(rank_join_topk(db, q, k=k))
    assert got == expected[: min(k, len(expected))]


@settings(max_examples=20, deadline=None)
@given(path_db_strategy(max_length=2))
def test_corner_strategy_same_results(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    alt = ranked_weights(rank_join_stream(db, q, strategy="alternate"))
    cor = ranked_weights(rank_join_stream(db, q, strategy="corner"))
    assert alt == cor


def test_output_is_nondecreasing():
    db = rank_join_database(200, 20, seed=1)
    weights = ranked_weights(rank_join_stream(db, path_query(2)))
    assert weights == sorted(weights)


def test_three_way_composition():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(i, i % 2) for i in range(6)],
                     [0.1 * i for i in range(6)]),
            Relation("R2", ("A2", "A3"), [(i % 2, i) for i in range(6)],
                     [0.05 * i for i in range(6)]),
            Relation("R3", ("A3", "A4"), [(i, i + 10) for i in range(6)],
                     [0.02 * i for i in range(6)]),
        ]
    )
    q = path_query(3)
    expected = sorted(round(w, 9) for w in naive_join(db, q).weights)
    assert ranked_weights(rank_join_stream(db, q)) == expected


def test_rows_match_naive_multiset():
    db = rank_join_database(50, 5, seed=2, num_results=6)
    q = path_query(2)
    got = list(rank_join_stream(db, q))
    assert multiset_of(got) == multiset_of(
        zip(naive_join(db, q).rows, naive_join(db, q).weights)
    )


def test_depth_scales_with_winner_depth():
    """E6's shape: accesses grow with the depth of the top result."""
    accesses = {}
    for depth in (10, 200):
        db = rank_join_database(400, depth, seed=3)
        c = Counters()
        rank_join_topk(db, path_query(2), k=1, counters=c)
        accesses[depth] = c.sorted_accesses
    assert accesses[200] > 2 * accesses[10]


def test_k_validation():
    db = rank_join_database(20, 2, seed=0)
    with pytest.raises(ValueError):
        rank_join_topk(db, path_query(2), k=0)


def test_empty_input_stream_terminates():
    db = Database(
        [
            Relation("R1", ("A1", "A2")),
            Relation("R2", ("A2", "A3"), [(1, 2)]),
        ]
    )
    assert rank_join_topk(db, path_query(2), k=3) == []
