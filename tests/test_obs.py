"""The observability layer: tracing, metrics registry, delay profiles,
EXPLAIN ANALYZE, and the server ops that expose them.

Three properties anchor the suite (the issue's acceptance criteria):

- the *overhead guard* — with tracing disabled, the instrumented
  executor may cost at most a few percent over the raw engine stream on
  a seeded PART enumeration;
- *trace-tree well-formedness* — every buffered span is closed and
  every parent precedes its children;
- *registry thread-safety* — concurrent ``inc``/``observe``/export from
  many threads loses no updates and never corrupts an export.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.sql
from repro.anyk.api import rank_enumerate
from repro.data.generators import path_database, random_graph_database
from repro.engine.executor import execute, filtered_database, negated_database
from repro.engine.planner import plan_compiled
from repro.obs import (
    DELAY_BOUNDS,
    TTK_CHECKPOINTS,
    DelayProfile,
    MetricsRegistry,
    NOOP_SPAN,
    Tracer,
    render_trace_tree,
    run_analyze,
    tracer,
)
from repro.server import QueryService
from repro.server.protocol import ProtocolError, validate_request
from repro.util.histogram import Histogram

PATH_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def path_db():
    return path_database(length=3, size=120, domain=18, seed=23)


@pytest.fixture()
def global_tracer_restored():
    """Snapshot and restore the process tracer's enabled flag.

    ``QueryService`` enables the module-level tracer on construction, so
    tests that measure the *disabled* configuration (or assert on no-op
    behavior) must pin the flag themselves.
    """
    prev = tracer.enabled
    yield tracer
    tracer.enabled = prev


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_disabled_tracer_hands_out_the_shared_noop_span():
    t = Tracer(enabled=False)
    assert t.start_trace("query") is NOOP_SPAN
    assert t.span("parse") is NOOP_SPAN
    assert len(t) == 0
    assert t.info()["started"] == 0
    # The no-op span supports the whole Span surface.
    with t.span("anything") as span:
        span.set(a=1).finish()


def test_span_outside_any_trace_is_noop():
    t = Tracer(enabled=True)
    assert t.span("orphan") is NOOP_SPAN
    assert len(t) == 0


def test_trace_tree_well_formed():
    """Every span closed, parents precede children, offsets consistent."""
    t = Tracer(enabled=True)
    with t.start_trace("query", request_id=41) as root:
        with t.span("parse"):
            pass
        with t.span("plan", engine="part:lazy"):
            with t.span("cost"):
                pass
        assert t.current_trace_id() == root.trace_id

    trace = t.get(root.trace_id)
    assert trace is not None
    assert trace["op"] == "query"
    assert trace["request_id"] == 41
    spans = trace["spans"]
    assert [s["name"] for s in spans] == ["query", "parse", "plan", "cost"]

    seen_ids = set()
    for index, span in enumerate(spans):
        # Closed: the duration stamp is what Span.finish writes.
        assert span["duration_ms"] is not None, span
        assert span["duration_ms"] >= 0.0
        assert span["start_ms"] >= 0.0
        if index == 0:
            assert span["parent_id"] is None
        else:
            # Parents precede children in the span list.
            assert span["parent_id"] in seen_ids, span
        seen_ids.add(span["span_id"])
    # Child offsets sit inside the root's window.
    root_span = spans[0]
    for span in spans[1:]:
        assert span["start_ms"] <= root_span["duration_ms"] + 1.0

    # The same tree is reachable by protocol request id.
    assert t.find_by_request(41)["trace_id"] == root.trace_id

    rendered = render_trace_tree(trace)
    for name in ("query", "parse", "plan", "cost"):
        assert name in rendered
    assert "engine=part:lazy" in rendered


def test_trace_attributes_and_errors_recorded():
    t = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with t.start_trace("query") as root:
            with t.span("execute") as span:
                span.set(rows=7)
                raise ValueError("boom")
    trace = t.get(root.trace_id)
    execute_span = trace["spans"][1]
    assert execute_span["attrs"] == {"rows": 7}
    assert "ValueError: boom" in execute_span["error"]
    # The error still closed both spans.
    assert all(s["duration_ms"] is not None for s in trace["spans"])
    assert "!!" in render_trace_tree(trace)


def test_trace_ring_is_bounded():
    t = Tracer(capacity=4, enabled=True)
    ids = []
    for i in range(10):
        with t.start_trace("op", request_id=i) as root:
            pass
        ids.append(root.trace_id)
    assert len(t) == 4
    info = t.info()
    assert info["started"] == 10
    assert info["dropped"] == 6
    # Only the newest four survive, newest first via recent().
    recent = [trace["trace_id"] for trace in t.recent(10)]
    assert recent == list(reversed(ids[-4:]))
    assert t.get(ids[0]) is None
    # The request-id index is pruned alongside the ring.
    assert t.find_by_request(0) is None
    assert t.find_by_request(9) is not None


def test_nested_traces_per_thread_are_independent():
    """contextvars parenting: concurrent threads never cross-link spans."""
    t = Tracer(enabled=True)
    errors: list[str] = []

    def worker(tag: str) -> None:
        for _ in range(50):
            with t.start_trace("op", request_id=tag) as root:
                with t.span("inner"):
                    if t.current_trace_id() != root.trace_id:
                        errors.append(tag)

    threads = [
        threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Every buffered trace is a self-consistent two-span tree.
    for trace in t.recent(t.capacity):
        spans = trace["spans"]
        assert len(spans) == 2
        assert spans[1]["parent_id"] == spans[0]["span_id"]


# ----------------------------------------------------------------------
# The metrics registry
# ----------------------------------------------------------------------
def test_registry_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    queries = registry.counter("repro_queries_total", "queries handled")
    queries.inc()
    queries.inc(2)
    with pytest.raises(ValueError):
        queries.inc(-1)

    open_cursors = registry.gauge("repro_cursors_open")
    open_cursors.set(3)
    open_cursors.dec()

    latency = registry.histogram(
        "repro_op_latency_ms", "per-op latency", labelnames=("op",)
    )
    latency.labels(op="query").observe(5.0)
    latency.labels(op="query").observe(15.0)
    latency.labels(op="fetch").observe(1.0)
    with pytest.raises(ValueError):
        latency.labels(wrong="query")
    with pytest.raises(ValueError):
        latency.observe(1.0)  # labeled family needs .labels(...)

    # Re-registration with the same shape is idempotent ...
    assert registry.counter("repro_queries_total") is queries
    # ... and a conflicting shape is an error, not silent aliasing.
    with pytest.raises(ValueError):
        registry.gauge("repro_queries_total")
    with pytest.raises(ValueError):
        registry.counter("repro_queries_total", labelnames=("op",))

    text = registry.render_prometheus()
    assert "# TYPE repro_queries_total counter" in text
    assert "repro_queries_total 3" in text
    assert "repro_cursors_open 2" in text
    assert "# TYPE repro_op_latency_ms histogram" in text
    assert 'repro_op_latency_ms_count{op="query"} 2' in text
    assert 'repro_op_latency_ms_sum{op="query"} 20.0' in text

    data = registry.to_json()
    assert data["repro_queries_total"]["samples"][0]["value"] == 3
    by_label = {
        sample["labels"]["op"]: sample
        for sample in data["repro_op_latency_ms"]["samples"]
    }
    assert by_label["query"]["count"] == 2
    assert by_label["fetch"]["count"] == 1


def test_prometheus_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    hist = registry.histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.observe(value)
    text = registry.render_prometheus()
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("h_bucket")
    ]
    assert buckets == sorted(buckets), "bucket counts must be cumulative"
    assert buckets[-1] == 4  # the +Inf bucket equals the total count
    assert "h_count 4" in text


def test_registry_collectors_export_external_state():
    registry = MetricsRegistry()
    registry.add_collector(
        lambda: [("external_gauge", {"kind": "a"}, 7), ("external_gauge", {}, 1.5)]
    )
    registry.add_collector(lambda: 1 / 0)  # broken collectors are skipped
    text = registry.render_prometheus()
    assert "# TYPE external_gauge gauge" in text
    assert 'external_gauge{kind="a"} 7' in text
    data = registry.to_json()
    assert len(data["external_gauge"]["samples"]) == 2


def test_registry_thread_safety_under_concurrent_bump_observe_export():
    """N writers + concurrent exporters: exact totals, no exceptions."""
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", labelnames=("op",))
    hist = registry.histogram("latency_ms", bounds=(1.0, 10.0, 100.0))
    gauge = registry.gauge("level")
    stop = threading.Event()
    failures: list[BaseException] = []
    WRITERS, ROUNDS = 8, 500

    def writer(op: str) -> None:
        try:
            for i in range(ROUNDS):
                counter.labels(op=op).inc()
                hist.observe(float(i % 20))
                gauge.set(i)
        except BaseException as exc:  # noqa: BLE001 - report to main thread
            failures.append(exc)

    def exporter() -> None:
        try:
            while not stop.is_set():
                text = registry.render_prometheus()
                assert "# TYPE ops_total counter" in text
                data = registry.to_json()
                # Partial-but-consistent: never more than the final total.
                assert data["latency_ms"]["samples"][0]["count"] <= WRITERS * ROUNDS
        except BaseException as exc:  # noqa: BLE001
            failures.append(exc)

    writers = [
        threading.Thread(target=writer, args=(f"op{i % 3}",))
        for i in range(WRITERS)
    ]
    exporters = [threading.Thread(target=exporter) for _ in range(2)]
    for thread in exporters + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in exporters:
        thread.join()

    assert not failures, failures
    data = registry.to_json()
    total = sum(
        sample["value"] for sample in data["ops_total"]["samples"]
    )
    assert total == WRITERS * ROUNDS
    assert data["latency_ms"]["samples"][0]["count"] == WRITERS * ROUNDS


# ----------------------------------------------------------------------
# The anytime-delay profiler
# ----------------------------------------------------------------------
def test_delay_profile_records_ttf_ttk_and_per_result_delay():
    profile = DelayProfile(engine="part:lazy")
    drained = list(profile.wrap(iter([(("a",), 1.0)] * 25)))
    assert len(drained) == 25
    assert profile.results == 25
    assert profile.streams == 1
    assert profile.delay.count == 25
    assert profile.ttf.count == 1
    # Checkpoints crossed: 1 and 10 (25 < 100).
    assert sorted(profile.ttk) == [1, 10]
    assert all(k in TTK_CHECKPOINTS for k in profile.ttk)
    summary = profile.summary()
    assert summary["engine"] == "part:lazy"
    assert summary["busy_ms"] >= 0.0
    assert summary["delay_ms"]["count"] == 25
    assert set(summary["ttk_ms"]) == {"1", "10"}
    # Wall time to the 10th result is at least the wall time to the 1st.
    assert (
        summary["ttk_ms"]["10"]["max_ms"] >= summary["ttf_ms"]["max_ms"]
    ) or summary["ttf_ms"]["max_ms"] == pytest.approx(0.0, abs=1e-3)


def test_delay_profile_pausing_does_not_pollute_delay():
    """The busy clock charges next() time only, not idle gaps."""
    profile = DelayProfile()
    stream = profile.wrap(iter([((1,), 0.1), ((2,), 0.2)]))
    next(stream)
    time.sleep(0.05)  # a paused cursor, one page fetched much later
    next(stream)
    summary = profile.summary()
    # 50 ms of idling must not appear as a 50 ms inter-result delay.
    assert summary["delay_ms"]["max_ms"] < 50.0
    # But TT(k) wall time does include it — that is what a user waits.


def test_delay_profile_snapshot_merge_roundtrip():
    source = DelayProfile(engine="rec")
    list(source.wrap(iter([((i,), float(i)) for i in range(15)])))
    snap = source.snapshot()
    # Snapshots survive JSON (the worker queue frame / stats op contract).
    snap = json.loads(json.dumps(snap))

    folded = DelayProfile(engine="rec")
    folded.merge_snapshot(snap)
    assert folded.results == source.results
    assert folded.streams == source.streams
    assert folded.busy_ms == pytest.approx(source.busy_ms)
    assert folded.delay.count == source.delay.count
    assert sorted(folded.ttk) == sorted(source.ttk)

    # merge() of live profiles adds up exactly, too.
    merged = DelayProfile(engine="rec")
    merged.merge(source).merge(folded)
    assert merged.results == 2 * source.results
    assert merged.streams == 2
    assert merged.delay.count == 2 * source.delay.count


def test_delay_bounds_open_below_default_latency_bounds():
    # Sub-millisecond per-result delays need resolution the op-latency
    # histogram does not: the delay bounds must reach 100 ns territory.
    assert DELAY_BOUNDS[0] <= 0.0001


def test_execute_with_profile_counts_every_emitted_row(path_db):
    sql = PATH_SQL.format(k=60)
    compiled = repro.sql.analyze(path_db, sql)
    plan = plan_compiled(path_db, compiled, engine="part:lazy")
    profile = DelayProfile()
    rows = sum(1 for _ in execute(path_db, compiled, plan, profile=profile))
    assert rows > 0
    assert profile.results == rows
    assert profile.engine == "part:lazy"  # filled from the plan


# ----------------------------------------------------------------------
# The overhead guard
# ----------------------------------------------------------------------
def test_tracing_disabled_overhead_on_part_enumeration(
    path_db, global_tracer_restored
):
    """Instrumented executor with tracing off: within a few percent of
    the raw engine stream on a seeded PART enumeration.

    The per-result hot path carries *no* instrumentation — profiling is
    opt-in per call, tracing is per-request — so the only added cost is
    one disabled-tracer check per execute().  The baseline below is the
    pre-instrumentation executor body, inlined.
    """
    tracer.disable()
    sql = PATH_SQL.format(k=5000)
    compiled = repro.sql.analyze(path_db, sql)
    plan = plan_compiled(path_db, compiled, engine="part:lazy")

    def baseline() -> int:
        # Exactly the executor's serial path, minus the obs seams.
        working, cq = plan.working_db, plan.working_cq
        if working is None or cq is None:
            working, cq = filtered_database(path_db, compiled)
        elif compiled.descending:
            working = negated_database(
                working, only={a.relation for a in cq.atoms}
            )
        stream = rank_enumerate(
            working,
            cq,
            ranking=compiled.ranking,
            method=plan.engine,
            k=compiled.k,
        )
        positions = compiled.output_positions
        identity = positions == tuple(range(len(cq.variables)))
        n = 0
        for row, weight in stream:
            _ = row if identity else tuple(row[p] for p in positions)
            n += 1
        return n

    def instrumented() -> int:
        return sum(1 for _ in execute(path_db, compiled, plan))

    assert baseline() == instrumented() > 0  # same work, then time it

    def best_of(fn, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    base_s = best_of(baseline)
    instr_s = best_of(instrumented)
    # <= 5% relative, with a 2 ms absolute floor so a sub-millisecond
    # scheduler hiccup cannot fail the build on a fast machine.
    assert instr_s <= base_s * 1.05 + 2e-3, (
        f"disabled-tracing overhead too high: baseline {base_s * 1e3:.2f} ms, "
        f"instrumented {instr_s * 1e3:.2f} ms"
    )


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
def test_run_analyze_report_structure(path_db):
    report = run_analyze(
        path_db, PATH_SQL.format(k=25), engine="part:lazy"
    )
    assert report["engine"] == "part:lazy"
    assert report["rows"] == 25
    for stage in ("parse", "analyze", "plan", "execute", "total"):
        assert report["stages_ms"][stage] >= 0.0
    assert report["cache"] == {"plan_cache": "bypass"}

    operators = report["operators"]
    scans = [op for op in operators if op["operator"].startswith("scan")]
    assert [s["relation"] for s in scans] == ["R1", "R2", "R3"]
    for scan in scans:
        assert 0 < scan["rows"] <= scan["base_rows"]
    tail = operators[-1]
    assert tail["operator"] == "enumerate[part:lazy]"
    assert tail["rows"] == 25

    profile = report["profile"]
    assert profile["results"] == 25
    assert profile["delay_ms"]["count"] == 25
    assert "1" in profile["ttk_ms"] and "10" in profile["ttk_ms"]
    assert report["counters"]  # the RAM-model counters rode along


def test_run_analyze_applies_filters_and_strips_prefix(path_db):
    report = run_analyze(
        path_db,
        "EXPLAIN ANALYZE SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
        "WHERE R1.A1 < 9 ORDER BY weight LIMIT 10",
    )
    filtered = [
        op for op in report["operators"] if op["operator"] == "scan+filter"
    ]
    assert len(filtered) == 1
    assert filtered[0]["relation"] == "R1"
    assert filtered[0]["rows"] < filtered[0]["base_rows"]


def test_explain_analyze_rendering_and_sql_dispatch(path_db):
    sql = PATH_SQL.format(k=12)
    plain = repro.sql.explain(path_db, f"EXPLAIN {sql}")
    assert "timing:" not in plain  # plain EXPLAIN never executes

    analyzed = repro.sql.explain(path_db, f"EXPLAIN ANALYZE {sql}")
    assert plain.splitlines()[0] in analyzed  # same plan header
    assert "timing:" in analyzed
    assert "enumerate[" in analyzed
    assert "anytime:" in analyzed
    assert "tt(10)=" in analyzed
    # Direct entry point agrees with the EXPLAIN ANALYZE dispatch.
    assert "timing:" in repro.sql.explain_analyze(path_db, sql)


def test_explain_analyze_rejects_mutations(path_db):
    with pytest.raises(repro.sql.SqlError):
        run_analyze(path_db, "EXPLAIN ANALYZE DELETE FROM R1 WHERE A1 = 1")


# ----------------------------------------------------------------------
# The server surface: metrics / trace ops, trace_id, results_emitted
# ----------------------------------------------------------------------
def test_service_metrics_op_prometheus_and_json(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=8)}
    )
    assert response["ok"], response

    metrics = service.handle({"id": 2, "op": "metrics"})
    assert metrics["ok"]
    assert metrics["content_type"].startswith("text/plain")
    text = metrics["metrics"]
    assert "# TYPE repro_op_latency_ms histogram" in text
    assert 'repro_op_latency_ms_count{op="query"} 1' in text
    assert "repro_queries_total 1" in text
    assert "repro_cursors_open" in text
    assert "repro_uptime_seconds" in text

    as_json = service.handle({"id": 3, "op": "metrics", "format": "json"})
    assert as_json["ok"]
    assert as_json["metrics"]["repro_op_latency_ms"]["type"] == "histogram"
    # The registry JSON round-trips through the wire encoding.
    json.dumps(as_json["metrics"])


def test_service_echoes_trace_id_and_serves_the_trace(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {"id": 7, "op": "query", "sql": PATH_SQL.format(k=5)}
    )
    assert response["ok"] and response["trace_id"]

    looked_up = service.handle(
        {"id": 8, "op": "trace", "trace": response["trace_id"]}
    )
    assert looked_up["ok"]
    spans = looked_up["trace"]["spans"]
    names = [span["name"] for span in spans]
    assert names[0] == "query"
    assert "parse" in names and "plan" in names and "cache_lookup" in names
    assert all(span["duration_ms"] is not None for span in spans)
    # The rendering shows the looked-up trace (the response's own
    # trace_id belongs to the trace op's request, a different trace).
    assert response["trace_id"] in looked_up["rendered"]

    by_request = service.handle({"id": 9, "op": "trace", "request": 7})
    assert by_request["trace"]["trace_id"] == response["trace_id"]

    recent = service.handle({"id": 10, "op": "trace"})
    assert recent["ok"] and recent["recent"]
    assert recent["tracer"]["buffered"] >= 1

    missing = service.handle({"id": 11, "op": "trace", "trace": "t-nope"})
    assert not missing["ok"]
    assert missing["error"]["code"] == "unknown_trace"
    assert "t-nope" in missing["error"]["message"]

    by_bad_request = service.handle({"id": 12, "op": "trace", "request": 999})
    assert not by_bad_request["ok"]
    assert by_bad_request["error"]["code"] == "unknown_trace"


def test_page_fetch_spans_carry_engine_attribution(path_db):
    service = QueryService(path_db)
    opened = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=40), "fetch": 5}
    )
    fetched = service.handle(
        {"id": 2, "op": "fetch", "cursor": opened["cursor"], "n": 5}
    )
    assert fetched["ok"]
    trace = service.handle({"id": 3, "op": "trace", "trace": fetched["trace_id"]})
    pages = [
        span
        for span in trace["trace"]["spans"]
        if span["name"] == "page_fetch"
    ]
    assert pages and pages[0]["attrs"]["rows"] == 5
    assert pages[0]["attrs"]["engine"] == opened["engine"]


def test_results_emitted_is_cumulative(path_db):
    service = QueryService(path_db)
    opened = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=30), "fetch": 4}
    )
    assert opened["results_emitted"] == len(opened["rows"]) == 4
    total = opened["results_emitted"]
    cursor = opened["cursor"]
    page = service.handle({"id": 2, "op": "fetch", "cursor": cursor, "n": 6})
    total += len(page["rows"])
    assert page["results_emitted"] == total == 10
    closed = service.handle({"id": 3, "op": "close", "cursor": cursor})
    assert closed["results_emitted"] == total


def test_stats_percentiles_and_delay_profiles(path_db):
    service = QueryService(path_db)
    for i in range(3):
        response = service.handle(
            {"id": i, "op": "query", "sql": PATH_SQL.format(k=20), "fetch": 100}
        )
        assert response["ok"] and response["done"]  # drained → retired

    stats = service.handle({"id": 99, "op": "stats"})
    latency = stats["op_latency_ms"]["query"]
    # Back-compat keys plus the promoted histogram percentiles.
    assert latency["count"] == 3
    for key in ("mean", "max", "p50_ms", "p95_ms", "p99_ms"):
        assert latency[key] >= 0.0
    assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max"] * 1.001

    profiles = stats["delay_profiles"]
    assert len(profiles) == 1
    (engine, profile), = profiles.items()
    assert profile["streams"] == 3
    assert profile["results"] == 60
    assert profile["ttf_ms"]["count"] == 3
    assert stats["tracer"]["enabled"] is True


def test_service_explain_analyze_reports_plan_cache(path_db):
    service = QueryService(path_db)
    sql = PATH_SQL.format(k=10)
    first = service.handle({"id": 1, "op": "explain", "sql": sql, "analyze": True})
    assert first["ok"]
    assert first["analyze"]["cache"]["plan_cache"] == "miss"
    assert first["analyze"]["rows"] == 10
    assert "timing:" in first["explain"]

    second = service.handle({"id": 2, "op": "explain", "sql": sql, "analyze": True})
    assert second["analyze"]["cache"]["plan_cache"] == "hit"
    # The analyze runs fold into the service-wide delay profiles too.
    stats = service.handle({"id": 3, "op": "stats"})
    assert stats["delay_profiles"][first["engine"]]["streams"] == 2

    plain = service.handle({"id": 4, "op": "explain", "sql": sql})
    assert plain["ok"] and "timing:" not in plain["explain"]


def test_protocol_validates_new_ops():
    assert validate_request({"op": "metrics"}) == "metrics"
    assert validate_request({"op": "metrics", "format": "json"}) == "metrics"
    with pytest.raises(ProtocolError):
        validate_request({"op": "metrics", "format": "xml"})
    assert validate_request({"op": "trace", "trace": "t1-2"}) == "trace"
    with pytest.raises(ProtocolError):
        validate_request({"op": "trace", "trace": 5})
    assert (
        validate_request({"op": "explain", "sql": "x", "analyze": True})
        == "explain"
    )
    with pytest.raises(ProtocolError):
        validate_request({"op": "explain", "sql": "x", "analyze": "yes"})


def test_workload_histogram_shim_is_gone():
    """The deprecated repro.workload.histogram shim has been removed;
    the canonical import path is repro.util.histogram."""
    import importlib

    import repro.util.histogram as util_histogram

    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.workload.histogram")
    assert isinstance(util_histogram.Histogram(), Histogram)


def test_repro_obs_cli_against_background_server(path_db, capsys):
    """Every repro-obs view against a live in-process server."""
    from repro.obs.cli import main as obs_main
    from repro.server import Client, serve_background

    server, port = serve_background(path_db)
    try:
        with Client(port=port) as client:
            cursor = client.execute(PATH_SQL.format(k=6), batch=6)
            cursor.fetchall()
            trace_id = cursor.trace_id
        args = ["--port", str(port)]

        assert obs_main(args) == 0  # the default one-screen summary
        summary = capsys.readouterr().out
        assert "queries=1" in summary and "op latency (ms):" in summary

        assert obs_main(args + ["--stats", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["queries"] == 1

        assert obs_main(args + ["--metrics"]) == 0
        assert "# TYPE repro_op_latency_ms histogram" in capsys.readouterr().out
        assert obs_main(args + ["--metrics", "--json"]) == 0
        assert "repro_queries_total" in json.loads(capsys.readouterr().out)

        assert obs_main(args + ["--traces"]) == 0
        assert "tracer:" in capsys.readouterr().out
        assert obs_main(args + ["--trace", trace_id]) == 0
        assert trace_id in capsys.readouterr().out
        assert obs_main(args + ["--trace", trace_id, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["trace_id"] == trace_id

        # A server-side error renders as a message and a nonzero exit.
        assert obs_main(args + ["--trace", "t-missing"]) == 1
        assert "repro-obs:" in capsys.readouterr().out
    finally:
        server.shutdown()
        server.server_close()

    # With the server gone, connecting fails cleanly.
    assert obs_main(["--port", str(port)]) == 1
    assert "cannot reach" in capsys.readouterr().out


def test_graph_query_profiles_under_rank_join():
    """The HRJN middleware path wraps its stream like any engine."""
    db = random_graph_database(num_edges=300, num_nodes=60, seed=5)
    report = run_analyze(
        db,
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "ORDER BY weight LIMIT 15",
        engine="rank_join",
    )
    assert report["engine"] == "rank_join"
    assert report["profile"]["results"] == report["rows"] == 15


# ----------------------------------------------------------------------
# Prometheus exposition-format conformance
# ----------------------------------------------------------------------
_METRIC_NAME_RE = __import__("re").compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = __import__("re").compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$"
)
_LABEL_NAME_RE = __import__("re").compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_label_set(text: str) -> dict:
    """Strict walk of a ``name="value",...`` label set, honoring the
    exposition format's exactly-three escapes (backslash, quote, \\n)."""
    labels: dict[str, str] = {}
    i, n = 0, len(text)
    while i < n:
        match = _LABEL_NAME_RE.match(text, i)
        assert match, f"bad label name at {text[i:]!r}"
        name = match.group(0)
        i = match.end()
        assert text[i] == "=", text[i:]
        assert text[i + 1] == '"', text[i:]
        i += 2
        value = []
        while True:
            assert i < n, "unterminated label value"
            ch = text[i]
            if ch == "\\":
                escaped = text[i + 1]
                assert escaped in _UNESCAPE, f"bad escape \\{escaped!r}"
                value.append(_UNESCAPE[escaped])
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                assert ch != "\n", "raw newline inside a label value"
                value.append(ch)
                i += 1
        labels[name] = "".join(value)
        if i < n:
            assert text[i] == ",", f"expected ',' at {text[i:]!r}"
            i += 1
    return labels


def parse_exposition(text: str):
    """Strict line parser for the Prometheus text exposition format.

    Returns ``(types, samples)`` where ``types`` maps metric name ->
    declared type and ``samples`` is ``[(name, labels, value)]``.
    Asserts the invariants scrapers rely on: every line is HELP, TYPE,
    or a sample; names are well-formed; at most one TYPE per name and
    it precedes the name's samples; every value parses as a float.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            assert len(parts) == 4 and _METRIC_NAME_RE.match(parts[2]), line
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, line
            name, kind = parts[2], parts[3]
            assert _METRIC_NAME_RE.match(name), line
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
        else:
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            match = _SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, label_text, value = match.groups()
            labels = _parse_label_set(label_text) if label_text else {}
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                stripped = name[: -len(suffix)] if name.endswith(suffix) else None
                if stripped and stripped in types:
                    base = stripped
            assert base in types, f"sample before TYPE: {name}"
            samples.append((name, labels, float(value)))
    return types, samples


def test_prometheus_exposition_conformance(path_db):
    """The full live exposition of a served workload parses under the
    strict grammar, and histogram series satisfy the cumulative-bucket
    contract (+Inf bucket == _count, counts non-decreasing in le)."""
    service = QueryService(path_db, max_mem_mb=64.0)
    opened = service.query(PATH_SQL.format(k=40), fetch=40)
    if opened["cursor"] is not None:
        service.close(opened["cursor"])
    service.handle({"id": 1, "op": "query", "sql": "SELECT nope"})  # an error
    text = service.metrics()["metrics"]
    types, samples = parse_exposition(text)
    service.shutdown()

    assert types["repro_op_latency_ms"] == "histogram"
    assert types["repro_mem_peak_bytes"] == "histogram"
    assert types["repro_plan_qerror"] == "histogram"
    assert types["repro_errors_total"] == "counter"

    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        sums: dict[tuple, float] = {}
        for name, labels, value in samples:
            series = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if name == f"{family}_bucket":
                buckets.setdefault(series, []).append(
                    (float(labels["le"]), value)
                )
            elif name == f"{family}_count":
                counts[series] = value
            elif name == f"{family}_sum":
                sums[series] = value
        for series, entries in buckets.items():
            entries.sort(key=lambda pair: pair[0])
            assert entries[-1][0] == float("inf"), series
            cumulative = [count for _, count in entries]
            assert cumulative == sorted(cumulative), (family, series)
            assert cumulative[-1] == counts[series], (family, series)
            assert series in sums, (family, series)


def test_escape_label_pins_prometheus_escaping():
    from repro.obs.registry import _escape_label

    assert _escape_label("plain") == "plain"
    assert _escape_label('say "hi"') == 'say \\"hi\\"'
    assert _escape_label("back\\slash") == "back\\\\slash"
    assert _escape_label("two\nlines") == "two\\nlines"
    # Backslashes escape first, so a pre-escaped quote stays parseable
    # instead of collapsing into a bare escape.
    assert _escape_label('\\"') == '\\\\\\"'


def test_registry_renders_hostile_label_values_parseably():
    """Label values containing quotes, backslashes, and newlines render
    to lines the strict parser recovers verbatim."""
    registry = MetricsRegistry()
    counter = registry.counter(
        "hostile_total", "hostile label values", labelnames=("sql",)
    )
    hostile = 'SELECT "x\\y"\nFROM "t"'
    counter.labels(sql=hostile).inc(3)
    counter.labels(sql="plain").inc(1)
    types, samples = parse_exposition(registry.render_prometheus())
    assert types["hostile_total"] == "counter"
    recovered = {
        labels["sql"]: value
        for name, labels, value in samples
        if name == "hostile_total"
    }
    assert recovered == {hostile: 3.0, "plain": 1.0}
