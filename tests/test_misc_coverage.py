"""Coverage for smaller code paths: boolean dispatch, cyclic internals,
batch details, J* orders, and counter plumbing."""

import pytest

from repro.anyk.batch import batch_enumerate
from repro.anyk.cyclic import enumerate_union_of_trees, rank_enumerate_ghd
from repro.anyk.part import anyk_part
from repro.anyk.ranking import SUM
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.data.generators import path_database, random_graph_database
from repro.data.relation import Relation
from repro.joins.boolean import has_any_result
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.heavylight import UnionTree, fourcycle_union_of_trees
from repro.query.cq import Atom, ConjunctiveQuery, cycle_query, path_query, triangle_query
from repro.topk.jstar import jstar_stream
from repro.util.counters import Counters

from conftest import ranked_weights


def test_boolean_dispatch_acyclic_vs_cyclic():
    db = path_database(2, 10, 3, seed=1)
    c = Counters()
    has_any_result(db, path_query(2), counters=c)
    # The acyclic route uses semijoins, not generic-join probes.
    assert c.hash_probes > 0 or c.tuples_read > 0

    graph = random_graph_database(30, 8, seed=2)
    assert has_any_result(graph, triangle_query(("E", "E", "E"))) == (
        len(generic_join(graph, triangle_query(("E", "E", "E")))) > 0
    )


def test_batch_enumerate_is_sorted_and_deterministic():
    db = path_database(2, 30, 4, seed=3)
    q = path_query(2)
    once = list(batch_enumerate(db, q))
    twice = list(batch_enumerate(db, q))
    assert once == twice
    weights = [w for _, w in once]
    assert weights == sorted(weights)


def test_batch_on_cyclic_uses_generic_join():
    db = random_graph_database(40, 9, seed=4)
    q = cycle_query(4)
    got = ranked_weights(batch_enumerate(db, q))
    assert got == sorted(round(w, 9) for w in generic_join(db, q).weights)


def test_enumerate_union_of_trees_merges_in_order():
    db = random_graph_database(60, 10, seed=5)
    q = cycle_query(4)
    trees = fourcycle_union_of_trees(db, q)
    stream = enumerate_union_of_trees(
        trees, q.variables, SUM, lambda tdp: anyk_part(tdp, strategy="lazy")
    )
    weights = [w for _, w in stream]
    assert weights == sorted(weights)
    assert len(weights) == len(generic_join(db, q))


def test_union_tree_dataclass_defaults():
    db = Database([Relation("X", ("a",), [(1,)])])
    q = ConjunctiveQuery([Atom("X", ("a",))])
    tree = UnionTree(db, q)
    assert tree.fixed == {}
    assert tree.label == ""


def test_ghd_route_reorders_output_columns():
    db = random_graph_database(50, 9, seed=6)
    q = cycle_query(5)
    stream = rank_enumerate_ghd(
        db, q, SUM, lambda tdp: anyk_part(tdp, strategy="lazy")
    )
    rows = {row for row, _ in stream}
    assert rows == set(generic_join(db, q).rows)


def test_jstar_respects_custom_order():
    db = path_database(2, 25, 4, seed=7)
    q = path_query(2)
    default = ranked_weights(jstar_stream(db, q))
    reordered = ranked_weights(jstar_stream(db, q, order=[1, 0]))
    assert default == reordered


def test_tdp_counters_accumulate_during_enumeration():
    db = path_database(2, 20, 3, seed=8)
    c = Counters()
    tdp = TDP(db, path_query(2), counters=c)
    preprocessing = c.total_work()
    assert preprocessing > 0
    list(anyk_part(tdp, strategy="lazy"))
    assert c.total_work() > preprocessing
    assert c.output_tuples == len(generic_join(db, path_query(2)))


def test_single_atom_query_enumeration():
    db = Database(
        [Relation("R", ("a", "b"), [(1, 2), (3, 4)], [0.9, 0.1])]
    )
    q = ConjunctiveQuery([Atom("R", ("x", "y"))])
    got = list(anyk_part(TDP(db, q), strategy="eager"))
    assert [row for row, _ in got] == [(3, 4), (1, 2)]


def test_fourcycle_with_distinct_relations():
    """The heavy/light machinery also accepts four distinct relations."""
    rels = []
    graph = random_graph_database(40, 8, seed=9)["E"]
    for i, (a, b) in enumerate(
        [("x1", "x2"), ("x2", "x3"), ("x3", "x4"), ("x4", "x1")]
    ):
        clone = graph.copy(f"S{i}")
        rels.append(clone)
    db = Database(rels)
    q = ConjunctiveQuery(
        [
            Atom("S0", ("x1", "x2")),
            Atom("S1", ("x2", "x3")),
            Atom("S2", ("x3", "x4")),
            Atom("S3", ("x4", "x1")),
        ],
        name="C4distinct",
    )
    trees = fourcycle_union_of_trees(db, q)
    from collections import Counter as Multiset

    from repro.joins.yannakakis import evaluate as yk

    got = []
    for tree in trees:
        out = yk(tree.database, tree.query)
        for row, w in zip(out.rows, out.weights):
            binding = dict(zip(out.schema, row))
            binding.update(tree.fixed)
            got.append(
                (tuple(binding[v] for v in q.variables), round(w, 9))
            )
    expected = Multiset(
        (row, round(w, 9))
        for row, w in zip(*(lambda r: (r.rows, r.weights))(generic_join(db, q)))
    )
    assert Multiset(got) == expected
