"""End-to-end mutation smoke: a real ``repro-serve`` process over TCP.

What CI's "mutation smoke" job runs: boot the server subprocess, then
insert / delete / query through the wire client and check snapshot
versions, cache behavior, and clean shutdown.  Kept separate from
``test_server_cli.py`` so the two smoke jobs stay independently
selectable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.mark.slow
def test_serve_mutation_smoke():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--gen",
            "path:length=2,size=300,domain=40,seed=11",
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = process.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        from repro.server import Client, ServerError

        sql = (
            "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 "
            "ORDER BY weight LIMIT 20"
        )
        with Client(port=port) as client:
            before = client.execute(sql, batch=20).fetchall()
            assert len(before) == 20

            inserted = client.mutate(
                "INSERT INTO R1 (A1, A2, weight) VALUES (1, 2, -10.0)"
            )
            assert inserted["applied"] == "insert"
            assert inserted["version"] == 2

            # The artificially light row must now lead the ranking.
            after_insert = client.execute(sql, batch=20).fetchall()
            assert after_insert != before
            assert after_insert[0][1] <= before[0][1]

            deleted = client.mutate("DELETE FROM R1 WHERE A1 = 1 AND A2 = 2")
            assert deleted["applied"] == "delete"
            assert deleted["rows"] >= 1
            assert deleted["version"] == 3

            stats = client.stats()
            assert stats["mutations"] == 2
            assert stats["database"]["version"] == 3
            assert stats["database"]["relation_versions"]["R2"] == 0

            with pytest.raises(ServerError) as excinfo:
                client.mutate("DELETE FROM Nope")
            assert excinfo.value.code == "sql_error"

        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
