"""Tests for the database catalog."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation, SchemaError


def _rel(name, size=3):
    return Relation(name, ("a",), [(i,) for i in range(size)])


def test_add_and_lookup():
    db = Database([_rel("R")])
    assert "R" in db
    assert db["R"].name == "R"
    assert len(db) == 1


def test_duplicate_names_rejected():
    db = Database([_rel("R")])
    with pytest.raises(SchemaError):
        db.add(_rel("R"))


def test_replace_overwrites():
    db = Database([_rel("R", 3)])
    db.replace(_rel("R", 5))
    assert len(db["R"]) == 5


def test_missing_relation_error_mentions_known_names():
    db = Database([_rel("R")])
    with pytest.raises(KeyError, match="R"):
        db["S"]


def test_sizes_and_names():
    db = Database([_rel("B", 2), _rel("A", 7)])
    assert db.names() == ["A", "B"]
    assert db.max_relation_size() == 7
    assert db.total_tuples() == 9
    assert Database().max_relation_size() == 0


def test_copy_is_shallow_but_independent():
    db = Database([_rel("R")])
    clone = db.copy()
    clone["R"].add((99,))
    assert len(db["R"]) == 3
    assert len(clone["R"]) == 4


def test_iteration_yields_relations():
    db = Database([_rel("R"), _rel("S")])
    assert {rel.name for rel in db} == {"R", "S"}
