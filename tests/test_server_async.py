"""The asyncio server core: pipelining, framing negotiation, robustness.

Everything here exercises behaviour the old thread-per-connection
server could not provide (or silently got wrong): many requests in
flight on one socket, binary length-prefixed frames, the frame-size
ceiling in both framings, client-side timeouts that do not corrupt the
stream, and a graceful drain that never truncates a frame mid-write.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

import repro.sql
from repro.data.generators import random_graph_database
from repro.server import (
    Client,
    ClientTimeout,
    PipelinedClient,
    ServerError,
    serve_background,
)
from repro.server import protocol

GRAPH_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)
PARAM_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "WHERE e1.src > ? ORDER BY weight LIMIT ?"
)


@pytest.fixture(scope="module")
def graph_db():
    return random_graph_database(num_edges=400, num_nodes=70, seed=11)


@pytest.fixture()
def served(graph_db):
    server, port = serve_background(graph_db, max_cursors=16)
    yield server, port
    server.shutdown()
    server.server_close()


# ----------------------------------------------------------------------
# Hello / framing negotiation
# ----------------------------------------------------------------------
def test_hello_negotiates_binary_framing(served):
    _, port = served
    with PipelinedClient(port=port, frames="binary") as client:
        assert client.frames == "binary"
        assert client.server_info["frames"] == "binary"
        assert client.server_info["protocol"] == protocol.PROTOCOL_VERSION
        assert client.server_info["pipelining"] is True
        assert client.server_info["max_frame_bytes"] == protocol.MAX_FRAME_BYTES
        stats = client.stats()
        assert "queries" in stats


def test_hello_rejects_unknown_framing(served):
    _, port = served
    with pytest.raises(ServerError) as excinfo:
        PipelinedClient(port=port, frames="msgpack")
    assert excinfo.value.code == "bad_request"


def test_json_framing_still_default_for_plain_clients(served, graph_db):
    # A hello-less client speaks newline-delimited JSON forever.
    _, port = served
    sql = GRAPH_SQL.format(k=25)
    with Client(port=port) as client:
        rows = client.execute(sql, batch=7).fetchall()
    assert rows == list(repro.sql.query(graph_db, sql))


# ----------------------------------------------------------------------
# Pipelining
# ----------------------------------------------------------------------
def test_pipelined_queries_interleave_on_one_socket(served, graph_db):
    _, port = served
    sql = GRAPH_SQL.format(k=40)
    expected = list(repro.sql.query(graph_db, sql))
    with PipelinedClient(port=port) as client:
        # Three submissions before reading any response.
        futures = [
            client.submit("query", sql=sql, params=None, fetch=10)
            for _ in range(3)
        ]
        opened = [client.result(f) for f in futures]
        cursors = [r["cursor"] for r in opened]
        rows = [
            [tuple(pair[0]) if isinstance(pair[0], list) else pair[0]
             for pair in r["rows"]]
            for r in opened
        ]
        # Round-robin fetches across all three cursors — the
        # multi-cursor interleave the line protocol serialized away.
        done = [False, False, False]
        while not all(done):
            pending = [
                (i, client.submit("fetch", cursor=cursors[i], n=10))
                for i in range(3)
                if not done[i]
            ]
            for i, future in pending:
                page = client.result(future)
                rows[i].extend(
                    tuple(p[0]) if isinstance(p[0], list) else p[0]
                    for p in page["rows"]
                )
                done[i] = page["done"]
    want = [tuple(row) for row, _ in expected]
    for stream in rows:
        assert [tuple(r) for r in stream] == want


def test_pipelined_params_and_cursor_surface(served, graph_db):
    _, port = served
    with PipelinedClient(port=port) as client:
        bound = client.execute(PARAM_SQL, params=[10, 15]).fetchall()
        literal = client.execute(
            "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
            "WHERE e1.src > 10 ORDER BY weight LIMIT 15"
        ).fetchall()
    assert bound == literal and len(bound) == 15


def test_batch_op_packs_multiple_requests(served):
    _, port = served
    with PipelinedClient(port=port) as client:
        responses = client.batch(
            [
                {"op": "query", "sql": GRAPH_SQL.format(k=5), "fetch": 5},
                {"op": "stats"},
                {"op": "fetch", "cursor": "c999999"},
            ]
        )
    assert len(responses) == 3
    assert responses[0]["ok"] and len(responses[0]["rows"]) == 5
    assert responses[1]["ok"] and "queries" in responses[1]
    assert not responses[2]["ok"]
    assert responses[2]["error"]["code"] == "unknown_cursor"


def test_batch_refuses_nesting(served):
    # Rejected at the envelope: the whole batch bounces, nothing runs.
    _, port = served
    with PipelinedClient(port=port) as client:
        with pytest.raises(ServerError) as excinfo:
            client.batch([{"op": "batch", "requests": []}])
    assert excinfo.value.code == "bad_request"


# ----------------------------------------------------------------------
# Frame-size ceiling — both framings
# ----------------------------------------------------------------------
@pytest.fixture()
def small_frames(graph_db):
    server, port = serve_background(graph_db, max_frame_bytes=2048)
    yield server, port
    server.shutdown()
    server.server_close()


def test_oversized_json_line_answers_frame_too_large(small_frames):
    _, port = small_frames
    with socket.create_connection(("127.0.0.1", port)) as sock:
        handle = sock.makefile("rwb")
        junk = json.dumps(
            {"id": 1, "op": "stats", "pad": "x" * 5000}
        ).encode() + b"\n"
        handle.write(junk)
        handle.flush()
        response = json.loads(handle.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "frame_too_large"
        # The connection resynchronized past the oversized line.
        handle.write(b'{"id": 2, "op": "stats"}\n')
        handle.flush()
        response = json.loads(handle.readline())
        assert response["ok"] and response["id"] == 2


def test_oversized_binary_frame_answers_frame_too_large(small_frames):
    _, port = small_frames
    header = struct.Struct(">I")

    def read_frame(handle):
        (length,) = header.unpack(handle.read(header.size))
        return json.loads(handle.read(length))

    with socket.create_connection(("127.0.0.1", port)) as sock:
        handle = sock.makefile("rwb")
        handle.write(json.dumps({"id": 0, "op": "hello",
                                 "frames": "binary"}).encode() + b"\n")
        handle.flush()
        hello = json.loads(handle.readline())
        assert hello["ok"] and hello["max_frame_bytes"] == 2048
        payload = json.dumps(
            {"id": 1, "op": "stats", "pad": "x" * 5000}
        ).encode()
        handle.write(header.pack(len(payload)) + payload)
        handle.flush()
        response = read_frame(handle)
        assert response["ok"] is False
        assert response["error"]["code"] == "frame_too_large"
        # The payload was discarded whole; the stream stays aligned.
        payload = json.dumps({"id": 2, "op": "stats"}).encode()
        handle.write(header.pack(len(payload)) + payload)
        handle.flush()
        response = read_frame(handle)
        assert response["ok"] and response["id"] == 2


def test_frame_ceiling_has_a_floor():
    db = random_graph_database(num_edges=10, num_nodes=5, seed=1)
    from repro.server import AnykTCPServer

    with pytest.raises(ValueError):
        AnykTCPServer(db, port=0, max_frame_bytes=512)


# ----------------------------------------------------------------------
# Client timeouts
# ----------------------------------------------------------------------
class _SilentServer:
    """Accepts connections; answers hello, then optional silence."""

    def __init__(self, respond_after_hello: bool = False) -> None:
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self.respond_after_hello = respond_after_hello
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn, conn.makefile("rwb") as handle:
            while True:
                try:
                    line = handle.readline()
                except OSError:
                    return
                if not line:
                    return
                request = json.loads(line)
                if request.get("op") == "hello":
                    reply = {
                        "id": request["id"], "ok": True,
                        "frames": request.get("frames", "json"),
                        "protocol": 2, "pipelining": True,
                        "max_frame_bytes": 1_000_000,
                    }
                    handle.write(json.dumps(reply).encode() + b"\n")
                    handle.flush()
                elif self.respond_after_hello and request.get("slow") is None:
                    reply = {"id": request["id"], "ok": True, "answered": True}
                    handle.write(json.dumps(reply).encode() + b"\n")
                    handle.flush()
                # else: never answer — force a client-side timeout

    def close(self) -> None:
        self._sock.close()


def test_plain_client_timeout_poisons_and_raises():
    server = _SilentServer()
    try:
        client = Client(port=server.port, timeout=0.2)
        with pytest.raises(ClientTimeout) as excinfo:
            client.call("stats")
        assert excinfo.value.code == "client_timeout"
        # The connection is gone; further calls fail fast, not hang.
        with pytest.raises(Exception):
            client.call("stats")
    finally:
        server.close()


def test_pipelined_timeout_leaves_connection_usable():
    server = _SilentServer(respond_after_hello=True)
    try:
        client = PipelinedClient(port=server.port, frames="json", timeout=0.2)
        with pytest.raises(ClientTimeout):
            client.call("stats", slow=1)  # the server never answers this
        # The same socket still works for the next request.
        response = client.call("stats")
        assert response["answered"] is True
        client.close()
    finally:
        server.close()


def test_connect_and_read_timeouts_are_independent(served, monkeypatch):
    # connect_timeout bounds the dial; timeout bounds each read.  The
    # dial timeout must not leak into the established socket (a slow
    # query would spuriously time out) and vice versa.
    _, port = served
    seen = {}
    real = socket.create_connection

    def spy(address, timeout=None, **kwargs):
        seen["connect_timeout"] = timeout
        return real(address, timeout=timeout, **kwargs)

    monkeypatch.setattr(socket, "create_connection", spy)
    with Client(port=port, connect_timeout=3.5, timeout=7.0) as client:
        assert seen["connect_timeout"] == 3.5
        assert client._socket.gettimeout() == 7.0
        client.stats()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_shutdown_during_active_fetch_never_truncates_a_frame(graph_db):
    """Every byte the client ever sees parses as complete frames: the
    drain either finishes an in-flight response and flushes it whole,
    or drops it entirely — never a torn JSON line."""
    for attempt in range(3):  # vary the shutdown/in-flight race
        server, port = serve_background(graph_db)
        sock = socket.create_connection(("127.0.0.1", port))
        request = {
            "id": 1, "op": "query",
            "sql": GRAPH_SQL.format(k=4000), "fetch": 4000,
        }
        sock.sendall(json.dumps(request).encode() + b"\n")
        time.sleep(0.02 * attempt)
        shutdown = threading.Thread(target=server.shutdown)
        shutdown.start()
        received = b""
        sock.settimeout(10.0)
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                received += chunk
        except OSError:
            pass
        shutdown.join(timeout=35.0)
        server.server_close()
        sock.close()
        assert received == b"" or received.endswith(b"\n"), (
            f"torn frame on attempt {attempt}: tail="
            f"{received[-80:]!r}"
        )
        for line in received.splitlines():
            json.loads(line)  # every delivered frame is complete JSON


def test_shutdown_is_idempotent_and_unserved_server_closes(graph_db):
    from repro.server import AnykTCPServer

    server = AnykTCPServer(graph_db, port=0)
    # Never served: shutdown is a no-op, close releases the socket.
    server.shutdown()
    server.server_close()
    server.server_close()


# ----------------------------------------------------------------------
# Loadgen over the pipelined wire
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_wire_pipelined_scenario_smoke():
    from repro.workload.driver import run_scenario
    from repro.workload.scenarios import SCENARIOS

    result = run_scenario(
        SCENARIOS["read-mostly"],
        seed=3,
        duration=1.0,
        clients=3,
        mode="wire-pipelined",
        sample=0.2,
    )
    report = result.report
    assert report["mode"] == "wire-pipelined"
    assert report["ops"]["query"]["count"] > 0
    assert report["errors"]["total"] == 0
    assert result.validation is None or not result.validation.mismatches
