"""Tests for ANYK-REC (recursive enumeration with memoized streams)."""

import pytest
from hypothesis import given, settings

from repro.anyk.part import anyk_part
from repro.anyk.ranking import LEX, MAX
from repro.anyk.rec import anyk_rec, stream_for
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.data.generators import path_database, star_database
from repro.data.relation import Relation
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import path_query, star_query

from conftest import multiset_of, path_db_strategy, ranked_weights, star_db_strategy


def _oracle_weights(db, query, combine=lambda a, b: a + b):
    return sorted(round(w, 9) for w in naive_join(db, query, combine=combine).weights)


@settings(max_examples=30, deadline=None)
@given(db_and_length=path_db_strategy())
def test_rec_exact_ranking_on_paths(db_and_length):
    db, length = db_and_length
    q = path_query(length)
    assert ranked_weights(anyk_rec(TDP(db, q))) == _oracle_weights(db, q)


@settings(max_examples=20, deadline=None)
@given(db_and_arms=star_db_strategy())
def test_rec_exact_ranking_on_stars(db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    assert ranked_weights(anyk_rec(TDP(db, q))) == _oracle_weights(db, q)


def test_rec_rows_match_naive():
    db = path_database(3, 18, 4, seed=6)
    q = path_query(3)
    got = list(anyk_rec(TDP(db, q)))
    expected = naive_join(db, q)
    assert multiset_of(got) == multiset_of(zip(expected.rows, expected.weights))


def test_rec_agrees_with_part_on_weight_sequence():
    db = star_database(3, 20, 4, seed=9)
    q = star_query(3)
    rec_w = ranked_weights(anyk_rec(TDP(db, q)))
    part_w = ranked_weights(anyk_part(TDP(db, q), strategy="lazy"))
    assert rec_w == part_w


def test_rec_empty_stream():
    db = Database(
        [Relation("R1", ("A1", "A2"), [(0, 1)]), Relation("R2", ("A2", "A3"))]
    )
    assert list(anyk_rec(TDP(db, path_query(2)))) == []


def test_rec_max_and_lex_rankings():
    db = path_database(2, 20, 4, seed=10)
    q = path_query(2)
    assert ranked_weights(anyk_rec(TDP(db, q, ranking=MAX))) == _oracle_weights(
        db, q, combine=max
    )
    lex = [w for _, w in anyk_rec(TDP(db, q, ranking=LEX))]
    assert all(lex[i] <= lex[i + 1] for i in range(len(lex) - 1))


def test_streams_are_memoized_and_shared():
    """All parent tuples with the same join key share one stream object —
    the suffix-sharing that distinguishes REC from PART."""
    db = Database(
        [
            # Two R1 tuples share A2=1, so they share R2's (1,) bucket.
            Relation("R1", ("A1", "A2"), [(0, 1), (9, 1)], [0.1, 0.2]),
            Relation("R2", ("A2", "A3"), [(1, 5), (1, 6)], [0.3, 0.4]),
        ]
    )
    tdp = TDP(db, path_query(2))
    list(anyk_rec(tdp))
    bucket = tdp.buckets[1][(1,)]
    assert bucket.stream is not None
    assert stream_for(tdp, 1, bucket) is bucket.stream
    # The shared stream produced both suffixes exactly once.
    assert len(bucket.stream.solutions) == 2


def test_rec_is_lazy_prefix_cheap():
    """Asking for one result must not force the whole output."""
    db = path_database(3, 30, 5, seed=12)
    q = path_query(3)
    tdp = TDP(db, q)
    stream = anyk_rec(tdp)
    next(stream)
    root_stream = tdp.root_bucket().stream
    total = len(naive_join(db, q))
    assert len(root_stream.solutions) == 1 < total
