"""The width landscape of §3: how the notions of width rank the tutorial's
example queries.

The tutorial surveys "different notions of width" for cyclic queries and
the claim that decompositions into *multiple* trees (submodular width)
strictly improve on single-tree measures for the 4-cycle.  These tests pin
the computable part of that landscape: treewidth-style bag sizes, integral
(generalized hypertree) and fractional hypertree widths of the best
decomposition our exhaustive search finds.
"""

import pytest

from repro.query.cq import Atom, ConjunctiveQuery, cycle_query, path_query, star_query, triangle_query
from repro.query.decomposition import best_decomposition


@pytest.mark.parametrize(
    "query,expected_fhw",
    [
        (path_query(4), 1.0),
        (star_query(4), 1.0),
        (triangle_query(), 1.5),
        (cycle_query(4), 2.0),
        (cycle_query(5), 2.0),
    ],
)
def test_fractional_hypertree_widths(query, expected_fhw):
    td = best_decomposition(query)
    assert td.fractional_hypertree_width() == pytest.approx(expected_fhw)


@pytest.mark.parametrize(
    "query,expected_ghw",
    [
        (path_query(3), 1),
        (star_query(3), 1),
        (triangle_query(), 2),
        (cycle_query(4), 2),
        (cycle_query(5), 2),
    ],
)
def test_generalized_hypertree_widths(query, expected_ghw):
    td = best_decomposition(query)
    assert td.generalized_hypertree_width() == expected_ghw


def test_acyclic_queries_have_width_one_everywhere():
    for query in (path_query(5), star_query(5)):
        td = best_decomposition(query)
        assert td.fractional_hypertree_width() == pytest.approx(1.0)
        assert td.generalized_hypertree_width() == 1


def test_width_hierarchy_fhw_at_most_ghw():
    """fhw ≤ ghw always (LP relaxation); strict on the triangle."""
    for query in (
        triangle_query(),
        cycle_query(4),
        cycle_query(5),
        path_query(3),
    ):
        td = best_decomposition(query)
        assert (
            td.fractional_hypertree_width()
            <= td.generalized_hypertree_width() + 1e-9
        )
    triangle_td = best_decomposition(triangle_query())
    assert (
        triangle_td.fractional_hypertree_width()
        < triangle_td.generalized_hypertree_width()
    )


def test_fourcycle_single_tree_floor_motivates_union_of_trees():
    """No single tree reaches the submodular width 1.5 of the 4-cycle —
    the measured floor is 2.0, which is why repro.joins.heavylight routes
    inputs to multiple trees (§3's key innovation)."""
    td = best_decomposition(cycle_query(4))
    assert td.fractional_hypertree_width() >= 2.0 - 1e-9


def test_treewidth_of_cliqueish_query():
    """A query whose primal graph is K4 has bag size 4 (treewidth 3), but
    a single covering atom keeps its hypertree widths at 1."""
    q = ConjunctiveQuery(
        [
            Atom("R", ("a", "b", "c", "d")),
            Atom("S", ("a", "b")),
            Atom("T", ("c", "d")),
        ]
    )
    td = best_decomposition(q)
    assert td.width == 3  # bag of all four variables
    assert td.generalized_hypertree_width() == 1  # covered by R alone
