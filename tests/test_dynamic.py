"""Dynamic data: versioned snapshots, snapshot-isolated cursors, caches.

Three satellite suites in one file:

- **Unit contract** of :class:`repro.dynamic.VersionedDatabase`:
  copy-on-write sharing, monotone versions, atomic failed mutations.
- **Snapshot-isolation property test**: open a server cursor, commit a
  batch of inserts+deletes, and require the drained stream to be
  byte-identical to a serial run on the pre-mutation snapshot — across
  ANYK-PART, ANYK-REC, batch, and the HRJN middleware, serial and
  4-way sharded.
- **Cache staleness regressions**: a mutation must force a plan-cache
  miss for affected statements and a stats refresh for touched
  relations, while *unaffected* statements and *untouched* relations
  stay warm (hit/miss counters asserted both ways).
"""

from __future__ import annotations

import pytest

import repro.engine.planner as planner
import repro.sql
from repro.data.database import Database
from repro.data.generators import path_database
from repro.data.relation import Relation
from repro.dynamic import Delete, Insert, MutationError, VersionedDatabase, insert
from repro.engine.catalog import StatsCache, database_fingerprint
from repro.engine.planner import plan_compiled
from repro.server.service import QueryService
from repro.sql.analyzer import analyze


def small_db() -> Database:
    return Database(
        [
            Relation("R", ("a", "b"), [(1, 2), (2, 3), (3, 4)], [0.1, 0.2, 0.3]),
            Relation("S", ("b", "c"), [(2, 9), (3, 8)], [0.5, 0.25]),
        ]
    )


# ----------------------------------------------------------------------
# VersionedDatabase unit contract
# ----------------------------------------------------------------------
class TestVersionedDatabase:
    def test_versions_are_monotone_and_stamped(self):
        vdb = VersionedDatabase(small_db())
        assert vdb.version == 1
        assert vdb.snapshot().version == 1
        r1 = vdb.insert("R", [(9, 9)], weights=[1.5])
        assert (r1.kind, r1.rows, r1.version) == ("insert", 1, 2)
        r2 = vdb.delete("S", lambda row: row[0] == 2, description="b = 2")
        assert (r2.kind, r2.rows, r2.version) == ("delete", 1, 3)
        assert vdb.version == 3
        assert vdb.relation_version("R") == 2
        assert vdb.relation_version("S") == 3

    def test_copy_on_write_shares_untouched_relations(self):
        vdb = VersionedDatabase(small_db())
        before = vdb.snapshot()
        vdb.insert("R", [(5, 6)])
        after = vdb.snapshot()
        assert after is not before
        assert after["S"] is before["S"]  # untouched: same object
        assert after["R"] is not before["R"]
        assert len(before["R"]) == 3 and len(after["R"]) == 4

    def test_snapshots_never_change_after_publication(self):
        vdb = VersionedDatabase(small_db())
        pinned = vdb.snapshot()
        rows_before = list(pinned["R"].rows)
        vdb.insert("R", [(7, 7)])
        vdb.delete("R", lambda row: True)
        assert list(pinned["R"].rows) == rows_before
        assert len(vdb.snapshot()["R"]) == 0

    def test_initial_copy_isolates_callers_database(self):
        db = small_db()
        vdb = VersionedDatabase(db)
        db["R"].add((99, 99), 9.0)  # caller keeps editing their object
        assert len(vdb.snapshot()["R"]) == 3

    def test_failed_insert_is_atomic(self):
        vdb = VersionedDatabase(small_db())
        with pytest.raises(MutationError, match="arity"):
            vdb.apply(insert("R", [(1, 1), (2, 2, 2)]))
        assert vdb.version == 1
        assert len(vdb.snapshot()["R"]) == 3

    def test_non_finite_weight_rejected(self):
        vdb = VersionedDatabase(small_db())
        with pytest.raises(MutationError, match="finite"):
            vdb.insert("R", [(1, 1)], weights=[float("inf")])

    def test_unknown_relation(self):
        vdb = VersionedDatabase(small_db())
        with pytest.raises(MutationError, match="Nope"):
            vdb.apply(Delete("Nope"))

    def test_mismatched_rows_weights(self):
        with pytest.raises(MutationError, match="weights"):
            Insert("R", ((1, 2),), (0.1, 0.2))

    def test_failing_delete_predicate_is_clean_and_atomic(self):
        vdb = VersionedDatabase(small_db())
        with pytest.raises(MutationError, match="delete predicate"):
            vdb.delete("R", lambda row: row[99] == 1)
        assert vdb.version == 1

    def test_apply_many_orders_versions(self):
        vdb = VersionedDatabase(small_db())
        results = vdb.apply_many(
            [insert("R", [(8, 8)]), Delete("R", lambda row: row == (8, 8))]
        )
        assert [r.version for r in results] == [2, 3]
        assert len(vdb.snapshot()["R"]) == 3

    def test_info_block(self):
        vdb = VersionedDatabase(small_db())
        vdb.insert("R", [(6, 6), (7, 7)])
        info = vdb.info()
        assert info["version"] == 2
        assert info["mutations"] == 1
        assert info["inserted_rows"] == 2
        assert info["relation_versions"] == {"R": 2, "S": 0}


# ----------------------------------------------------------------------
# Fingerprints: versions distinguish equal-cardinality generations
# ----------------------------------------------------------------------
class TestVersionedFingerprints:
    def test_insert_delete_pair_changes_fingerprint(self):
        vdb = VersionedDatabase(small_db())
        before = database_fingerprint(vdb.snapshot())
        vdb.delete("R", lambda row: row == (1, 2))
        vdb.insert("R", [(1, 99)], weights=[0.1])
        # Same name, schema, and cardinality — only the version differs.
        assert len(vdb.snapshot()["R"]) == 3
        assert database_fingerprint(vdb.snapshot()) != before

    def test_only_restriction_ignores_other_relations(self):
        vdb = VersionedDatabase(small_db())
        before = database_fingerprint(vdb.snapshot(), only={"R"})
        vdb.insert("S", [(4, 4)])
        assert database_fingerprint(vdb.snapshot(), only={"R"}) == before
        assert database_fingerprint(vdb.snapshot(), only={"S"}) != before

    def test_missing_names_are_marked(self):
        db = small_db()
        with_missing = database_fingerprint(db, only={"R", "Ghost"})
        without = database_fingerprint(db, only={"R"})
        assert with_missing != without


# ----------------------------------------------------------------------
# Snapshot-isolation property test (the tentpole's acceptance bar)
# ----------------------------------------------------------------------
ISOLATION_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight LIMIT 80"
)


def _mutation_batch(service: QueryService) -> None:
    """A batch of inserts and deletes that visibly changes the join."""
    values = ", ".join(f"({i}, {i % 7}, 0.0)" for i in range(40, 60))
    for sql in (
        f"INSERT INTO R1 (A1, A2, weight) VALUES {values}",
        "DELETE FROM R2 WHERE A2 < 10",
        "INSERT INTO R2 VALUES (3, 300), (4, 400)",
        "DELETE FROM R1 WHERE A1 >= 55",
    ):
        service.mutate(sql)


def _paged(service: QueryService, engine: str) -> list[tuple[tuple, float]]:
    """Open a cursor, mutate mid-drain, and page the rest out."""
    opened = service.query(ISOLATION_SQL, engine=engine, fetch=13)
    rows = [(tuple(r), w) for r, w in opened["rows"]]
    _mutation_batch(service)
    cursor = opened["cursor"]
    done = opened["done"]
    while not done:
        page = service.fetch(cursor, n=17)
        rows.extend((tuple(r), w) for r, w in page["rows"])
        done = page["done"]
    return rows


@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("engine", ("part:lazy", "rec", "batch", "rank_join"))
def test_cursor_is_snapshot_isolated(engine, workers, monkeypatch):
    # Let the router take the worker budget on this deliberately small
    # instance (the floor exists for performance, not correctness).
    monkeypatch.setattr(planner, "PARALLEL_MIN_TUPLES", 0)
    db = path_database(length=2, size=220, domain=24, seed=31)
    service = QueryService(db, workers=workers)
    pre_mutation = service.db.copy()

    drained = _paged(service, engine)

    # Byte-identical to a serial run over the pre-mutation snapshot.
    reference = repro.sql.query(pre_mutation, ISOLATION_SQL, engine=engine)
    assert drained == reference.fetchall()

    # ... and genuinely different from a fresh post-mutation run (the
    # batch was chosen to change the join): isolation, not idempotence.
    post = [
        (tuple(r), w)
        for r, w in service.query(ISOLATION_SQL, engine=engine, fetch=80)["rows"]
    ]
    assert post != drained
    assert service.versioned.version == 5  # 4 mutations landed


def test_shards_pin_their_snapshot_version():
    """Worker payloads carry the generation the plan was costed on."""
    from repro.parallel.sharding import shard_database
    from repro.query.cq import Atom, ConjunctiveQuery

    vdb = VersionedDatabase(small_db())
    vdb.insert("R", [(4, 5)])
    snapshot = vdb.snapshot()
    query = ConjunctiveQuery(
        [Atom("R", ("a", "b")), Atom("S", ("b", "c"))], name="Pin"
    )
    shards, _ = shard_database(snapshot, query, 3)
    vdb.delete("R")  # a later mutation must not reach the shard payloads
    for shard in shards:
        assert shard.database.version == 2
        for atom in shard.query.atoms:
            base = atom.relation.split("__")[0]
            assert shard.database[atom.relation].version == snapshot[base].version
    assert sum(len(s.database[s.query.atoms[0].relation]) for s in shards) == 4


# ----------------------------------------------------------------------
# Cache staleness: misses where data moved, hits where it did not
# ----------------------------------------------------------------------
AFFECTED_SQL = "SELECT * FROM R JOIN S ON R.b = S.b ORDER BY weight LIMIT 5"
UNAFFECTED_SQL = "SELECT * FROM T ORDER BY weight LIMIT 5"


def _three_relation_service() -> QueryService:
    db = small_db()
    db.add(Relation("T", ("x",), [(1,), (2,)], [0.4, 0.6]))
    return QueryService(db)


class TestCacheStaleness:
    def test_mutation_misses_affected_plan_keeps_unaffected_plan(self):
        service = _three_relation_service()
        assert not service.query(AFFECTED_SQL, fetch=5)["plan_cached"]
        assert not service.query(UNAFFECTED_SQL, fetch=5)["plan_cached"]
        # Warm both.
        assert service.query(AFFECTED_SQL, fetch=5)["plan_cached"]
        assert service.query(UNAFFECTED_SQL, fetch=5)["plan_cached"]

        service.mutate("INSERT INTO S VALUES (2, 77)")

        hits_before = service.plan_cache.info()["hits"]
        misses_before = service.plan_cache.info()["misses"]
        # The statement reading S must re-plan ...
        assert not service.query(AFFECTED_SQL, fetch=5)["plan_cached"]
        assert service.plan_cache.info()["misses"] == misses_before + 1
        # ... while the statement over untouched T stays warm.
        assert service.query(UNAFFECTED_SQL, fetch=5)["plan_cached"]
        assert service.plan_cache.info()["hits"] == hits_before + 1

    def test_stats_cache_refreshes_only_touched_relations(self):
        vdb = VersionedDatabase(small_db())
        stats_cache = StatsCache()
        r_only = "SELECT * FROM R ORDER BY weight LIMIT 2"
        s_only = "SELECT * FROM S ORDER BY weight LIMIT 2"

        def plan(sql: str) -> None:
            snapshot = vdb.snapshot()
            plan_compiled(
                snapshot, analyze(snapshot, sql), stats_cache=stats_cache
            )

        plan(r_only)
        plan(s_only)
        plan(r_only)
        plan(s_only)
        info = stats_cache.info()
        assert (info["misses"], info["hits"]) == (2, 2)

        vdb.insert("R", [(5, 5)])
        plan(r_only)  # touched: must re-gather
        info = stats_cache.info()
        assert (info["misses"], info["hits"]) == (3, 2)
        plan(s_only)  # untouched: must stay cached
        info = stats_cache.info()
        assert (info["misses"], info["hits"]) == (3, 3)

    def test_explain_reports_snapshot_version(self):
        service = _three_relation_service()
        assert service.explain(AFFECTED_SQL)["version"] == 1
        service.mutate("DELETE FROM R WHERE a = 1")
        explained = service.explain(AFFECTED_SQL)
        assert explained["version"] == 2
        assert "snapshot: version 2" in explained["explain"]
        # Cached explain still reports the version it was planned on.
        assert service.explain(AFFECTED_SQL)["plan_cached"]

    def test_mutation_recosts_routing_after_large_delta(self):
        # A large delta (emptying a relation) must change the *routing*,
        # not just miss the cache: proof that re-planning re-reads stats.
        db = path_database(length=2, size=200, domain=30, seed=5)
        service = QueryService(db)
        sql = "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 ORDER BY weight LIMIT 10"
        first = service.explain(sql)
        assert first["engine"] == "rank_join"  # binary join, tiny k ≤ √n
        service.mutate("DELETE FROM R2")
        second = service.explain(sql)
        assert not second["plan_cached"]
        assert second["engine"] == "batch"  # empty input: batch finishes now
        assert second["version"] == 2


# ----------------------------------------------------------------------
# Failure injection: mutations must fail clean, never with tracebacks
# ----------------------------------------------------------------------
class TestMutationFailures:
    def _codes(self, service: QueryService, sql: str) -> tuple[str, str]:
        response = service.handle({"id": 1, "op": "mutate", "sql": sql})
        assert not response["ok"]
        return response["error"]["code"], response["error"]["message"]

    @pytest.mark.parametrize(
        "bad_sql",
        [
            "INSERT INTO R VALUES (1, 2, 3)",  # arity (schema order)
            "INSERT INTO R (a) VALUES (1)",  # missing column
            "INSERT INTO R (a, b, weight) VALUES (1, 2, 'x')",  # weight type
            "INSERT INTO R (a, a, b) VALUES (1, 1, 2)",  # duplicate column
            "INSERT INTO R (a, b) VALUES (1, c)",  # non-literal value
            "DELETE FROM Nope WHERE a = 1",  # unknown relation
            "DELETE FROM R WHERE a = b",  # join predicate
            "DELETE FROM R, S",  # trailing garbage
            "UPDATE R SET a = 1",  # unsupported verb
        ],
    )
    def test_malformed_mutations_surface_sql_errors(self, bad_sql):
        service = QueryService(small_db())
        code, message = self._codes(service, bad_sql)
        assert code == "sql_error"
        assert "Traceback" not in message and "internal" not in code
        assert service.versioned.version == 1  # nothing committed

    def test_select_via_mutate_op_is_rejected_cleanly(self):
        service = QueryService(small_db())
        code, message = self._codes(service, "SELECT * FROM R")
        assert code == "sql_error"
        assert "query" in message

    def test_mutation_racing_cursor_eviction_stays_clean(self):
        service = QueryService(small_db(), max_cursors=1, idle_evict_s=0.0)
        opened = service.query(AFFECTED_SQL, fetch=1)
        cursor = opened["cursor"]
        assert cursor is not None
        # The mutation lands while the cursor is open ...
        service.mutate("INSERT INTO R VALUES (7, 7)")
        # ... and a second query evicts it (limit 1, idle age 0).
        service.query(AFFECTED_SQL, fetch=1)
        response = service.handle(
            {"id": 9, "op": "fetch", "cursor": cursor}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "unknown_cursor"

    def test_readonly_server_refuses_mutations(self):
        service = QueryService(small_db(), readonly=True)
        code, message = self._codes(service, "INSERT INTO R VALUES (1, 1)")
        assert code == "sql_error"
        assert "read-only" in message
        assert service.versioned.version == 1
