"""Differential property harness: every engine, one ranked stream.

The engine × shard-count × merge-policy matrix multiplies configurations
faster than hand-written expectations can cover, so this suite pits the
implementations against *each other*: on seeded random acyclic
conjunctive queries and databases, ANYK-PART, ANYK-REC, the batch
join-then-sort baseline, and (on binary joins) the HRJN rank-join
middleware must return byte-identical ranked top-k prefixes — same rows,
same weights, same deterministic tie order — serial and hash-sharded
across 4 worker processes alike.

Weights live on a 1/64 grid so float accumulation is exact regardless of
association order (different engines fold weights in different orders;
on the grid all orders agree bitwise — the same trick as conftest's
``weight_strategy``).  Every fifth seed coarsens the grid to force heavy
tie groups, exercising the tuple-identity tie order.
"""

from __future__ import annotations

import random

import pytest

from repro.anyk.api import rank_enumerate
from repro.anyk.ranking import MAX, PRODUCT, SUM
from repro.data.database import Database
from repro.data.relation import Relation
from repro.parallel import parallel_rank_enumerate, shard_stream
from repro.query.cq import Atom, ConjunctiveQuery

#: How many random (query, database) instances the suite replays.
NUM_INSTANCES = 50

#: Shard counts the parallel runs use (1 = in-process serial).
WORKER_GRID = (1, 4)

#: Any-k engines compared on every instance (batch is the reference).
ANYK_ENGINES = ("part:lazy", "part:quick", "rec")


def random_acyclic_instance(
    seed: int,
) -> tuple[Database, ConjunctiveQuery, int]:
    """A random tree-shaped full CQ over binary relations, plus data.

    Atom 0 introduces two fresh variables; every later atom shares one
    variable with a random earlier atom and introduces one fresh one —
    the join hypergraph is a tree by construction, so GYO always
    succeeds.  Variable order within an atom is randomized (parent keys
    land on either column).  Domains are tiny so joins actually hit.
    """
    rng = random.Random(20260000 + seed)
    num_atoms = rng.randint(1, 4)
    variables = ["V0", "V1"]
    atoms = [Atom("R0", ("V0", "V1"))]
    for index in range(1, num_atoms):
        shared = rng.choice(variables)
        fresh = f"V{len(variables)}"
        variables.append(fresh)
        pair = (shared, fresh) if rng.random() < 0.5 else (fresh, shared)
        atoms.append(Atom(f"R{index}", pair))
    query = ConjunctiveQuery(atoms, name=f"Rand{seed}")

    # Coarse grid every fifth seed: massive tie groups.
    grid = 4 if seed % 5 == 0 else 64
    domain = rng.randint(2, 4)
    db = Database()
    for index, atom in enumerate(atoms):
        size = rng.randint(0, 18)
        relation = Relation(f"R{index}", atom.variables)
        for _ in range(size):
            row = tuple(rng.randrange(domain) for _ in range(2))
            relation.add(row, rng.randint(0, 10 * grid) / grid)
        db.add(relation)
    k = rng.randint(5, 25)
    return db, query, k


def _run(db, query, method: str, k: int, workers: int) -> list:
    if workers == 1:
        # shard_stream is the exact code path a worker runs, in-process —
        # it also covers the HRJN lift that rank_enumerate cannot reach.
        return list(shard_stream(db, query, SUM, method=method, k=k))
    return list(
        parallel_rank_enumerate(
            db, query, ranking=SUM, method=method, k=k, workers=workers
        )
    )


@pytest.mark.parametrize("seed", range(NUM_INSTANCES))
def test_engines_agree_on_ranked_prefixes(seed):
    db, query, k = random_acyclic_instance(seed)
    reference = list(rank_enumerate(db, query, method="batch", k=k))
    configurations = [
        (method, workers)
        for method in ANYK_ENGINES + ("batch",)
        for workers in WORKER_GRID
    ]
    if len(query.atoms) == 2:
        # The HRJN middleware evaluates binary joins; include it there.
        configurations += [("rank_join", workers) for workers in WORKER_GRID]
    for method, workers in configurations:
        got = _run(db, query, method, k, workers)
        assert got == reference, (
            f"{method} with workers={workers} diverged on seed {seed}: "
            f"{got[:3]} vs {reference[:3]}"
        )


@pytest.mark.parametrize("workers", WORKER_GRID)
def test_full_stream_agreement_beyond_prefix(workers):
    """Drain one instance to exhaustion (not just top-k) per worker count."""
    db, query, _ = random_acyclic_instance(7)
    reference = list(rank_enumerate(db, query, method="batch"))
    for method in ANYK_ENGINES:
        got = _run(db, query, method, None, workers)
        assert got == reference


# ----------------------------------------------------------------------
# Compiled kernels vs the interpreted path
# ----------------------------------------------------------------------

#: Seeds replayed on the kernel axis (seed 0 and 5 use the coarse grid,
#: so heavy tie groups flow through compiled row assembly too).
NUM_KERNEL_INSTANCES = 12

#: Rankings the kernel axis sweeps (LEX is covered in test_kernels.py;
#: batch has no kernels and serves as the reference stream).
KERNEL_RANKINGS = (SUM, MAX, PRODUCT)

KERNEL_ENGINES = ("part:lazy", "rec")


def _positive_weights(db: Database) -> Database:
    """The same instance with every weight shifted by +1.0 (grid-exact),
    as PRODUCT requires strictly positive weights."""
    shifted = Database()
    for relation in db:
        copy = relation.copy()
        copy.weights = [w + 1.0 for w in copy.weights]
        shifted.add(copy)
    return shifted


@pytest.mark.parametrize("seed", range(NUM_KERNEL_INSTANCES))
def test_compiled_kernels_match_interpreted_streams(seed):
    """part/rec × SUM/MAX/PRODUCT: compiled kernels must reproduce the
    interpreted ranked prefix byte-for-byte, with batch as referee."""
    db, query, k = random_acyclic_instance(seed)
    for ranking in KERNEL_RANKINGS:
        instance = _positive_weights(db) if ranking is PRODUCT else db
        # Batch referees SUM and MAX bitwise (grid weights make every
        # association order exact).  PRODUCT folds in log space, where
        # batch's pre-combined log(a*b) can differ from log(a)+log(b) in
        # the last ulp — there the contract under test is exactly the
        # kernel one: compiled == interpreted, byte for byte.
        reference = None
        if ranking is not PRODUCT:
            reference = list(
                rank_enumerate(
                    instance, query, ranking=ranking, method="batch", k=k
                )
            )
        for method in KERNEL_ENGINES:
            interpreted = list(
                rank_enumerate(
                    instance, query, ranking=ranking, method=method, k=k,
                    compile_kernels=False,
                )
            )
            compiled = list(
                rank_enumerate(
                    instance, query, ranking=ranking, method=method, k=k,
                    compile_kernels=True,
                )
            )
            assert compiled == interpreted, (seed, ranking.name, method)
            if reference is not None:
                assert interpreted == reference, (seed, ranking.name, method)


@pytest.mark.parametrize("seed", (1, 5))
def test_compiled_kernels_match_across_worker_processes(seed):
    """Workers run kernels at their default (on): the sharded parallel
    stream must equal the interpreted serial one for every ranking —
    part/rec/batch × SUM/MAX/PRODUCT × workers {1,4}."""
    db, query, k = random_acyclic_instance(seed)
    for ranking in KERNEL_RANKINGS:
        instance = _positive_weights(db) if ranking is PRODUCT else db
        for method in KERNEL_ENGINES + ("batch",):
            reference = list(
                rank_enumerate(
                    instance, query, ranking=ranking, method=method, k=k,
                    compile_kernels=False,
                )
            )
            for workers in WORKER_GRID:
                if workers == 1:
                    got = list(
                        shard_stream(
                            instance, query, ranking, method=method, k=k
                        )
                    )
                else:
                    got = list(
                        parallel_rank_enumerate(
                            instance, query, ranking=ranking, method=method,
                            k=k, workers=workers,
                        )
                    )
                assert got == reference, (seed, ranking.name, method, workers)


NUM_DYNAMIC_INSTANCES = 10

#: Interleaved steps per dynamic instance (mutations and queries mixed).
DYNAMIC_STEPS = 14


def _instance_sql(query: ConjunctiveQuery, k: int) -> str:
    """The SQL spelling of a random instance's query.

    Relation schemas in :func:`random_acyclic_instance` are the atom's
    variable names, so shared variables become equality predicates on
    same-named columns; SELECT * output order then matches
    ``query.variables`` (first appearance in FROM × schema order).
    """
    tables = ", ".join(f"R{i}" for i in range(len(query.atoms)))
    seen: dict[str, str] = {}
    conditions = []
    for index, atom in enumerate(query.atoms):
        for variable in atom.variables:
            if variable in seen:
                conditions.append(f"{seen[variable]}.{variable} = R{index}.{variable}")
            else:
                seen[variable] = f"R{index}"
    where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
    return f"SELECT * FROM {tables}{where} ORDER BY weight LIMIT {k}"


@pytest.mark.parametrize("seed", range(NUM_DYNAMIC_INSTANCES))
def test_mutation_interleavings_match_fresh_recompute(seed):
    """Randomized mutation/query interleavings against a shadow model.

    A :class:`~repro.server.service.QueryService` (plan + stats caches
    live) takes seeded random INSERT/DELETE mutations interleaved with
    ranked queries; after every step, the served ranked prefix must equal
    a from-scratch recompute over a *fresh* database rebuilt from a
    plain-Python shadow copy of the data.  Any stale cache entry, leaked
    snapshot, or missed invalidation shows up as a divergence.
    """
    from repro.server.service import QueryService

    db, query, k = random_acyclic_instance(seed)
    sql = _instance_sql(query, k)
    rng = random.Random(90210 + seed)
    grid = 4 if seed % 5 == 0 else 64
    domain = 6
    # The shadow model: plain lists, mutated in lockstep with the service.
    model = {
        r.name: (list(r.rows), list(r.weights), r.schema) for r in db
    }
    service = QueryService(db)

    def fresh_database() -> Database:
        return Database(
            Relation(name, schema, rows, weights)
            for name, (rows, weights, schema) in model.items()
        )

    def check():
        got = [
            (tuple(row), weight)
            for row, weight in service.query(sql, fetch=k)["rows"]
        ]
        expected = list(
            rank_enumerate(fresh_database(), query, method="batch", k=k)
        )
        assert got == expected, f"divergence at seed {seed}"

    check()
    for _ in range(DYNAMIC_STEPS):
        name = f"R{rng.randrange(len(query.atoms))}"
        rows, weights, schema = model[name]
        action = rng.random()
        if action < 0.45:  # insert 1-3 rows
            count = rng.randint(1, 3)
            new = [
                (rng.randrange(domain), rng.randrange(domain))
                for _ in range(count)
            ]
            new_weights = [rng.randint(0, 10 * grid) / grid for _ in new]
            values = ", ".join(
                f"({a}, {b}, {w!r})" for (a, b), w in zip(new, new_weights)
            )
            service.mutate(
                f"INSERT INTO {name} ({schema[0]}, {schema[1]}, weight) "
                f"VALUES {values}"
            )
            rows.extend(new)
            weights.extend(new_weights)
        elif action < 0.8:  # delete by a constant filter
            column = rng.choice(schema)
            position = schema.index(column)
            threshold = rng.randrange(domain)
            op = rng.choice(["=", "<=", ">"])
            service.mutate(
                f"DELETE FROM {name} WHERE {column} {op} {threshold}"
            )
            test = {
                "=": lambda v: v == threshold,
                "<=": lambda v: v <= threshold,
                ">": lambda v: v > threshold,
            }[op]
            kept = [
                (row, weight)
                for row, weight in zip(rows, weights)
                if not test(row[position])
            ]
            rows[:] = [row for row, _ in kept]
            weights[:] = [weight for _, weight in kept]
        check()


def test_all_equal_weights_tie_order_is_identical_everywhere():
    """The degenerate all-ties instance: order must be pure row identity."""
    rows = [(i, j) for i in range(4) for j in range(4)]
    db = Database(
        [
            Relation("R0", ("V0", "V1"), rows, [2.5] * len(rows)),
            Relation("R1", ("V1", "V2"), rows, [2.5] * len(rows)),
        ]
    )
    query = ConjunctiveQuery(
        [Atom("R0", ("V0", "V1")), Atom("R1", ("V1", "V2"))], name="Ties"
    )
    reference = list(rank_enumerate(db, query, method="batch"))
    assert reference == sorted(reference, key=lambda pair: pair[0])
    for method in ANYK_ENGINES + ("rank_join",):
        for workers in WORKER_GRID:
            assert _run(db, query, method, None, workers) == reference
