"""Tests for ANYK-PART and its successor strategies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk.part import STRATEGIES, anyk_part, naive_lawler
from repro.anyk.ranking import LEX, MAX, SUM
from repro.anyk.tdp import TDP
from repro.data.generators import path_database, star_database
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import path_query, star_query
from repro.util.counters import Counters

from conftest import multiset_of, path_db_strategy, ranked_weights, star_db_strategy

ALL_STRATEGIES = sorted(STRATEGIES)


def _oracle_weights(db, query, combine=lambda a, b: a + b):
    return sorted(round(w, 9) for w in naive_join(db, query, combine=combine).weights)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@settings(max_examples=25, deadline=None)
@given(db_and_length=path_db_strategy())
def test_part_enumerates_exact_ranking_on_paths(strategy, db_and_length):
    db, length = db_and_length
    q = path_query(length)
    got = ranked_weights(anyk_part(TDP(db, q), strategy=strategy))
    assert got == _oracle_weights(db, q)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@settings(max_examples=20, deadline=None)
@given(db_and_arms=star_db_strategy())
def test_part_enumerates_exact_ranking_on_stars(strategy, db_and_arms):
    db, arms = db_and_arms
    q = star_query(arms)
    got = ranked_weights(anyk_part(TDP(db, q), strategy=strategy))
    assert got == _oracle_weights(db, q)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_part_rows_match_naive_multiset(strategy):
    db = path_database(3, 20, 4, seed=8)
    q = path_query(3)
    got = list(anyk_part(TDP(db, q), strategy=strategy))
    expected = naive_join(db, q)
    assert multiset_of(got) == multiset_of(zip(expected.rows, expected.weights))


def test_unknown_strategy_rejected():
    db = path_database(2, 5, 3, seed=0)
    with pytest.raises(ValueError, match="unknown"):
        list(anyk_part(TDP(db, path_query(2)), strategy="bogus"))


def test_strategies_agree_pairwise_on_order():
    db = star_database(3, 15, 4, seed=3)
    q = star_query(3)
    streams = {
        s: ranked_weights(anyk_part(TDP(db, q), strategy=s))
        for s in ALL_STRATEGIES
    }
    reference = streams[ALL_STRATEGIES[0]]
    for s, weights in streams.items():
        assert weights == reference, s


def test_no_duplicate_solutions():
    db = path_database(3, 15, 3, seed=5)  # heavy key collisions
    q = path_query(3)
    rows = [row for row, _ in anyk_part(TDP(db, q), strategy="lazy")]
    expected = naive_join(db, q)
    assert len(rows) == len(expected)


def test_empty_result_stream():
    from repro.data.database import Database
    from repro.data.relation import Relation

    db = Database(
        [Relation("R1", ("A1", "A2"), [(0, 1)]), Relation("R2", ("A2", "A3"))]
    )
    assert list(anyk_part(TDP(db, path_query(2)))) == []


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_max_ranking_order(strategy):
    db = path_database(2, 25, 5, seed=7)
    q = path_query(2)
    got = ranked_weights(anyk_part(TDP(db, q, ranking=MAX), strategy=strategy))
    assert got == _oracle_weights(db, q, combine=max)


def test_lex_ranking_order():
    db = path_database(2, 12, 3, seed=11)
    q = path_query(2)
    got = [w for _, w in anyk_part(TDP(db, q, ranking=LEX), strategy="lazy")]
    assert all(got[i] <= got[i + 1] for i in range(len(got) - 1))
    # LEX refines SUM-compatible order only positionally; check count.
    assert len(got) == len(naive_join(db, q))


def test_first_result_is_global_minimum_immediately():
    db = path_database(4, 40, 6, seed=2)
    q = path_query(4)
    stream = anyk_part(TDP(db, q), strategy="lazy")
    first = next(stream)
    assert round(float(first[1]), 9) == _oracle_weights(db, q)[0]


def test_naive_lawler_same_results_but_more_work():
    db = path_database(3, 12, 3, seed=4)
    q = path_query(3)
    c_fast, c_slow = Counters(), Counters()
    fast = ranked_weights(anyk_part(TDP(db, q, counters=c_fast), strategy="eager"))
    slow = ranked_weights(naive_lawler(TDP(db, q, counters=c_slow)))
    assert fast == slow
    assert c_slow.extras.get("naive_dp_work", 0) > 0
    assert c_slow.total_work() > c_fast.total_work()


def test_take2_heap_growth_bounded():
    """Take2 inserts at most 2 + (m - L) candidates per pop; with huge
    buckets the global queue stays far smaller than under All."""
    import itertools

    db = path_database(2, 40, 2, seed=1)  # few keys -> huge buckets
    q = path_query(2)
    c_take2, c_all = Counters(), Counters()
    tdp2 = TDP(db, q, counters=c_take2)
    list(itertools.islice(anyk_part(tdp2, strategy="take2"), 25))
    tdpa = TDP(db, q, counters=c_all)
    list(itertools.islice(anyk_part(tdpa, strategy="all"), 25))
    assert c_take2.heap_ops < c_all.heap_ops
