"""Tests for the T-DP construction (stages, buckets, priorities)."""

import pytest

from repro.anyk.ranking import LEX, MAX, SUM
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.data.generators import path_database, star_database
from repro.data.relation import Relation
from repro.joins.naive import evaluate as naive_join
from repro.query.cq import QueryError, path_query, star_query, triangle_query


def _tiny_path_db():
    return Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1), (2, 1), (0, 3)], [0.1, 0.2, 0.3]),
            Relation("R2", ("A2", "A3"), [(1, 5), (1, 6), (3, 7)], [0.4, 0.05, 0.6]),
        ]
    )


def test_stages_are_dfs_preorder():
    db = star_database(3, 10, 3, seed=1)
    tdp = TDP(db, star_query(3))
    assert tdp.stages[0].parent is None
    for stage in tdp.stages[1:]:
        assert stage.parent is not None
        assert stage.parent < stage.position  # pre-order property
    # Subtree sizes sum correctly at the root.
    assert tdp.stages[0].subtree_size == tdp.num_stages


def test_cyclic_query_rejected():
    db = Database(
        [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
            Relation("T", ("C", "A"), [(3, 1)]),
        ]
    )
    with pytest.raises(QueryError, match="cyclic"):
        TDP(db, triangle_query())


def test_bucket_minima_and_subtree_weights():
    tdp = TDP(_tiny_path_db(), path_query(2))
    root = tdp.root_bucket()
    # Best full solution: R1(0,1)=0.1 with R2(1,6)=0.05 → 0.15.
    assert root.best_weight == pytest.approx(0.15)


def test_prefix_priority_matches_solution_weight():
    tdp = TDP(_tiny_path_db(), path_query(2))
    root = tdp.root_bucket()
    for position in range(len(root)):
        choices = tdp.expand_best([root.tuple_ids[position]])
        assert tdp.prefix_priority(
            choices[:1]
        ) <= tdp.solution_weight(choices) + 1e-12
        # A full prefix's priority equals its exact weight.
        assert tdp.prefix_priority(choices) == pytest.approx(
            tdp.solution_weight(choices)
        )


def test_expand_best_produces_global_optimum():
    tdp = TDP(_tiny_path_db(), path_query(2))
    root = tdp.root_bucket()
    best = tdp.expand_best([root.best_tuple])
    assert tdp.solution_weight(best) == pytest.approx(0.15)


def test_solution_row_assembles_all_variables():
    tdp = TDP(_tiny_path_db(), path_query(2))
    best = tdp.expand_best([tdp.root_bucket().best_tuple])
    row = tdp.solution_row(best)
    assert row == (0, 1, 6)  # (A1, A2, A3) of the lightest path


def test_is_empty_on_dangling_database():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)]),
            Relation("R2", ("A2", "A3"), [(9, 9)]),
        ]
    )
    assert TDP(db, path_query(2)).is_empty()


def test_empty_relation_gives_empty_tdp():
    db = Database(
        [Relation("R1", ("A1", "A2")), Relation("R2", ("A2", "A3"), [(1, 2)])]
    )
    assert TDP(db, path_query(2)).is_empty()


def test_solution_weight_requires_full_assignment():
    tdp = TDP(_tiny_path_db(), path_query(2))
    with pytest.raises(ValueError):
        tdp.solution_weight([0])


def test_max_ranking_bucket_minima():
    tdp = TDP(_tiny_path_db(), path_query(2), ranking=MAX)
    # Bottleneck-best: R1(0,1)=0.1 with R2(1,6)=0.05 → max = 0.1.
    assert tdp.root_bucket().best_weight == pytest.approx(0.1)


def test_lex_ranking_carrier_is_tuple():
    tdp = TDP(_tiny_path_db(), path_query(2), ranking=LEX)
    best = tdp.root_bucket().best_weight
    # One coordinate per stage (DFS join-tree order, an implementation
    # detail); the lex-minimal solution combines weights 0.05 and 0.1.
    assert isinstance(best, tuple) and len(best) == 2
    assert sorted(best) == [0.05, 0.1]


def test_total_tuples_counts_survivors():
    db = _tiny_path_db()
    tdp = TDP(db, path_query(2))
    # R1(2,1), R1(0,3) join partners: (2,1)→(1,*) survives; (0,3)→(3,7)
    # survives; everything here survives reduction.
    assert tdp.total_tuples() == 6


def test_buckets_keyed_by_parent_join_value():
    tdp = TDP(_tiny_path_db(), path_query(2))
    child_position = 1
    keys = set(tdp.buckets[child_position].keys())
    assert keys == {(1,), (3,)}
