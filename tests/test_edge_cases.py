"""Edge cases across the library: singletons, self-joins with loops,
ties, and extreme parameters."""

import pytest

from repro import rank_enumerate, top_k
from repro.anyk.ranking import MAX, SUM
from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.heavylight import fourcycle_union_of_trees
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.query.cq import Atom, ConjunctiveQuery, cycle_query, path_query


def test_self_loop_heavy_graph_fourcycle():
    """Self-loops create degenerate 4-cycles (a,a,a,a); all engines and
    the union-of-trees must agree on them."""
    rel = Relation("E", ("src", "dst"))
    rel.add((1, 1), 0.5)
    rel.add((1, 2), 0.1)
    rel.add((2, 1), 0.2)
    db = Database([rel])
    q = cycle_query(4)
    expected = sorted(round(w, 9) for w in generic_join(db, q).weights)
    got = [round(float(w), 9) for _, w in rank_enumerate(db, q)]
    assert got == expected
    # (1,1,1,1) from four uses of the self-loop must be present.
    rows = [row for row, _ in rank_enumerate(db, q)]
    assert (1, 1, 1, 1) in rows


def test_all_equal_weights_stable_enumeration():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(i, 0) for i in range(4)], [0.5] * 4),
            Relation("R2", ("A2", "A3"), [(0, j) for j in range(4)], [0.5] * 4),
        ]
    )
    q = path_query(2)
    for method in ("part:lazy", "rec", "batch"):
        got = list(rank_enumerate(db, q, method=method))
        assert len(got) == 16
        assert all(abs(float(w) - 1.0) < 1e-12 for _, w in got)


def test_negative_weights_supported_in_joins_and_anyk():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1), (2, 1)], [-1.0, 3.0]),
            Relation("R2", ("A2", "A3"), [(1, 5)], [-0.5]),
        ]
    )
    q = path_query(2)
    got = list(rank_enumerate(db, q))
    assert [round(float(w), 9) for _, w in got] == [-1.5, 2.5]
    got_max = list(rank_enumerate(db, q, ranking=MAX))
    assert [round(float(w), 9) for _, w in got_max] == [-0.5, 3.0]


def test_top_k_with_k_exceeding_output():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)], [0.1]),
            Relation("R2", ("A2", "A3"), [(1, 2)], [0.2]),
        ]
    )
    assert len(top_k(db, path_query(2), 100)) == 1


def test_unary_relation_queries():
    db = Database(
        [
            Relation("U", ("x",), [(1,), (2,), (3,)], [0.3, 0.1, 0.2]),
            Relation("V", ("x",), [(2,), (3,)], [0.0, 1.0]),
        ]
    )
    q = ConjunctiveQuery([Atom("U", ("a",)), Atom("V", ("a",))])
    got = list(rank_enumerate(db, q))
    assert [row for row, _ in got] == [((2),), (3,)] or [
        row for row, _ in got
    ] == [(2,), (3,)]
    assert [round(float(w), 9) for _, w in got] == [0.1, 1.2]


def test_long_chain_query():
    relations = []
    for i in range(1, 9):
        relations.append(
            Relation(
                f"R{i}", (f"A{i}", f"A{i + 1}"), [(0, 0), (0, 1), (1, 0)],
                [0.1 * i, 0.2, 0.05],
            )
        )
    db = Database(relations)
    q = path_query(8)
    got = [round(float(w), 9) for _, w in rank_enumerate(db, q)]
    expected = sorted(round(w, 9) for w in generic_join(db, q).weights)
    assert got == expected
    assert len(got) > 50


def test_fourcycle_trees_empty_when_no_edges_join():
    rel = Relation("E", ("src", "dst"))
    rel.add((1, 2), 0.1)  # single edge: no cycles at all
    db = Database([rel])
    trees = fourcycle_union_of_trees(db, cycle_query(4))
    from repro.joins.yannakakis import evaluate as yk

    assert all(len(yk(t.database, t.query)) == 0 for t in trees)


def test_duplicate_rows_different_weights_rank_separately():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1), (0, 1)], [0.1, 0.9]),
            Relation("R2", ("A2", "A3"), [(1, 2)], [0.0]),
        ]
    )
    got = list(rank_enumerate(db, path_query(2)))
    assert [row for row, _ in got] == [(0, 1, 2), (0, 1, 2)]
    assert [round(float(w), 9) for _, w in got] == [0.1, 0.9]


def test_leapfrog_handles_string_and_int_domains_separately():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, "k"), (1, 7)], [0.1, 0.2]),
            Relation("R2", ("A2", "A3"), [("k", 5), (7, 6)], [0.3, 0.4]),
        ]
    )
    out = leapfrog_join(db, path_query(2))
    assert sorted(out.rows, key=repr) == [(0, "k", 5), (1, 7, 6)]
