"""Tests for labeled-graph tree-pattern retrieval."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.graph import LabeledGraph, random_labeled_graph
from repro.patterns.pattern import TreePattern
from repro.patterns.search import count_matches, find_patterns
from repro.query.cq import QueryError
from repro.query.hypergraph import is_acyclic


def _chain_graph() -> LabeledGraph:
    g = LabeledGraph()
    for node, label in [(1, "A"), (2, "B"), (3, "B"), (4, "C")]:
        g.add_node(node, label)
    g.add_edge(1, 2, 0.5)
    g.add_edge(1, 3, 0.2)
    g.add_edge(2, 4, 0.1)
    g.add_edge(3, 4, 0.9)
    return g


def _brute_force(graph, pattern):
    """All homomorphisms by exhaustive assignment (test oracle)."""
    names = pattern.node_names()
    nodes = list(graph.nodes())
    adjacency = {
        u: {(v, w) for v, w in graph.out_edges(u)} for u in nodes
    }
    structure = []

    def edges_of(node, parent=None):
        for child in node.children:
            structure.append((node.name, child.name))
            edges_of(child)

    edges_of(pattern.root)
    labels = {
        n.name: n.label
        for n in (pattern._nodes[name] for name in names)
        if n.label is not None
    }
    matches = []
    for assignment in itertools.product(nodes, repeat=len(names)):
        mapping = dict(zip(names, assignment))
        if any(graph.label_of(mapping[n]) != lab for n, lab in labels.items()):
            continue
        weight = 0.0
        ok = True
        for parent, child in structure:
            found = [
                w for v, w in graph.out_edges(mapping[parent]) if v == mapping[child]
            ]
            if not found:
                ok = False
                break
            weight += found[0]  # graphs in these tests have no parallel edges
        if ok:
            matches.append((weight, mapping))
    matches.sort(key=lambda pair: pair[0])
    return matches


def test_labeled_graph_validation():
    g = LabeledGraph()
    g.add_node(1, "A")
    with pytest.raises(ValueError, match="already has label"):
        g.add_node(1, "B")
    with pytest.raises(ValueError, match="no label"):
        g.add_edge(1, 99, 0.1)


def test_pattern_builder_validation():
    p = TreePattern("r", "A")
    p.add_child("r", "c1", "B")
    with pytest.raises(QueryError, match="already has"):
        p.add_child("r", "c1")
    with pytest.raises(QueryError, match="no node"):
        p.add_child("zz", "c2")
    assert p.node_names() == ["r", "c1"]
    assert p.num_edges() == 1


def test_compiled_query_is_acyclic():
    g = _chain_graph()
    p = TreePattern("r", "A").add_child("r", "m", "B").add_child("m", "l", "C")
    query = p.compile_to_query(g)
    assert is_acyclic(query)


def test_unknown_label_matches_nothing():
    # An absent label means zero matches, not an error: the compiled query
    # references the label's empty relation and enumeration yields nothing.
    g = _chain_graph()
    p = TreePattern("r", "Z")
    p.add_child("r", "c")
    assert list(find_patterns(g, p)) == []
    assert count_matches(g, p) == 0


def test_simple_chain_pattern_ranking():
    g = _chain_graph()
    p = TreePattern("top", "A").add_child("top", "mid", "B").add_child(
        "mid", "leaf", "C"
    )
    got = list(find_patterns(g, p))
    # Two matches: 1->2->4 (0.6) and 1->3->4 (1.1).
    assert len(got) == 2
    assert got[0][0] == {"top": 1, "mid": 2, "leaf": 4}
    assert got[0][1] == pytest.approx(0.6)
    assert got[1][1] == pytest.approx(1.1)


def test_star_pattern_with_unlabeled_nodes():
    g = _chain_graph()
    p = TreePattern("hub", "A")
    p.add_child("hub", "c1")
    p.add_child("hub", "c2")
    got = list(find_patterns(g, p))
    # Homomorphisms: both children over {2,3} independently: 4 matches.
    assert len(got) == 4
    weights = [round(w, 9) for _, w in got]
    assert weights == sorted(weights)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    edges=st.integers(min_value=0, max_value=20),
)
def test_matches_brute_force_on_random_graphs(seed, edges):
    graph = random_labeled_graph(6, edges, labels=("A", "B"), seed=seed)
    pattern = TreePattern("r", "A").add_child("r", "u", "B").add_child("r", "v")
    oracle = _brute_force(graph, pattern)
    got = list(find_patterns(graph, pattern))
    assert [round(w, 9) for _, w in got] == [round(w, 9) for w, _ in oracle]


def test_k_truncation_and_methods_agree():
    graph = random_labeled_graph(20, 60, seed=7)
    pattern = TreePattern("r").add_child("r", "a").add_child("a", "b")
    full = [round(w, 9) for _, w in find_patterns(graph, pattern)]
    assert [
        round(w, 9) for _, w in find_patterns(graph, pattern, k=5)
    ] == full[:5]
    rec = [round(w, 9) for _, w in find_patterns(graph, pattern, method="rec")]
    assert rec == full


def test_count_matches_equals_enumeration():
    graph = random_labeled_graph(15, 40, seed=3)
    pattern = TreePattern("r", "A").add_child("r", "c1").add_child("r", "c2", "B")
    assert count_matches(graph, pattern) == sum(
        1 for _ in find_patterns(graph, pattern)
    )
