"""The query service core: cursors, plan cache, deadlines, admission.

Everything here runs the real service code paths in-process (no sockets
— the wire layer has its own suite in ``test_server_wire.py``).  The
heart is the resumable-cursor property: a paused cursor resumed by later
fetches must produce the *identical* ranked continuation as one
uninterrupted enumeration, across engines.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anyk.api import PausableStream
from repro.data.generators import path_database, random_graph_database
from repro.data.relation import Relation
from repro.engine.catalog import StatsCache, database_fingerprint
from repro.engine.executor import negated_database
from repro.server import QueryService, normalize_sql
from repro.server.plancache import PlanCache

PATH_SQL = (
    "SELECT * FROM R1 JOIN R2 ON R1.A2 = R2.A2 JOIN R3 ON R2.A3 = R3.A3 "
    "ORDER BY weight LIMIT {k}"
)
GRAPH_SQL = (
    "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
    "ORDER BY weight LIMIT {k}"
)


@pytest.fixture(scope="module")
def path_db():
    return path_database(length=3, size=120, domain=18, seed=23)


@pytest.fixture(scope="module")
def graph_db():
    return random_graph_database(num_edges=400, num_nodes=70, seed=23)


def drain_in_chunks(service, sql, chunks, engine=None):
    """Open a cursor and fetch it in the given chunk sizes; returns rows."""
    response = service.handle(
        {"id": 0, "op": "query", "sql": sql, "engine": engine}
    )
    assert response["ok"], response
    rows = list(response["rows"])
    cursor = response["cursor"]
    for chunk in chunks:
        if cursor is None:
            break
        page = service.handle(
            {"id": 0, "op": "fetch", "cursor": cursor, "n": chunk}
        )
        assert page["ok"], page
        rows.extend(page["rows"])
        if page["done"]:
            cursor = None
    # Drain whatever remains so runs with small chunk lists still finish.
    while cursor is not None:
        page = service.handle(
            {"id": 0, "op": "fetch", "cursor": cursor, "n": 50}
        )
        assert page["ok"], page
        rows.extend(page["rows"])
        if page["done"]:
            cursor = None
    return rows


# ----------------------------------------------------------------------
# The resumable-cursor property (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", [None, "part:lazy", "part:eager", "rec"])
def test_resume_equals_uninterrupted(path_db, engine):
    """Chunked fetches replay the exact single-run ranked stream."""
    sql = PATH_SQL.format(k=60)
    service = QueryService(path_db)
    single = drain_in_chunks(service, sql, [200], engine=engine)
    for chunks in ([1] * 10 + [7, 13], [5, 5, 5], [59, 1], [60], [61]):
        paged = drain_in_chunks(service, sql, chunks, engine=engine)
        assert paged == single


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.integers(min_value=1, max_value=17), max_size=8),
    engine=st.sampled_from([None, "part:lazy", "rec"]),
)
def test_resume_property_random_chunkings(chunks, engine):
    db = path_database(length=3, size=80, domain=14, seed=5)
    sql = PATH_SQL.format(k=40)
    service = QueryService(db)
    single = drain_in_chunks(service, sql, [100], engine=engine)
    assert drain_in_chunks(service, sql, chunks, engine=engine) == single


def test_resume_on_cyclic_query_via_auto(graph_db):
    sql = (
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "JOIN E AS e3 ON e2.dst = e3.src AND e3.dst = e1.src "
        "ORDER BY weight LIMIT 20"
    )
    service = QueryService(graph_db)
    single = drain_in_chunks(service, sql, [50])
    assert drain_in_chunks(service, sql, [3, 3, 3, 3]) == single


def test_fetch_matches_direct_library_stream(path_db):
    import repro.sql

    sql = PATH_SQL.format(k=30)
    service = QueryService(path_db)
    served = drain_in_chunks(service, sql, [7, 7, 7])
    direct = [
        [list(row), weight] for row, weight in repro.sql.query(path_db, sql)
    ]
    assert served == direct


# ----------------------------------------------------------------------
# Cursor lifecycle: close, auto-close, admission
# ----------------------------------------------------------------------
def test_close_frees_the_session(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=50)}
    )
    cursor = response["cursor"]
    assert len(service.cursors) == 1
    closed = service.handle({"id": 2, "op": "close", "cursor": cursor})
    assert closed["ok"] and closed["closed"] == cursor
    assert len(service.cursors) == 0
    again = service.handle({"id": 3, "op": "fetch", "cursor": cursor, "n": 5})
    assert not again["ok"]
    assert again["error"]["code"] == "unknown_cursor"


def test_drained_cursor_autocloses(path_db):
    service = QueryService(path_db)
    response = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=8), "fetch": 100}
    )
    assert response["done"] and response["cursor"] is None
    assert len(service.cursors) == 0
    # Its RAM-model work landed in the server-wide aggregate.
    assert service.counters.total_work() > 0


def test_admission_limit_rejects_cleanly(path_db):
    service = QueryService(path_db, max_cursors=3, idle_evict_s=None)
    sql = PATH_SQL.format(k=50)
    cursors = []
    for i in range(3):
        response = service.handle({"id": i, "op": "query", "sql": sql})
        assert response["ok"]
        cursors.append(response["cursor"])
    rejected = service.handle({"id": 9, "op": "query", "sql": sql})
    assert not rejected["ok"]
    assert rejected["error"]["code"] == "cursor_limit"
    assert "limit" in rejected["error"]["message"]
    # Closing one frees a slot for the next admission.
    service.handle({"id": 10, "op": "close", "cursor": cursors[0]})
    admitted = service.handle({"id": 11, "op": "query", "sql": sql})
    assert admitted["ok"]


def test_idle_eviction_under_admission_pressure(path_db):
    service = QueryService(path_db, max_cursors=2, idle_evict_s=0.0)
    sql = PATH_SQL.format(k=50)
    first = service.handle({"id": 1, "op": "query", "sql": sql, "fetch": 5})
    second = service.handle({"id": 2, "op": "query", "sql": sql})
    assert first["ok"] and second["ok"]
    time.sleep(0.01)  # both cursors are now "idle" beyond the 0s horizon
    third = service.handle({"id": 3, "op": "query", "sql": sql})
    assert third["ok"]
    assert service.cursors.evicted >= 1
    # The evicted session's enumeration work was folded into the
    # server-wide aggregate, same as an explicit close.
    assert service.counters.total_work() > 0


def test_fetch_rejects_nonpositive_page_sizes(path_db):
    service = QueryService(path_db)
    opened = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=20)}
    )
    for bad_n in (0, -5):
        response = service.handle(
            {"id": 2, "op": "fetch", "cursor": opened["cursor"], "n": bad_n}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"
    bad_inline = service.handle(
        {"id": 3, "op": "query", "sql": PATH_SQL.format(k=20), "fetch": -1}
    )
    assert not bad_inline["ok"]
    assert bad_inline["error"]["code"] == "bad_request"


# ----------------------------------------------------------------------
# Plan cache and cached-stats catalog
# ----------------------------------------------------------------------
def test_plan_cache_hits_across_formatting(path_db):
    service = QueryService(path_db)
    first = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=10), "fetch": 100}
    )
    assert first["ok"] and not first["plan_cached"]
    shouted = (
        "select  *  from R1 join R2 on R1.A2=R2.A2 "
        "join R3 on R2.A3 = R3.A3 order by weight limit 10"
    )
    second = service.handle(
        {"id": 2, "op": "query", "sql": shouted, "fetch": 100}
    )
    assert second["ok"] and second["plan_cached"]
    assert second["rows"] == first["rows"]
    info = service.plan_cache.info()
    assert info == {
        "entries": 1,
        "hits": 1,
        "misses": 1,
        "maxsize": 128,
        "recosts": 0,
    }


def test_plan_cache_key_separates_engines_not_limits(path_db):
    service = QueryService(path_db)
    service.handle({"id": 1, "op": "explain", "sql": PATH_SQL.format(k=10)})
    # A different LIMIT is a different *binding* of the same template,
    # not a different template: it hits the k=10 entry.
    service.handle({"id": 2, "op": "explain", "sql": PATH_SQL.format(k=9999)})
    forced = service.handle(
        {
            "id": 3,
            "op": "explain",
            "sql": PATH_SQL.format(k=10),
            "engine": "rec",
        }
    )
    assert forced["ok"] and forced["engine"] == "rec"
    assert service.plan_cache.info()["entries"] == 2
    assert service.plan_cache.info()["hits"] == 1


def test_catalog_drift_validates_on_hit(path_db):
    service = QueryService(path_db)
    sql = PATH_SQL.format(k=10)
    service.handle({"id": 1, "op": "explain", "sql": sql})
    before = database_fingerprint(service.db, only={"R1", "R2", "R3"})
    mutated = service.handle(
        {"id": 2, "op": "mutate", "sql": "INSERT INTO R1 VALUES (1, 2)"}
    )
    assert mutated["ok"] and mutated["applied"] == "insert"
    assert database_fingerprint(service.db, only={"R1", "R2", "R3"}) != before
    # One row in 120 is far inside the recost threshold: the template
    # stays hot (a soft hit — execution rebuilds its working instance
    # from the new snapshot, so the insert is still visible to queries).
    response = service.handle({"id": 3, "op": "explain", "sql": sql})
    assert response["ok"] and response["plan_cached"]
    info = service.plan_cache.info()
    assert info["misses"] == 1 and info["recosts"] == 0
    # Emptying a referenced relation is a 100% drift (and an empty flip):
    # the same entry re-costs in place, reported as a non-cached plan
    # and accounted as a miss.
    emptied = service.handle(
        {"id": 4, "op": "mutate", "sql": "DELETE FROM R1"}
    )
    assert emptied["ok"]
    response = service.handle({"id": 5, "op": "explain", "sql": sql})
    assert response["ok"] and not response["plan_cached"]
    info = service.plan_cache.info()
    assert info["recosts"] == 1 and info["misses"] == 2
    assert info["entries"] == 1


def test_plan_cache_lru_bound():
    from repro.server.plancache import CachedPlan

    cache = PlanCache(maxsize=2)
    for i in range(4):
        cache.store(("q%d" % i, None, ()), CachedPlan(None, None))
    assert len(cache) == 2
    assert cache.lookup(("q0", None, ())) is None
    assert cache.lookup(("q3", None, ())) is not None


def test_normalize_sql_canonicalizes():
    a, _ = normalize_sql(
        "select * from E as e1 join E as e2 on e1.dst = e2.src limit 3"
    )
    b, _ = normalize_sql(
        "SELECT  *  FROM E AS e1, E AS e2 WHERE e1.dst=e2.src LIMIT 3"
    )
    assert a == b


def test_stats_cache_hits(path_db):
    from repro.sql.analyzer import analyze

    compiled = analyze(path_db, PATH_SQL.format(k=10))
    cache = StatsCache()
    first = cache.gather(path_db, compiled.cq)
    second = cache.gather(path_db, compiled.cq)
    assert first is second
    assert cache.info()["hits"] == 1 and cache.info()["misses"] == 1


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_expired_deadline_returns_partial_batch(path_db):
    service = QueryService(path_db)
    opened = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=200)}
    )
    # A deadline that has effectively already passed: the fetch must come
    # back promptly with fewer than n rows and the exceeded flag set.
    page = service.fetch(opened["cursor"], n=200, deadline=time.monotonic())
    assert len(page["rows"]) < 200
    assert page.get("deadline_exceeded") is True
    assert not page["done"]
    # The cursor is still resumable afterwards — the stream continues.
    rest = drain_in_chunks(service, PATH_SQL.format(k=200), [500])
    resumed = [list(r) for r in page["rows"]]
    follow = service.handle(
        {"id": 2, "op": "fetch", "cursor": opened["cursor"], "n": 500}
    )
    assert follow["ok"]
    assert resumed + follow["rows"] == rest


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
def test_error_responses(path_db):
    service = QueryService(path_db)
    bad_sql = service.handle({"id": 1, "op": "query", "sql": "SELEKT nope"})
    assert not bad_sql["ok"] and bad_sql["error"]["code"] == "sql_error"
    bad_op = service.handle({"id": 2, "op": "dance"})
    assert not bad_op["ok"] and bad_op["error"]["code"] == "bad_request"
    missing = service.handle({"id": 3, "op": "fetch"})
    assert not missing["ok"] and missing["error"]["code"] == "bad_request"
    bad_engine = service.handle(
        {"id": 4, "op": "query", "sql": PATH_SQL.format(k=5), "engine": "warp"}
    )
    assert not bad_engine["ok"] and bad_engine["error"]["code"] == "sql_error"
    bad_type = service.handle({"id": 5, "op": "query", "sql": 42})
    assert not bad_type["ok"] and bad_type["error"]["code"] == "bad_request"


def test_stats_endpoint_shape(path_db):
    service = QueryService(path_db)
    service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=5), "fetch": 10}
    )
    stats = service.handle({"id": 2, "op": "stats"})
    assert stats["ok"]
    assert stats["queries"] == 1 and stats["rows_served"] == 5
    assert stats["plan_cache"]["misses"] == 1
    assert stats["cursors"]["open"] == 0  # drained cursor auto-closed
    assert stats["counters"]["total_work"] > 0
    assert set(stats["relations"]) == {"R1", "R2", "R3"}


# ----------------------------------------------------------------------
# PausableStream (the any-k layer's cursor primitive)
# ----------------------------------------------------------------------
def test_pausable_stream_take_semantics():
    stream = PausableStream(iter([(i,) * 2 for i in range(5)]))
    first, done = stream.take(2)
    assert len(first) == 2 and not done
    assert stream.emitted == 2
    rest, done = stream.take(10)
    assert len(rest) == 3 and done
    assert stream.exhausted
    empty, done = stream.take(1)
    assert empty == [] and done


def test_pausable_stream_close_raises_instead_of_fake_done():
    from repro.anyk.api import StreamClosed

    def forever():
        i = 0
        while True:
            yield (i, float(i))
            i += 1

    stream = PausableStream(forever())
    stream.take(3)
    stream.close()
    assert stream.closed and not stream.exhausted
    # "done" here would silently truncate the ranked stream — a pull on a
    # closed-but-not-exhausted stream must fail loudly instead.
    with pytest.raises(StreamClosed):
        stream.take(5)


def test_pausable_stream_close_after_exhaustion_stays_done():
    stream = PausableStream(iter([((1,), 1.0)]))
    _, done = stream.take(5)
    assert done
    stream.close()
    rows, done = stream.take(5)
    assert rows == [] and done  # exhaustion, not truncation


def test_fetch_racing_concurrent_close_reports_unknown_cursor(path_db):
    service = QueryService(path_db)
    opened = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=50)}
    )
    # Simulate losing the lookup/close race: grab the cursor object (as a
    # fetch in flight would), then close the session underneath it.
    cursor = service.cursors.get(opened["cursor"])
    service.handle({"id": 2, "op": "close", "cursor": opened["cursor"]})
    from repro.server.cursors import UnknownCursorError

    with pytest.raises(UnknownCursorError):
        service._fetch_into(cursor, 5, None)


def test_prefetch_failure_releases_the_cursor_slot(path_db, monkeypatch):
    service = QueryService(path_db, max_cursors=1, idle_evict_s=None)
    monkeypatch.setattr(
        QueryService,
        "_fetch_into",
        lambda self, cursor, n, deadline: (_ for _ in ()).throw(
            RuntimeError("engine blew up mid-prefetch")
        ),
    )
    failed = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=10), "fetch": 5}
    )
    assert not failed["ok"] and failed["error"]["code"] == "internal"
    # The slot was released, so the service is not wedged at its limit.
    assert len(service.cursors) == 0
    monkeypatch.undo()
    recovered = service.handle(
        {"id": 2, "op": "query", "sql": PATH_SQL.format(k=10), "fetch": 5}
    )
    assert recovered["ok"] and len(recovered["rows"]) == 5


def test_admission_rejection_happens_before_planning(path_db):
    service = QueryService(path_db, max_cursors=1, idle_evict_s=None)
    held = service.handle(
        {"id": 1, "op": "query", "sql": PATH_SQL.format(k=50)}
    )
    assert held["ok"]
    entries_before = service.plan_cache.info()["entries"]
    novel = PATH_SQL.format(k=51)  # never planned before
    rejected = service.handle({"id": 2, "op": "query", "sql": novel})
    assert not rejected["ok"]
    assert rejected["error"]["code"] == "cursor_limit"
    # The doomed request was refused before parse/analyze/route: the plan
    # cache was not touched (no pollution, no wasted planning).
    assert service.plan_cache.info()["entries"] == entries_before


# ----------------------------------------------------------------------
# DESC negation scoped to referenced relations (the executor satellite)
# ----------------------------------------------------------------------
def test_negated_database_only_touches_referenced_relations(path_db):
    db = path_db.copy()
    bystander = Relation("Bystander", ("x",))
    bystander.add((1,), 3.0)
    db.add(bystander)
    negated = negated_database(db, only={"R1"})
    assert negated["Bystander"] is db["Bystander"]  # shared, not copied
    assert negated["R2"] is db["R2"]
    assert negated["R1"] is not db["R1"]
    assert negated["R1"].weights == [-w for w in db["R1"].weights]
    # Default (no restriction) still negates everything.
    all_negated = negated_database(db)
    assert all_negated["Bystander"].weights == [-3.0]


def test_desc_query_still_correct_after_scoped_negation(graph_db):
    import repro.sql

    sql = (
        "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
        "ORDER BY weight DESC LIMIT 12"
    )
    heaviest = [w for _, w in repro.sql.query(graph_db, sql)]
    assert heaviest == sorted(heaviest, reverse=True)
    ascending = [
        w
        for _, w in repro.sql.query(
            graph_db,
            "SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src "
            "ORDER BY weight LIMIT 100000",
        )
    ]
    assert heaviest == sorted(ascending, reverse=True)[:12]
