"""End-to-end loadgen smoke: ``repro-serve`` + ``repro-loadgen`` as real
processes over TCP.

What CI's ``loadgen-smoke`` job runs: boot the server subprocess on the
read-mostly scenario's dataset spec, point the load generator at it for
a 5-second seeded run with validation sampling on, and assert a clean
exit, zero protocol errors, zero replay mismatches, and a non-empty
JSON report.  Kept separate from the other smoke files so the CI jobs
stay independently selectable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.mark.slow
def test_loadgen_smoke(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    from repro.workload.scenarios import SCENARIOS

    scenario = SCENARIOS["read-mostly"]
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--gen",
            scenario.dataset,
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port = None
        for _ in range(2):
            line = server.stdout.readline()
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
        assert port, "repro-serve never printed its listening line"

        report_path = tmp_path / "BENCH_workload.json"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.workload.cli",
                "--scenario",
                "read-mostly",
                "--seed",
                "7",
                "--duration",
                "5",
                "--clients",
                "4",
                "--connect",
                f"127.0.0.1:{port}",
                "--sample",
                "0.25",
                "--json",
                str(report_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr + result.stdout
        assert "errors:   none" in result.stdout
        assert "0 mismatches" in result.stdout

        report = json.loads(report_path.read_text())
        assert report["kind"] == "repro-loadgen SLO report"
        assert report["errors"]["total"] == 0
        assert report["trace"]["queries"] > 0
        assert report["trace"]["mutations"] > 0
        validation = report["validation"]
        assert validation["enabled"]
        assert validation["checked"] > 0
        assert validation["mismatches"] == 0
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert report["ops"]["query"][key] > 0
            assert report["ttfr_ms"][key] > 0
        assert report["throughput"]["ops_per_s"] > 0
        # The server-side per-op latency satellite crossed the wire too.
        assert report["server"]["op_latency_ms"]["query"]["count"] > 0

        server.send_signal(signal.SIGINT)
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
