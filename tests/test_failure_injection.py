"""Failure injection: malformed inputs must fail loudly and early."""

import pytest

from repro import rank_enumerate
from repro.data.database import Database
from repro.data.relation import Relation, SchemaError
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.leapfrog import evaluate as leapfrog_join
from repro.joins.naive import evaluate as naive_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import Atom, ConjunctiveQuery, QueryError, path_query, triangle_query
from repro.topk.rank_join import rank_join_topk


def _db():
    return Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1)]),
            Relation("R2", ("A2", "A3"), [(1, 2)]),
        ]
    )


@pytest.mark.parametrize(
    "engine", [naive_join, yannakakis_join, generic_join, leapfrog_join]
)
def test_unknown_relation_raises(engine):
    q = ConjunctiveQuery([Atom("Nope", ("a", "b"))])
    with pytest.raises(QueryError, match="Nope"):
        engine(_db(), q)


@pytest.mark.parametrize(
    "engine", [naive_join, yannakakis_join, generic_join, leapfrog_join]
)
def test_arity_mismatch_raises(engine):
    q = ConjunctiveQuery([Atom("R1", ("a", "b", "c"))])
    with pytest.raises(QueryError, match="arity"):
        engine(_db(), q)


def test_rank_enumerate_validates_query():
    with pytest.raises(QueryError):
        list(rank_enumerate(_db(), ConjunctiveQuery([Atom("Zzz", ("a",))])))


def test_rank_join_validates_query():
    with pytest.raises(QueryError):
        rank_join_topk(_db(), ConjunctiveQuery([Atom("Zzz", ("a",))]), k=1)


def test_nan_weight_rejected_at_ingestion():
    rel = Relation("R", ("a",))
    with pytest.raises(SchemaError, match="not finite"):
        rel.add((1,), float("nan"))


def test_empty_relation_join_is_empty_everywhere():
    db = _db()
    db.replace(Relation("R2", ("A2", "A3")))
    q = path_query(2)
    for engine in (naive_join, yannakakis_join, generic_join, leapfrog_join):
        assert len(engine(db, q)) == 0
    assert list(rank_enumerate(db, q)) == []


def test_yannakakis_rejects_cyclic_queries():
    db = Database(
        [
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
            Relation("T", ("C", "A"), [(3, 1)]),
        ]
    )
    with pytest.raises(QueryError, match="cyclic"):
        yannakakis_join(db, triangle_query())


def test_naive_guard_on_explosive_cross_products():
    rel = Relation("R", ("a",), [(i,) for i in range(200)])
    db = Database([rel])
    q = ConjunctiveQuery([Atom("R", (f"x{i}",)) for i in range(5)])
    with pytest.raises(QueryError, match="naive join"):
        naive_join(db, q, max_combinations=10**6)


def test_sql_mutate_refuses_plain_databases():
    import repro.sql
    from repro.sql.errors import SqlError

    with pytest.raises(SqlError, match="VersionedDatabase"):
        repro.sql.mutate(_db(), "INSERT INTO R1 VALUES (1, 2)")


def test_mutation_failures_leave_no_partial_state():
    import repro.sql
    from repro.dynamic import VersionedDatabase
    from repro.sql.errors import SqlError

    vdb = VersionedDatabase(_db())
    for bad in (
        "INSERT INTO R1 VALUES (1, 2), (3, 4, 5)",  # second row bad arity
        "DELETE FROM Missing",
        "INSERT INTO R1 (A1, A2, weight) VALUES (1, 2, 'x')",
    ):
        with pytest.raises(SqlError):
            repro.sql.mutate(vdb, bad)
    assert vdb.version == 1
    assert len(vdb.snapshot()["R1"]) == 1


def test_disconnected_query_is_a_cross_product_not_an_error():
    db = Database(
        [
            Relation("R1", ("A1", "A2"), [(0, 1), (2, 3)]),
            Relation("R2", ("B1", "B2"), [(7, 8)]),
        ]
    )
    q = ConjunctiveQuery([Atom("R1", ("a", "b")), Atom("R2", ("c", "d"))])
    for engine in (naive_join, yannakakis_join, generic_join, leapfrog_join):
        assert len(engine(db, q)) == 2
    weights = [w for _, w in rank_enumerate(db, q)]
    assert len(weights) == 2
