"""Compiled enumeration kernels: codegen, caching, slots, fallbacks."""

import pytest

from repro.anyk import kernels
from repro.anyk.api import rank_enumerate
from repro.anyk.kernels import (
    KernelSlot,
    install_kernels,
    kernel_signature,
    kernel_stats,
)
from repro.anyk.ranking import LEX, MAX, PRODUCT, RankingFunction, SUM
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.data.generators import path_database
from repro.data.relation import Relation
from repro.query.cq import Atom, ConjunctiveQuery, path_query


@pytest.fixture(autouse=True)
def _fresh_kernel_state():
    kernels.clear_kernel_cache()
    kernels.reset_kernel_stats()
    yield
    kernels.clear_kernel_cache()
    kernels.reset_kernel_stats()


def small_instance(ranking=SUM):
    db = path_database(length=3, size=60, domain=8, seed=11)
    query = path_query(3)
    if ranking is PRODUCT:
        shifted = Database()
        for relation in db:
            copy = relation.copy()
            copy.weights = [w + 1.0 for w in copy.weights]
            shifted.add(copy)
        db = shifted
    return db, query


def test_kernel_streams_match_interpreted_for_every_ranking():
    for ranking in (SUM, MAX, PRODUCT, LEX):
        db, query = small_instance(ranking)
        for method in ("part:lazy", "part:eager", "part:take2", "part:all", "rec"):
            interpreted = list(
                rank_enumerate(
                    db, query, ranking=ranking, method=method, k=40,
                    compile_kernels=False,
                )
            )
            compiled = list(
                rank_enumerate(
                    db, query, ranking=ranking, method=method, k=40,
                    compile_kernels=True,
                )
            )
            assert compiled == interpreted, (ranking.name, method)


def test_install_shadows_instance_only():
    db, query = small_instance()
    tdp = TDP(db, query)
    other = TDP(db, query)
    assert install_kernels(tdp, engine="part:lazy")
    assert "prefix_priority" in vars(tdp)  # instance attribute shadow
    assert "prefix_priority" not in vars(other)  # class path untouched
    full = tdp.expand_best([tdp.root_bucket().best_tuple])
    assert tdp.prefix_priority(full) == other.prefix_priority(full)
    assert tdp.solution_row(full) == other.solution_row(full)


def test_template_cache_hit_on_same_shape():
    db, query = small_instance()
    install_kernels(TDP(db, query), engine="part:lazy")
    install_kernels(TDP(db, query), engine="part:lazy")
    counts = kernel_stats()["part:lazy"]
    assert counts["compiles"] == 1
    assert counts["template_misses"] == 1
    assert counts["template_hits"] == 1
    assert counts["installs"] == 2


def test_slot_pins_template_across_installs():
    db, query = small_instance()
    slot = KernelSlot()
    install_kernels(TDP(db, query), slot=slot, engine="rec")
    assert slot.template is not None
    kernels.clear_kernel_cache()  # the slot must not need the global cache
    install_kernels(TDP(db, query), slot=slot, engine="rec")
    counts = kernel_stats()["rec"]
    assert counts["slot_hits"] == 1
    assert counts["installs"] == 2
    assert slot.hits == 1


def test_slot_with_stale_signature_recompiles():
    db, query = small_instance()
    slot = KernelSlot()
    install_kernels(TDP(db, query), slot=slot, engine="part:lazy")
    stale = slot.template
    db2 = path_database(length=4, size=40, domain=8, seed=3)
    assert install_kernels(TDP(db2, path_query(4)), slot=slot, engine="part:lazy")
    assert slot.template is not stale  # different shape replaced the pin
    assert kernel_stats()["part:lazy"]["slot_hits"] == 0


def test_unregistered_ranking_falls_back_to_interpreted():
    db, query = small_instance()
    custom = RankingFunction("sum", lambda a, b: a + b, 0.0, float)
    tdp = TDP(db, query, ranking=custom)  # shares the name, not the identity
    assert not install_kernels(tdp, engine="part:lazy")
    assert "prefix_priority" not in vars(tdp)
    assert kernel_stats()["part:lazy"]["unsupported"] == 1
    assert kernel_signature(tdp) is None


def test_signature_distinguishes_rankings_and_shapes():
    db, query = small_instance()
    sig_sum = kernel_signature(TDP(db, query, ranking=SUM))
    sig_max = kernel_signature(TDP(db, query, ranking=MAX))
    assert sig_sum != sig_max
    db2 = path_database(length=4, size=40, domain=8, seed=3)
    assert kernel_signature(TDP(db2, path_query(4))) != sig_sum


def test_kernel_handles_mixed_type_columns():
    """Heterogeneous columns flow through compiled row assembly and the
    deterministic tie order exactly as through the interpreted path."""
    rows = [("hub", 0), (1, 0), (2, 0), ("h2", 0)]
    db = Database(
        [
            Relation("R0", ("V0", "V1"), rows, [0.5] * 4),
            Relation("R1", ("V1", "V2"), [(0, "x"), (0, 3)], [0.5, 0.5]),
        ]
    )
    query = ConjunctiveQuery(
        [Atom("R0", ("V0", "V1")), Atom("R1", ("V1", "V2"))], name="Mixed"
    )
    interpreted = list(
        rank_enumerate(db, query, method="part:lazy", compile_kernels=False)
    )
    compiled = list(
        rank_enumerate(db, query, method="part:lazy", compile_kernels=True)
    )
    assert compiled == interpreted
    assert len(compiled) == 8


def test_generated_source_is_shape_specialized():
    db, query = small_instance()
    tdp = TDP(db, query)
    signature = kernel_signature(tdp)
    source = kernels.generate_source(signature)
    # Straight-line fold with the join order baked in, one branch per
    # prefix length, and no ranking callback in sight.
    assert "l0[choices[0]] + l1[choices[1]] + l2[choices[2]]" in source
    assert "combine" not in source
    compile(source, "<test>", "exec")  # must be valid Python


def test_explain_analyze_reports_kernel_slot():
    from repro.obs.analyze import render_analyze, run_analyze

    db, _ = small_instance()
    report = run_analyze(
        db,
        "SELECT * FROM R1, R2, R3 WHERE R1.A2 = R2.A2 AND R2.A3 = R3.A3 "
        "ORDER BY weight LIMIT 10",
        engine="part:lazy",
    )
    assert report["kernel"]["slot"] == "warm"
    assert report["kernel"]["engine"] == "part:lazy"
    assert report["kernel"]["stats"]["installs"] >= 1
    assert "kernels:  slot=warm" in render_analyze(report)
