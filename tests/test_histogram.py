"""Property tests for the mergeable fixed-bucket latency histograms.

The load generator's measurement layer leans on three facts: shard
histograms merged equal one global histogram (per-thread recording with
an exact fold), percentiles are monotone in the quantile (SLO tables
never invert), and empty histograms are handled, not special-cased by
callers.  Each is exercised here with hypothesis.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.histogram import (
    DEFAULT_BOUNDS,
    Histogram,
    geometric_bounds,
)

#: Latency-shaped values spanning the bucket range and both tails.
values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=500_000.0, allow_nan=False),
    max_size=200,
)


def _assert_same(a: Histogram, b: Histogram) -> None:
    assert a.buckets == b.buckets
    assert a.count == b.count
    assert a.max == b.max
    assert a.min == b.min
    assert math.isclose(a.total, b.total, rel_tol=1e-12, abs_tol=1e-9)
    for q in (0, 25, 50, 90, 95, 99, 99.9, 100):
        assert a.percentile(q) == b.percentile(q)


@settings(max_examples=60)
@given(values=values_strategy, shards=st.integers(min_value=1, max_value=7))
def test_merged_shards_equal_global(values, shards):
    """Round-robin the values over N shard histograms; the merged result
    must be indistinguishable from recording into one histogram."""
    global_hist = Histogram()
    shard_hists = [Histogram() for _ in range(shards)]
    for i, value in enumerate(values):
        global_hist.record(value)
        shard_hists[i % shards].record(value)
    merged = Histogram()
    for shard in shard_hists:
        merged.merge(shard)
    _assert_same(merged, global_hist)


@settings(max_examples=60)
@given(values=values_strategy)
def test_percentile_monotone_in_quantile(values):
    hist = Histogram()
    for value in values:
        hist.record(value)
    quantiles = [0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100]
    estimates = [hist.percentile(q) for q in quantiles]
    if not values:
        assert estimates == [None] * len(quantiles)
        return
    for lo, hi in zip(estimates, estimates[1:]):
        assert lo <= hi


@settings(max_examples=60)
@given(values=values_strategy.filter(bool))
def test_percentile_conservative_and_capped(values):
    """Upper-edge estimates never underestimate the true nearest-rank
    percentile and never exceed the observed maximum."""
    hist = Histogram()
    for value in values:
        hist.record(value)
    ordered = sorted(min(v, hist.max) for v in values)
    for q in (50, 90, 99):
        rank = max(1, math.ceil(q * len(ordered) / 100.0))
        true_value = ordered[rank - 1]
        estimate = hist.percentile(q)
        assert estimate <= hist.max
        assert estimate >= true_value or math.isclose(
            estimate, true_value, rel_tol=1e-9
        )


def test_empty_histogram_edge_cases():
    hist = Histogram()
    assert hist.count == 0
    assert hist.mean is None
    assert hist.percentile(50) is None
    assert hist.percentile(0) is None
    assert hist.percentile(100) is None
    assert hist.summary() == {"count": 0}
    # Merging empties stays empty; merging into an empty copies.
    other = Histogram()
    assert hist.merge(other).count == 0
    other.record(3.0)
    hist.merge(other)
    assert hist.count == 1
    assert hist.percentile(50) == 3.0  # capped at the exact max


def test_single_value_percentiles_collapse_to_it():
    hist = Histogram()
    for _ in range(10):
        hist.record(5.0)
    for q in (1, 50, 99, 100):
        assert hist.percentile(q) == 5.0  # upper edge capped at max


def test_merge_rejects_different_bounds():
    a = Histogram(geometric_bounds(per_decade=5))
    b = Histogram(geometric_bounds(per_decade=10))
    with pytest.raises(ValueError, match="different bucket bounds"):
        a.merge(b)


def test_bounds_validation():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((1.0, 1.0))
    with pytest.raises(ValueError):
        geometric_bounds(lo=0.0)
    with pytest.raises(ValueError):
        geometric_bounds(lo=10.0, hi=1.0)


def test_percentile_rejects_out_of_range_quantile():
    hist = Histogram()
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        hist.percentile(-1)


def test_overflow_and_negative_values():
    hist = Histogram()
    hist.record(-5.0)  # clamps to 0
    hist.record(10_000_000.0)  # beyond the last edge: overflow bucket
    assert hist.count == 2
    assert hist.min == 0.0
    assert hist.percentile(100) == 10_000_000.0  # overflow reports exact max
    assert hist.buckets[-1] == 1


def test_default_bounds_cover_expected_range():
    assert DEFAULT_BOUNDS[0] == pytest.approx(0.01)
    assert DEFAULT_BOUNDS[-1] >= 120_000.0
    assert all(b < a for b, a in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:]))
