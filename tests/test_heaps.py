"""Tests for the heap structures backing the ANYK-PART variants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.counters import Counters
from repro.util.heaps import (
    BinaryHeap,
    IncrementalQuickSelect,
    LazySortedList,
    TournamentBucket,
)

float_lists = st.lists(
    st.integers(min_value=-100, max_value=100).map(float), max_size=60
)


# ----------------------------------------------------------------------
# BinaryHeap
# ----------------------------------------------------------------------
def test_binary_heap_orders_by_key():
    h = BinaryHeap()
    for key, item in [(3, "c"), (1, "a"), (2, "b")]:
        h.push(key, item)
    assert [h.pop() for _ in range(3)] == [(1, "a"), (2, "b"), (3, "c")]


def test_binary_heap_ties_broken_by_insertion_order():
    h = BinaryHeap()
    h.push(1, "first")
    h.push(1, "second")
    assert h.pop()[1] == "first"
    assert h.pop()[1] == "second"


def test_binary_heap_never_compares_items():
    class Opaque:
        def __lt__(self, other):  # pragma: no cover
            raise AssertionError("payload comparison attempted")

    h = BinaryHeap()
    h.push(1, Opaque())
    h.push(1, Opaque())
    h.pop()
    h.pop()


def test_binary_heap_counts_operations():
    c = Counters()
    h = BinaryHeap(c)
    h.push(1, None)
    h.pop()
    assert c.heap_ops == 2


def test_binary_heap_empty_errors():
    h = BinaryHeap()
    with pytest.raises(IndexError):
        h.pop()
    with pytest.raises(IndexError):
        h.peek()


def test_binary_heap_peek_does_not_remove():
    h = BinaryHeap()
    h.push(5, "x")
    assert h.peek() == (5, "x")
    assert len(h) == 1


# ----------------------------------------------------------------------
# LazySortedList
# ----------------------------------------------------------------------
@given(float_lists)
def test_lazy_sorted_list_agrees_with_sorted(values):
    lazy = LazySortedList(values, key=lambda v: v)
    expected = sorted(values)
    assert [lazy.get(i) for i in range(len(values))] == expected


def test_lazy_sorted_list_is_incremental():
    c = Counters()
    lazy = LazySortedList(range(100), key=lambda v: -v, counters=c)
    baseline = c.heap_ops
    lazy.get(0)
    # One element must not cost a full sort's worth of heap operations.
    assert c.heap_ops - baseline <= 2


def test_lazy_sorted_list_out_of_range():
    lazy = LazySortedList([1, 2], key=lambda v: v)
    with pytest.raises(IndexError):
        lazy.get(2)
    with pytest.raises(IndexError):
        lazy.get(-1)


def test_lazy_sorted_list_materialized_prefix():
    lazy = LazySortedList([3, 1, 2], key=lambda v: v)
    lazy.get(1)
    assert lazy.materialized() == (1, 2)


# ----------------------------------------------------------------------
# IncrementalQuickSelect
# ----------------------------------------------------------------------
@given(float_lists)
def test_quickselect_agrees_with_sorted(values):
    qs = IncrementalQuickSelect(values, key=lambda v: v)
    expected = sorted(values)
    assert [qs.get(i) for i in range(len(values))] == expected


@given(float_lists.filter(lambda v: len(v) >= 3))
def test_quickselect_random_order_access(values):
    qs = IncrementalQuickSelect(values, key=lambda v: v)
    expected = sorted(values)
    # Nondecreasing access with repeats (the PART access pattern).
    for i in (0, 0, 1, len(values) - 1, 1):
        assert qs.get(i) == expected[i]


def test_quickselect_out_of_range():
    qs = IncrementalQuickSelect([1.0], key=lambda v: v)
    with pytest.raises(IndexError):
        qs.get(1)
    with pytest.raises(IndexError):
        qs.get(-1)


# ----------------------------------------------------------------------
# TournamentBucket
# ----------------------------------------------------------------------
@given(float_lists.filter(bool))
def test_tournament_root_is_minimum(values):
    bucket = TournamentBucket(list(enumerate(values)), key=lambda p: p[1])
    assert bucket.root()[1] == min(values)


@given(float_lists.filter(bool))
def test_tournament_children_never_smaller(values):
    bucket = TournamentBucket(values, key=lambda v: v)
    for position in range(len(bucket)):
        for child in bucket.children(position):
            assert bucket.key_at(child) >= bucket.key_at(position)


@given(float_lists.filter(bool))
def test_tournament_children_cover_everything(values):
    bucket = TournamentBucket(values, key=lambda v: v)
    reached = set()
    frontier = [0]
    while frontier:
        p = frontier.pop()
        reached.add(p)
        frontier.extend(bucket.children(p))
    assert reached == set(range(len(bucket)))


def test_tournament_empty_root_errors():
    with pytest.raises(IndexError):
        TournamentBucket([], key=lambda v: v).root()
