"""Tests for repro.parallel: sharding, merge, worker pool, integration."""

from __future__ import annotations

import pytest

from conftest import multiset_of

from repro.anyk.api import PausableStream, rank_enumerate
from repro.anyk.ranking import LEX, MAX, SUM, RankingFunction
from repro.data.database import Database
from repro.data.generators import path_database, star_database
from repro.data.relation import Relation
from repro.parallel import (
    ShardWorkerError,
    choose_shard_variable,
    is_shardable,
    merge_ranked_streams,
    parallel_rank_enumerate,
    shard_database,
    stable_hash,
)
from repro.query.cq import (
    ConjunctiveQuery,
    Atom,
    QueryError,
    cycle_query,
    path_query,
    path_graph_query,
    star_query,
)


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def test_stable_hash_is_deterministic_and_spread():
    values = [0, 1, "a", "b", (1, 2), 3.5]
    assert [stable_hash(v) for v in values] == [stable_hash(v) for v in values]
    shards = {stable_hash(v) % 4 for v in range(100)}
    assert shards == {0, 1, 2, 3}


def test_stable_hash_respects_join_equality_classes():
    # Serial joins match 1 == 1.0 == True (Python equality through hash
    # indexes); the shard function must agree or answers vanish.
    assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
    assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)
    assert stable_hash((1, 2)) == stable_hash((1.0, 2.0))
    assert stable_hash(1.5) != stable_hash(1)  # only equal values collapse


def test_mixed_type_join_keys_shard_together():
    """Regression: R1's key column holds floats, R2's holds ints; the
    serial join matches them, so every shard policy must too."""
    rel1 = Relation(
        "R1", ("A1", "A2"), [(i, float(i % 4)) for i in range(24)],
        [i / 64 for i in range(24)],
    )
    rel2 = Relation(
        "R2", ("A2", "A3"), [(j % 4, j) for j in range(24)],
        [j / 64 for j in range(24)],
    )
    db = Database([rel1, rel2])
    query = path_query(2)
    serial = list(rank_enumerate(db, query))
    assert len(serial) == 144  # the mixed-type keys really do join
    for policy in ("hash", "range"):
        parallel = list(
            parallel_rank_enumerate(db, query, workers=3, policy=policy)
        )
        assert parallel == serial, policy


def test_choose_shard_variable_prefers_most_shared():
    # A2 joins R1 and R2; A1/A3 appear once each.
    assert choose_shard_variable(path_query(2)) == "A2"
    # The star center appears in every atom.
    assert choose_shard_variable(star_query(3)) == "A0"


@pytest.mark.parametrize("policy", ["hash", "range"])
def test_shards_partition_the_answer_set(policy):
    db = path_database(length=3, size=60, domain=8, seed=11)
    query = path_query(3)
    serial = multiset_of(rank_enumerate(db, query))
    shards, spec = shard_database(db, query, 4, policy=policy)
    assert spec.shards == 4 and spec.policy == policy
    union = None
    for shard in shards:
        part = multiset_of(rank_enumerate(shard.database, shard.query))
        if union is None:
            union = part
        else:
            assert not (set(union) & set(part)), "shards must be disjoint"
            union += part
    assert union == serial


def test_shard_rewrite_handles_self_joins():
    db = Database()
    rel = Relation("E", ("src", "dst"))
    for i in range(12):
        rel.add((i, (i + 1) % 12), float(i))
    db.add(rel)
    query = path_graph_query(2)  # E(x1,x2) ⋈ E(x2,x3): x2 at different cols
    serial = multiset_of(rank_enumerate(db, query))
    shards, spec = shard_database(db, query, 3)
    assert spec.variable == "x2"
    union = None
    for shard in shards:
        # Both atoms got their own filtered relation under a fresh name.
        names = [atom.relation for atom in shard.query.atoms]
        assert names == ["E__p0", "E__p1"]
        part = multiset_of(rank_enumerate(shard.database, shard.query))
        union = part if union is None else union + part
    assert union == serial


def test_shard_database_validates_arguments():
    db = path_database(length=2, size=10, domain=4, seed=0)
    with pytest.raises(ValueError):
        shard_database(db, path_query(2), 0)
    with pytest.raises(ValueError):
        shard_database(db, path_query(2), 2, policy="mod")
    with pytest.raises(QueryError):
        shard_database(db, path_query(2), 2, variable="Z9")


def test_range_policy_balances_skewed_tuple_counts():
    # 90% of R1's A2-values are 0: hash sharding would put them wherever
    # hash(0) lands; range sharding must not put *everything* there too.
    rel1 = Relation("R1", ("A1", "A2"))
    for i in range(90):
        rel1.add((i, 0), 0.1)
    for i in range(10):
        rel1.add((i, i + 1), 0.2)
    rel2 = Relation("R2", ("A2", "A3"))
    for v in range(11):
        rel2.add((v, v), 0.3)
    db = Database([rel1, rel2])
    query = path_query(2)
    shards, spec = shard_database(db, query, 2, policy="range")
    sizes = [len(shard.database["R1__p0"]) for shard in shards]
    assert sorted(sizes) == [10, 90]  # heavy value isolated, rest together
    union = None
    for shard in shards:
        part = multiset_of(rank_enumerate(shard.database, shard.query))
        union = part if union is None else union + part
    assert union == multiset_of(rank_enumerate(db, query))


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def test_merge_orders_globally_with_row_ties():
    a = [((1, 1), 1.0), ((2, 2), 3.0)]
    b = [((1, 0), 1.0), ((9, 9), 2.0)]
    merged = list(merge_ranked_streams([iter(a), iter(b)]))
    assert merged == [((1, 0), 1.0), ((1, 1), 1.0), ((9, 9), 2.0), ((2, 2), 3.0)]


def test_merge_handles_empty_and_single_streams():
    assert list(merge_ranked_streams([])) == []
    assert list(merge_ranked_streams([iter([]), iter([((1,), 0.5)])])) == [
        ((1,), 0.5)
    ]


def test_merge_is_lazy():
    def endless():
        i = 0
        while True:
            yield (i,), float(i)
            i += 1

    stream = merge_ranked_streams([endless()])
    assert next(stream) == ((0,), 0.0)
    assert next(stream) == ((1,), 1.0)
    stream.close()


# ----------------------------------------------------------------------
# is_shardable
# ----------------------------------------------------------------------
def test_is_shardable_rules():
    acyclic = path_query(2)
    assert is_shardable(acyclic, SUM, "part:lazy")
    assert is_shardable(acyclic, MAX, "rec")
    assert is_shardable(acyclic, LEX, "part:eager")
    assert is_shardable(acyclic, SUM, "batch")
    assert is_shardable(acyclic, SUM, "rank_join")
    assert not is_shardable(cycle_query(4), SUM, "part:lazy")  # cyclic
    assert not is_shardable(acyclic, SUM, "unknown-engine")
    custom = RankingFunction("sum", lambda a, b: a + b, 0.0, float)
    assert not is_shardable(acyclic, custom, "part:lazy")  # impostor "sum"


# ----------------------------------------------------------------------
# The pool end-to-end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["part:lazy", "rec", "batch"])
def test_parallel_equals_serial_exactly(method):
    db = path_database(length=3, size=80, domain=8, seed=5)
    query = path_query(3)
    serial = list(rank_enumerate(db, query, method=method, k=60))
    parallel = list(
        parallel_rank_enumerate(db, query, method=method, k=60, workers=3)
    )
    assert parallel == serial


def test_parallel_full_drain_equals_serial():
    db = star_database(arms=2, size=60, domain=6, seed=9)
    query = star_query(2)
    serial = list(rank_enumerate(db, query, method="part:lazy"))
    parallel = list(
        parallel_rank_enumerate(db, query, method="part:lazy", workers=4)
    )
    assert parallel == serial
    assert len(parallel) > 0


def test_parallel_lex_ranking_round_trips_by_name():
    db = path_database(length=2, size=40, domain=5, seed=3)
    query = path_query(2)
    serial = list(rank_enumerate(db, query, ranking=LEX, method="part:lazy", k=25))
    parallel = list(
        parallel_rank_enumerate(
            db, query, ranking=LEX, method="part:lazy", k=25, workers=2
        )
    )
    assert parallel == serial


def test_parallel_merges_worker_counters():
    from repro.util.counters import Counters

    db = path_database(length=2, size=50, domain=6, seed=1)
    query = path_query(2)
    counters = Counters()
    results = list(
        parallel_rank_enumerate(
            db, query, method="part:lazy", counters=counters, workers=2
        )
    )
    assert counters.output_tuples == len(results)
    assert counters.tuples_read > 0


def test_parallel_early_close_terminates_workers():
    db = path_database(length=3, size=100, domain=6, seed=2)
    query = path_query(3)
    stream = parallel_rank_enumerate(db, query, method="part:lazy", workers=2)
    first = next(stream)
    stream.close()  # must terminate the pool, not hang
    serial_first = next(rank_enumerate(db, query, method="part:lazy", k=1))
    assert first == serial_first


def test_parallel_through_pausable_stream_resumes_exactly():
    db = path_database(length=3, size=90, domain=7, seed=8)
    query = path_query(3)
    serial = list(rank_enumerate(db, query, method="part:lazy", k=40))
    paused = PausableStream(
        parallel_rank_enumerate(db, query, method="part:lazy", k=40, workers=3)
    )
    got = []
    for n in (7, 13, 40):
        page, done = paused.take(n)
        got.extend(page)
    assert got == serial
    assert done


def test_worker_failure_surfaces_as_shard_error():
    # A query whose relations exist but whose method is bogus inside the
    # worker: the error frame must surface, not hang.
    db = path_database(length=2, size=20, domain=4, seed=0)
    query = path_query(2)
    stream = parallel_rank_enumerate(db, query, method="part:bogus", workers=2)
    with pytest.raises(ShardWorkerError, match="strategy"):
        list(stream)


def test_empty_shards_spawn_no_processes():
    # One relation has a single A2 value: most shards are trivially empty.
    rel1 = Relation("R1", ("A1", "A2"), [(i, 0) for i in range(8)], [0.0] * 8)
    rel2 = Relation("R2", ("A2", "A3"), [(0, j) for j in range(8)], [0.0] * 8)
    db = Database([rel1, rel2])
    query = path_query(2)
    serial = list(rank_enumerate(db, query))
    parallel = list(parallel_rank_enumerate(db, query, workers=4))
    assert parallel == serial
    assert len(parallel) == 64


# ----------------------------------------------------------------------
# rank_enumerate / router integration
# ----------------------------------------------------------------------
def test_deterministic_false_streams_through_giant_tie_groups():
    """deterministic=False must not buffer the whole tie group: pulling
    one result from an all-tied join leaves the engine barely touched."""
    from repro.util.counters import Counters

    rows = [(i, j) for i in range(30) for j in range(30)]
    db = Database(
        [
            Relation("R1", ("A1", "A2"), rows, [0.0] * len(rows)),
            Relation("R2", ("A2", "A3"), rows, [0.0] * len(rows)),
        ]
    )
    query = path_query(2)
    counters = Counters()
    stream = rank_enumerate(
        db, query, method="part:lazy", counters=counters, deterministic=False
    )
    next(stream)
    stream.close()
    # The stabilized default would have drained the whole (27000-result)
    # tie group before yielding; the opt-out emits as the engine does.
    assert counters.output_tuples <= 2


def test_deterministic_false_refuses_parallel():
    db = path_database(length=2, size=60, domain=6, seed=4)
    query = path_query(2)
    serial = list(
        rank_enumerate(db, query, method="part:lazy", deterministic=False, k=20)
    )
    fallback = list(
        rank_enumerate(
            db, query, method="part:lazy", deterministic=False, k=20, workers=4
        )
    )
    assert fallback == serial  # ran serial: no merge can match unstable ties


def test_parallel_from_a_thread_uses_a_safe_context():
    """The server regime: queries fork workers from handler threads.
    _pool_context must switch off plain fork there and still agree."""
    import threading

    db = path_database(length=2, size=80, domain=8, seed=10)
    query = path_query(2)
    serial = list(rank_enumerate(db, query, method="part:lazy", k=30))
    outcome: list = []

    def run():
        outcome.append(
            list(
                parallel_rank_enumerate(
                    db, query, method="part:lazy", k=30, workers=2
                )
            )
        )

    thread = threading.Thread(target=run)
    thread.start()
    thread.join(timeout=120)
    assert not thread.is_alive()
    assert outcome and outcome[0] == serial


def test_rank_enumerate_workers_falls_back_serial_on_cyclic():
    from repro.data.generators import random_graph_database

    db = random_graph_database(num_edges=60, num_nodes=12, seed=4)
    query = cycle_query(4)
    serial = list(rank_enumerate(db, query, k=10))
    with_workers = list(rank_enumerate(db, query, k=10, workers=4))
    assert with_workers == serial


def test_router_takes_and_declines_the_worker_budget():
    from repro.engine.planner import PARALLEL_MIN_TUPLES, route

    big = path_database(length=2, size=PARALLEL_MIN_TUPLES, domain=64, seed=6)
    plan = route(big, path_query(2), k=50, workers=4, allow_middleware=False)
    assert plan.workers == 4
    assert plan.shard_variable == "A2"
    assert any("sharding across 4 workers" in line for line in plan.rationale)
    assert "parallel: 4 workers" in plan.describe()

    small = path_database(length=2, size=30, domain=8, seed=6)
    plan = route(small, path_query(2), k=5, workers=4, allow_middleware=False)
    assert plan.workers == 1
    assert any("running serial" in line for line in plan.rationale)
    assert "parallel:" not in plan.describe()


def test_router_declines_workers_for_batch_without_limit():
    # No LIMIT routes to batch; batch shards fine, so the budget is taken
    # when the input is large enough.
    from repro.engine.planner import PARALLEL_MIN_TUPLES, route

    db = path_database(length=2, size=PARALLEL_MIN_TUPLES, domain=64, seed=6)
    plan = route(db, path_query(2), k=None, workers=2, allow_middleware=False)
    assert plan.engine == "batch"
    assert plan.workers == 2


def test_rank_enumerate_auto_with_workers_routes_and_matches():
    db = path_database(length=2, size=120, domain=10, seed=12)
    query = path_query(2)
    serial = list(rank_enumerate(db, query, method="auto", k=30))
    parallel = list(rank_enumerate(db, query, method="auto", k=30, workers=3))
    assert parallel == serial
