from setuptools import find_packages, setup

with open("README.md", encoding="utf-8") as handle:
    LONG_DESCRIPTION = handle.read()

setup(
    name="repro-anyk",
    version="1.10.0",
    description=(
        "Optimal joins meet top-k: ranked (any-k) enumeration for "
        "conjunctive queries, with a SQL front-end, cost-based engine "
        "router, partition-parallel sharded execution, a concurrent "
        "query server with resumable snapshot-isolated cursors over "
        "versioned dynamic data, a seeded load-generation/SLO "
        "harness, and end-to-end observability (tracing, a unified "
        "metrics registry, in-engine anytime-delay profiles, EXPLAIN "
        "ANALYZE) (reproduction of Tziavelis, "
        "Gatterbauer, Riedewald, SIGMOD 2020)"
    ),
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-sql = repro.sql.cli:main",
            "repro-serve = repro.server.cli:main",
            "repro-loadgen = repro.workload.cli:main",
            "repro-obs = repro.obs.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database :: Database Engines/Servers",
    ],
)
