"""Labeled, weighted digraphs and their relational encoding.

A :class:`LabeledGraph` is the data model of the tutorial's tree-pattern
references: nodes carry a label (e.g. protein family, job title), directed
edges carry a weight (lower = stronger/cheaper).  ``to_database`` encodes
it relationally: one binary edge relation ``E(src, dst)`` with the edge
weights, and one unary relation ``L_<label>(node)`` per label with zero
weights — so pattern matches rank purely by their edge weights.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Optional

from repro.data.database import Database
from repro.data.relation import Relation


def label_relation_name(label: str) -> str:
    """Relation name of a node label (``L_<label>``)."""
    return f"L_{label}"


class LabeledGraph:
    """Nodes with labels, directed weighted edges."""

    def __init__(self) -> None:
        self._labels: dict[Hashable, str] = {}
        self._edges: list[tuple[Hashable, Hashable, float]] = []
        self._out: dict[Hashable, list[tuple[Hashable, float]]] = {}

    def add_node(self, node: Hashable, label: str) -> None:
        """Register a node with its label (re-labelling is an error)."""
        existing = self._labels.get(node)
        if existing is not None and existing != label:
            raise ValueError(
                f"node {node!r} already has label {existing!r}, got {label!r}"
            )
        self._labels[node] = label
        self._out.setdefault(node, [])

    def add_edge(self, source: Hashable, target: Hashable, weight: float) -> None:
        """Add a directed edge; endpoints must be labeled already."""
        for endpoint in (source, target):
            if endpoint not in self._labels:
                raise ValueError(f"node {endpoint!r} has no label yet")
        self._edges.append((source, target, float(weight)))
        self._out[source].append((target, float(weight)))

    def label_of(self, node: Hashable) -> str:
        return self._labels[node]

    def nodes(self) -> Iterable[Hashable]:
        return self._labels.keys()

    def labels(self) -> set[str]:
        return set(self._labels.values())

    def out_edges(self, node: Hashable) -> list[tuple[Hashable, float]]:
        return self._out.get(node, [])

    def num_edges(self) -> int:
        return len(self._edges)

    def to_database(self) -> Database:
        """Relational encoding: E(src, dst) + one L_<label>(node) each."""
        edge_relation = Relation("E", ("src", "dst"))
        for source, target, weight in self._edges:
            edge_relation.add((source, target), weight)
        db = Database([edge_relation])
        by_label: dict[str, list[Hashable]] = {}
        for node, label in self._labels.items():
            by_label.setdefault(label, []).append(node)
        for label, nodes in sorted(by_label.items(), key=lambda kv: kv[0]):
            relation = Relation(label_relation_name(label), ("node",))
            for node in sorted(nodes, key=repr):
                relation.add((node,), 0.0)
            db.add(relation)
        return db


def random_labeled_graph(
    num_nodes: int,
    num_edges: int,
    labels: tuple[str, ...] = ("A", "B", "C"),
    seed: int = 0,
) -> LabeledGraph:
    """A random labeled graph for tests and benchmarks (deterministic)."""
    rng = random.Random(seed)
    graph = LabeledGraph()
    for i in range(num_nodes):
        graph.add_node(i, rng.choice(labels))
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(seen) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        graph.add_edge(u, v, rng.random())
    return graph
