"""Rooted tree patterns and their compilation to conjunctive queries.

A :class:`TreePattern` is a rooted tree whose nodes optionally constrain
the label of the graph node they match; edges are directed parent → child
(matching the graph's edge direction).  Matches are *homomorphisms* —
distinct pattern nodes may map to the same graph node — consistent with
the conjunctive-query semantics used throughout the library (and with the
paper's footnote 2 on degenerate matches).

``compile_to_query`` produces the acyclic CQ: one ``E(x_parent, x_child)``
atom per pattern edge and one unary ``L_<label>(x_node)`` atom per labeled
pattern node, over the graph's relational encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.data.database import Database
from repro.patterns.graph import LabeledGraph, label_relation_name
from repro.query.cq import Atom, ConjunctiveQuery, QueryError


@dataclass
class PatternNode:
    """One pattern node: an identifier plus an optional label constraint."""

    name: str
    label: Optional[str] = None
    children: list["PatternNode"] = field(default_factory=list)


class TreePattern:
    """A rooted tree pattern built fluently via :meth:`add_child`."""

    def __init__(self, root_name: str, root_label: Optional[str] = None) -> None:
        self.root = PatternNode(root_name, root_label)
        self._nodes: dict[str, PatternNode] = {root_name: self.root}

    def add_child(
        self, parent_name: str, child_name: str, child_label: Optional[str] = None
    ) -> "TreePattern":
        """Attach a new node under ``parent_name``; returns self."""
        if child_name in self._nodes:
            raise QueryError(f"pattern already has a node {child_name!r}")
        parent = self._nodes.get(parent_name)
        if parent is None:
            raise QueryError(f"pattern has no node {parent_name!r}")
        child = PatternNode(child_name, child_label)
        parent.children.append(child)
        self._nodes[child_name] = child
        return self

    def node_names(self) -> list[str]:
        """Pattern node names in DFS pre-order."""
        order: list[str] = []

        def visit(node: PatternNode) -> None:
            order.append(node.name)
            for child in node.children:
                visit(child)

        visit(self.root)
        return order

    def num_edges(self) -> int:
        return len(self.node_names()) - 1

    def variable_of(self, node_name: str) -> str:
        """The query variable standing for a pattern node."""
        if node_name not in self._nodes:
            raise QueryError(f"pattern has no node {node_name!r}")
        return f"x_{node_name}"

    def labels(self) -> set[str]:
        """All label constraints appearing in the pattern."""
        return {
            node.label for node in self._nodes.values() if node.label is not None
        }

    def compile_to_query(self, graph: LabeledGraph) -> ConjunctiveQuery:
        """The acyclic CQ whose answers are this pattern's matches.

        A constrained label that does not occur in the graph simply means
        the pattern has zero matches: the compiled query references that
        label's (empty) unary relation, and enumeration yields nothing.
        The search layer (:mod:`repro.patterns.search`) materializes the
        empty relations for such labels.  Compilation itself no longer
        depends on the graph's contents; the parameter is kept for the
        established call signature.
        """
        atoms: list[Atom] = []

        def visit(node: PatternNode) -> None:
            if node.label is not None:
                atoms.append(
                    Atom(label_relation_name(node.label), (self.variable_of(node.name),))
                )
            for child in node.children:
                atoms.append(
                    Atom(
                        "E",
                        (self.variable_of(node.name), self.variable_of(child.name)),
                    )
                )
                visit(child)

        visit(self.root)
        if not any(atom.relation == "E" for atom in atoms):
            # A single-node pattern: matches are just labeled nodes.
            if not atoms:
                raise QueryError("pattern must constrain something")
        return ConjunctiveQuery(atoms, name="TreePattern")
