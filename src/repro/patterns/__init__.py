"""Any-k tree-pattern retrieval in labeled graphs (tutorial Part 3).

The tutorial cites ranked tree-pattern matching — "Optimal enumeration:
efficient top-k tree matching" and "Any-k: anytime top-k tree pattern
retrieval in labeled graphs" — as the graph-search face of ranked
enumeration.  This package closes the loop inside the library: a labeled
graph and a rooted tree pattern compile into an *acyclic conjunctive query*
(one edge atom per pattern edge, one zero-weight unary label atom per
constrained pattern node), which the any-k machinery then enumerates in
ranking order with all its guarantees intact.

- :mod:`repro.patterns.graph` — labeled, weighted digraphs and their
  relational encoding;
- :mod:`repro.patterns.pattern` — rooted tree patterns and the compilation
  to (database, query);
- :mod:`repro.patterns.search` — ranked pattern search through
  :func:`repro.anyk.api.rank_enumerate`.
"""

from repro.patterns.graph import LabeledGraph
from repro.patterns.pattern import TreePattern
from repro.patterns.search import find_patterns

__all__ = ["LabeledGraph", "TreePattern", "find_patterns"]
