"""Ranked tree-pattern search: glue between patterns and any-k.

``find_patterns`` compiles the pattern, encodes the graph, and hands both
to :func:`repro.anyk.api.rank_enumerate`; each emitted row is translated
back to a mapping from pattern node names to graph nodes.  All any-k
methods and ranking functions are available; the weight of a match is the
ranking combination of its matched edges' weights (label atoms weigh the
ranking's identity).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional

from repro.anyk.api import rank_enumerate
from repro.anyk.ranking import RankingFunction, SUM
from repro.data.database import Database
from repro.data.relation import Relation
from repro.patterns.graph import LabeledGraph, label_relation_name
from repro.patterns.pattern import TreePattern
from repro.util.counters import Counters


def _encode(graph: LabeledGraph, pattern: TreePattern) -> Database:
    """The graph's relational encoding plus empty relations for pattern
    labels absent from the graph (absent label = zero matches, not an
    error)."""
    db = graph.to_database()
    for label in sorted(pattern.labels() - graph.labels()):
        db.add(Relation(label_relation_name(label), ("node",)))
    return db


def find_patterns(
    graph: LabeledGraph,
    pattern: TreePattern,
    k: Optional[int] = None,
    method: str = "part:lazy",
    ranking: RankingFunction = SUM,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[dict[str, Hashable], Any]]:
    """Yield ``(match, weight)`` pairs in nondecreasing weight order.

    ``match`` maps each pattern node name to the graph node it matches
    (homomorphism semantics — distinct pattern nodes may coincide).
    """
    query = pattern.compile_to_query(graph)
    db = _encode(graph, pattern)
    positions = {
        name: query.variables.index(pattern.variable_of(name))
        for name in pattern.node_names()
    }
    for row, weight in rank_enumerate(
        db, query, ranking=ranking, method=method, k=k, counters=counters
    ):
        yield {name: row[p] for name, p in positions.items()}, weight


def count_matches(graph: LabeledGraph, pattern: TreePattern) -> int:
    """Number of matches without enumerating them (factorized COUNT)."""
    from repro.factorized import FactorizedRepresentation, count_results

    query = pattern.compile_to_query(graph)
    frep = FactorizedRepresentation(_encode(graph, pattern), query)
    return count_results(frep)
