"""Building factorized representations over join trees.

A factorized representation (f-representation in Olteanu–Závodný terms) of
an acyclic full CQ's result is a DAG-shaped circuit of unions (the tuples
of a bucket) and products (a tuple combined with one bucket per child
join-tree node).  This module compiles a reduced database into that
structure — deliberately mirroring the T-DP of :mod:`repro.anyk.tdp`, since
the tutorial's Part 3 point is precisely that ranked enumeration, (unranked)
constant-delay enumeration, and factorized aggregates all stand on the same
join-tree foundation.

The headline property (§3): ``size()`` is O~(n) for any acyclic query,
while the flat result can be as large as Θ(n^|Q|) — the compression the
benchmarks of E14 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.semijoin import full_reducer
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, join_tree_or_raise
from repro.util.counters import Counters


@dataclass
class FStage:
    """One join-tree node of the factorized representation.

    Mirrors :class:`repro.anyk.tdp.Stage`: the reduced relation, join-key
    column positions linking to the parent stage, and child stages.
    """

    position: int
    atom_index: int
    relation: Relation
    parent: Optional[int]
    own_key_positions: tuple[int, ...]
    parent_key_positions: tuple[int, ...]
    children: list[int] = field(default_factory=list)


class FactorizedRepresentation:
    """The compiled factorization of one acyclic full CQ over a database.

    Construction runs the full reducer (so the circuit contains no dead
    branches — the property that later makes enumeration constant-delay)
    and buckets each stage's tuples by their parent join-key value.
    """

    def __init__(
        self,
        db: Database,
        query: ConjunctiveQuery,
        tree: Optional[JoinTree] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        query.validate(db)
        self.query = query
        self.counters = counters
        self.tree = tree if tree is not None else join_tree_or_raise(query)
        reduced = full_reducer(db, query, tree=self.tree, counters=counters)

        self.stages: list[FStage] = []
        self._build_stages(reduced)
        self.num_stages = len(self.stages)

        #: per stage: parent-key -> list of tuple ids (a union node)
        self.buckets: list[dict[tuple, list[int]]] = []
        for stage in self.stages:
            buckets: dict[tuple, list[int]] = {}
            for tuple_id, row in enumerate(stage.relation.rows):
                if counters is not None:
                    counters.tuples_read += 1
                key = tuple(row[p] for p in stage.own_key_positions)
                buckets.setdefault(key, []).append(tuple_id)
            self.buckets.append(buckets)

        # Output assembly bookkeeping (variables first bound per stage).
        seen: set[str] = set()
        out_position = {v: i for i, v in enumerate(query.variables)}
        self._writers: list[list[tuple[int, int]]] = []
        for stage in self.stages:
            writers = []
            for schema_position, variable in enumerate(stage.relation.schema):
                if variable not in seen:
                    seen.add(variable)
                    writers.append((schema_position, out_position[variable]))
            self._writers.append(writers)

    def _build_stages(self, reduced: dict[int, Relation]) -> None:
        def visit(atom_index: int, parent_position: Optional[int]) -> None:
            relation = reduced[atom_index]
            if parent_position is None:
                own_key: tuple[int, ...] = ()
                parent_key: tuple[int, ...] = ()
            else:
                parent_stage = self.stages[parent_position]
                join_vars = sorted(
                    set(relation.schema) & set(parent_stage.relation.schema)
                )
                own_key = relation.positions(join_vars)
                parent_key = parent_stage.relation.positions(join_vars)
            position = len(self.stages)
            stage = FStage(
                position=position,
                atom_index=atom_index,
                relation=relation,
                parent=parent_position,
                own_key_positions=own_key,
                parent_key_positions=parent_key,
            )
            self.stages.append(stage)
            if parent_position is not None:
                self.stages[parent_position].children.append(position)
            for child_atom in self.tree.children[atom_index]:
                visit(child_atom, position)

        visit(self.tree.root, None)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def root_bucket(self) -> list[int]:
        """Tuple ids of the root union (empty when the result is empty)."""
        return self.buckets[0].get((), [])

    def child_bucket(
        self, child_position: int, parent_position: int, parent_tuple: int
    ) -> list[int]:
        """The child union selected by a parent tuple's join-key value."""
        child_stage = self.stages[child_position]
        row = self.stages[parent_position].relation.rows[parent_tuple]
        key = tuple(row[p] for p in child_stage.parent_key_positions)
        return self.buckets[child_position][key]

    def is_empty(self) -> bool:
        """True iff the query has no answers."""
        return not self.root_bucket()

    # ------------------------------------------------------------------
    # Size measures (the §3 story)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of singleton (tuple) nodes in the circuit — O~(n)."""
        return sum(len(stage.relation) for stage in self.stages)

    def flat_size(self) -> int:
        """Number of flat result tuples (computed on the circuit, without
        materializing them)."""
        from repro.factorized.aggregates import COUNT, aggregate

        return aggregate(self, COUNT)

    def compression_ratio(self) -> float:
        """flat size / factorized size (≥ huge on high-arity outputs)."""
        size = self.size()
        return self.flat_size() / size if size else 0.0

    def assemble_row(self, choices: list[int]) -> tuple:
        """Output row of one choice-per-stage combination."""
        out: list = [None] * len(self.query.variables)
        for position, stage in enumerate(self.stages):
            row = stage.relation.rows[choices[position]]
            for schema_position, out_position in self._writers[position]:
                out[out_position] = row[schema_position]
        return tuple(out)
