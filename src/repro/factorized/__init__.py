"""Factorized representations of query results (tutorial §3).

The tutorial surveys factorised databases (Olteanu–Závodný; FDB) as the
second route — besides decompositions — to beating the "materialize
everything flat" complexity: query results are represented as a circuit of
unions and products following a join tree, whose size is O~(n^fhw) even
when the flat output has Θ(n^|Q|) tuples.  Aggregates (count, min, sum —
any commutative semiring, the FAQ view) evaluate directly on the circuit in
one bottom-up pass, and results can be *enumerated* from it with constant
delay — the connection to constant-delay enumeration the tutorial draws in
Part 3 (an unordered counterpart of the any-k algorithms).

Modules:

- :mod:`repro.factorized.frep` — build the factorized representation of an
  acyclic full CQ over a join tree; measure its size against the flat
  output size.
- :mod:`repro.factorized.aggregates` — commutative-semiring aggregates
  (count, sum-of-weights, min/max weight) in a single O~(n) pass.
- :mod:`repro.factorized.enumerate` — constant-delay (unordered)
  enumeration from the representation.
"""

from repro.factorized.aggregates import (
    COUNT,
    MAX_WEIGHT,
    MIN_WEIGHT,
    SUM_WEIGHT,
    Semiring,
    aggregate,
    count_results,
)
from repro.factorized.enumerate import enumerate_results
from repro.factorized.frep import FactorizedRepresentation

__all__ = [
    "FactorizedRepresentation",
    "Semiring",
    "aggregate",
    "count_results",
    "COUNT",
    "SUM_WEIGHT",
    "MIN_WEIGHT",
    "MAX_WEIGHT",
    "enumerate_results",
]
