"""Constant-delay enumeration from a factorized representation.

The tutorial's Part 3 draws the connection: if an algorithm spends
``t_prep`` on preprocessing and then returns results with constant delay —
in no particular order — the total join time is O~(t_prep + r), an
output-sensitive guarantee.  After the full reducer, the factorized circuit
has no dead branches, so a straightforward nested iteration over buckets
yields each result in O(|Q|) = O(1) data-complexity work: this module is
that enumeration.  Any-k (:mod:`repro.anyk`) is the *ordered* refinement of
exactly this procedure, paying a log factor for ranking — benchmark E15
measures the gap.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.factorized.frep import FactorizedRepresentation
from repro.util.counters import Counters


def enumerate_results(
    frep: FactorizedRepresentation,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, float]]:
    """Yield all ``(row, total_weight)`` results, unordered, constant delay.

    The iteration is a DFS over stage choices: every partial choice vector
    extends to at least one result (global consistency), so between two
    consecutive yields the work is bounded by the (constant) query size.
    """
    if frep.is_empty():
        return
    num_stages = frep.num_stages
    choices = [0] * num_stages
    #: per stage: the bucket (list of tuple ids) currently iterated and the
    #: index within it
    bucket_stack: list[list[int]] = [frep.root_bucket()] + [[]] * (num_stages - 1)
    index_stack = [0] * num_stages

    position = 0
    while position >= 0:
        bucket = bucket_stack[position]
        if index_stack[position] >= len(bucket):
            # Exhausted this union: backtrack and advance the previous one.
            index_stack[position] = 0
            position -= 1
            if position >= 0:
                index_stack[position] += 1
            continue
        choices[position] = bucket[index_stack[position]]
        if counters is not None:
            counters.tuples_read += 1
        if position == num_stages - 1:
            yield _result(frep, choices, counters)
            index_stack[position] += 1
        else:
            next_position = position + 1
            parent_position = frep.stages[next_position].parent
            assert parent_position is not None
            bucket_stack[next_position] = frep.child_bucket(
                next_position, parent_position, choices[parent_position]
            )
            index_stack[next_position] = 0
            position = next_position


def _result(
    frep: FactorizedRepresentation,
    choices: list[int],
    counters: Optional[Counters],
) -> tuple[tuple, float]:
    weight = 0.0
    for position, stage in enumerate(frep.stages):
        weight += stage.relation.weights[choices[position]]
    if counters is not None:
        counters.output_tuples += 1
    return frep.assemble_row(choices), weight
