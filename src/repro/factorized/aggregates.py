"""Commutative-semiring aggregates over factorized representations.

The FAQ / AJAR view the tutorial cites (§3, "support for aggregates"): any
aggregate that forms a commutative semiring evaluates on the factorized
circuit in a single bottom-up pass — O~(n) instead of O(result size).
The value of a tuple node is ``lift(tuple) ⊗ ∏_children (⊕ over the child
bucket)``; the query aggregate is ⊕ over the root bucket.

Provided semirings:

- :data:`COUNT` — number of query results (the Boolean query is
  ``count > 0``; counting is what e.g. triangle-counting engines need);
- :data:`SUM_WEIGHT` — sum over all results of their total weight (needs
  the standard (count, sum) pairing trick so products distribute);
- :data:`MIN_WEIGHT` / :data:`MAX_WEIGHT` — tropical semirings; MIN equals
  the weight of any-k's first result, which the tests cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.factorized.frep import FactorizedRepresentation


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring with a lift from weighted input tuples."""

    name: str
    zero: Any
    one: Any
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    #: maps an input tuple's weight to a semiring value
    lift: Callable[[float], Any]
    #: maps the final semiring value to the reported result
    finalize: Callable[[Any], Any] = staticmethod(lambda v: v)


COUNT = Semiring(
    name="count",
    zero=0,
    one=1,
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    lift=lambda weight: 1,
)

#: (count, weighted sum) pairs: times must distribute sums over counts.
SUM_WEIGHT = Semiring(
    name="sum_weight",
    zero=(0, 0.0),
    one=(1, 0.0),
    plus=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    times=lambda a, b: (a[0] * b[0], a[0] * b[1] + b[0] * a[1]),
    lift=lambda weight: (1, weight),
    finalize=lambda value: value[1],
)

MIN_WEIGHT = Semiring(
    name="min_weight",
    zero=float("inf"),
    one=0.0,
    plus=min,
    times=lambda a, b: a + b,
    lift=float,
)

MAX_WEIGHT = Semiring(
    name="max_weight",
    zero=float("-inf"),
    one=0.0,
    plus=max,
    times=lambda a, b: a + b,
    lift=float,
)


def aggregate(frep: FactorizedRepresentation, semiring: Semiring) -> Any:
    """Evaluate a semiring aggregate bottom-up on the circuit, O~(n)."""
    #: per stage: key -> ⊕ over the bucket of tuple values
    bucket_values: list[dict[tuple, Any]] = [dict() for _ in frep.stages]
    for position in range(frep.num_stages - 1, -1, -1):
        stage = frep.stages[position]
        values = bucket_values[position]
        for tuple_id, row in enumerate(stage.relation.rows):
            if frep.counters is not None:
                frep.counters.tuples_read += 1
            value = semiring.lift(stage.relation.weights[tuple_id])
            for child_position in frep.stages[position].children:
                child_stage = frep.stages[child_position]
                key = tuple(row[p] for p in child_stage.parent_key_positions)
                value = semiring.times(value, bucket_values[child_position][key])
            key = tuple(row[p] for p in stage.own_key_positions)
            current = values.get(key, semiring.zero)
            values[key] = semiring.plus(current, value)
    root = bucket_values[0].get((), semiring.zero)
    return semiring.finalize(root)


def count_results(frep: FactorizedRepresentation) -> int:
    """Number of query answers, without enumerating them."""
    return aggregate(frep, COUNT)


def average_weight(frep: FactorizedRepresentation) -> float:
    """Mean total weight over all answers (0.0 for empty results)."""
    count = aggregate(frep, COUNT)
    if count == 0:
        return 0.0
    return aggregate(frep, SUM_WEIGHT) / count
