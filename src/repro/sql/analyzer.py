"""Semantic analysis: lower a parsed SELECT onto the CQ layer.

The analyzer resolves table aliases and columns against the
:class:`~repro.data.database.Database` catalog, classifies predicates into
equality joins (which become shared query variables via union-find) and
constant filters (applied to base relations before enumeration), picks the
:class:`~repro.anyk.ranking.RankingFunction` named by ORDER BY, and emits a
:class:`CompiledQuery` — everything the engine planner and executor need.

Naming convention: each query variable is named after the first
``alias.column`` occurrence in its equivalence class, so compiled queries
read naturally in EXPLAIN output, e.g.::

    Q(r.src, r.dst, s.dst) :- E(r.src, r.dst), E(r.dst, s.dst)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.anyk.ranking import MAX, LEX, PRODUCT, SUM, RankingFunction
from repro.data.database import Database
from repro.query.cq import Atom, ConjunctiveQuery
from repro.sql.errors import SqlError
from repro.sql.nodes import (
    ColumnRef,
    Comparison,
    DeleteStatement,
    InsertStatement,
    Literal,
    Parameter,
    SelectStatement,
    TableRef,
)
from repro.sql.parser import Statement, parse, parse_any

RANKINGS: dict[str, RankingFunction] = {
    "sum": SUM,
    "max": MAX,
    "product": PRODUCT,
    "lex": LEX,
}

#: Filter predicates as plain functions, keyed by SQL operator.
_FILTER_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Filter:
    """One constant filter ``table.column op literal`` on a FROM entry.

    In a cached statement *template* the value may be a
    :class:`~repro.sql.nodes.Parameter` sentinel; such filters describe
    the statement's shape only and must be bound to a concrete value
    (:func:`repro.server.plancache.bind_compiled`) before execution.
    """

    table: str  # resolved alias
    column: str
    op: str
    value: Any

    @property
    def is_template(self) -> bool:
        """True when the comparison value is an unbound parameter."""
        return isinstance(self.value, Parameter)

    def predicate(self, position: int) -> Callable[[tuple], bool]:
        """Row predicate over the owning relation (column pre-resolved)."""
        if self.is_template:
            raise TypeError(
                f"filter {self.table}.{self.column} {self.op} ? is an "
                "unbound template; bind parameters before execution"
            )
        compare = _FILTER_OPS[self.op]
        value = self.value
        return lambda row: _safe_compare(compare, row[position], value)

    def __str__(self) -> str:
        return f"{self.table}.{self.column} {self.op} {self.value!r}"


def _safe_compare(compare, left, right) -> bool:
    try:
        return bool(compare(left, right))
    except TypeError:
        # Mixed-type *ordered* comparisons (e.g. a string value against a
        # numeric literal with <) have no defined order: treat the
        # predicate as unsatisfied and drop the row.  Note = and <> never
        # reach here — Python equality across types is well defined
        # (unequal), so `col <> 'x'` keeps every row of a non-string
        # column rather than emulating SQL's NULL semantics.
        return False


@dataclass
class CompiledQuery:
    """A SELECT statement lowered onto the CQ layer.

    The executor enumerates ``cq`` (after applying ``filters``) under
    ``ranking`` and maps each full result row through
    ``output_positions``; ``descending`` asks for heaviest-first order
    (implemented by weight negation, SUM only).
    """

    sql: str
    statement: SelectStatement
    cq: ConjunctiveQuery
    ranking: RankingFunction
    descending: bool
    #: LIMIT count; in an unbound template this may be a Parameter.
    k: Optional["int | Parameter"]
    output_columns: tuple[str, ...]
    output_positions: tuple[int, ...]
    filters: tuple[Filter, ...]
    alias_to_relation: dict[str, str] = field(default_factory=dict)

    @property
    def is_template(self) -> bool:
        """True when any filter value or the LIMIT is an unbound
        parameter (the compiled statement cannot execute as-is)."""
        return isinstance(self.k, Parameter) or any(
            f.is_template for f in self.filters
        )

    @property
    def is_projection(self) -> bool:
        """True when SELECT drops some query variable.

        Compares *distinct* positions, so ``SELECT R.a, R.a`` over a
        binary relation is still a projection (column b is dropped).
        """
        return set(self.output_positions) != set(range(len(self.cq.variables)))

    @property
    def free_variables(self) -> tuple[str, ...]:
        """The projected (output) query variables."""
        return tuple(self.cq.variables[p] for p in self.output_positions)


@dataclass
class CompiledMutation:
    """An INSERT/DELETE lowered onto the dynamic-data layer.

    ``rows``/``weights`` are schema-ordered and validated for an insert;
    ``filters`` hold the constant predicates of a delete (empty: delete
    everything).  :func:`repro.engine.executor.apply_mutation` turns this
    into a committed :class:`repro.dynamic.MutationResult`.
    """

    sql: str
    statement: Statement
    kind: str  # "insert" | "delete"
    relation: str
    rows: tuple[tuple, ...] = ()
    weights: tuple[float, ...] = ()
    filters: tuple[Filter, ...] = ()


def analyze(db: Database, sql: str) -> CompiledQuery:
    """Parse and semantically check ``sql`` against ``db``'s catalog."""
    statement = parse(sql)
    return analyze_statement(db, sql, statement)


def analyze_mutation(db: Database, sql: str) -> CompiledMutation:
    """Parse and check one INSERT/DELETE against ``db``'s catalog."""
    statement = parse_any(sql)
    if isinstance(statement, InsertStatement):
        return _analyze_insert(db, sql, statement)
    if isinstance(statement, DeleteStatement):
        return _analyze_delete(db, sql, statement)
    raise SqlError(
        "expected an INSERT or DELETE statement here; SELECT goes through "
        "repro.sql.query or the server's 'query' op",
        sql,
        statement.pos,
    )


def _mutation_relation(db: Database, sql: str, name: str, pos: int):
    if name not in db:
        raise SqlError(
            f"unknown relation {name!r}; catalog has: "
            f"{', '.join(db.names()) or '(empty database)'}",
            sql,
            pos,
        )
    return db[name]


def _analyze_insert(
    db: Database, sql: str, statement: InsertStatement
) -> CompiledMutation:
    relation = _mutation_relation(db, sql, statement.relation, statement.pos)
    schema = relation.schema
    if statement.columns is None:
        value_slots: list[Optional[int]] = list(range(len(schema)))
        weight_slot: Optional[int] = None
        expected = len(schema)
    else:
        # The column list must cover the schema exactly (any order) and
        # may additionally name the implicit 'weight' pseudo-column.
        weight_slot = None
        position_of: dict[str, int] = {}
        for index, column in enumerate(statement.columns):
            if column.lower() == "weight" and column not in schema:
                if weight_slot is not None:
                    raise SqlError(
                        "duplicate 'weight' in the INSERT column list",
                        sql,
                        statement.pos,
                    )
                weight_slot = index
                continue
            if column not in schema:
                raise SqlError(
                    f"relation {relation.name!r} has no column {column!r}; "
                    f"its schema is ({', '.join(schema)}) plus the implicit "
                    "'weight'",
                    sql,
                    statement.pos,
                )
            if column in position_of:
                raise SqlError(
                    f"duplicate column {column!r} in the INSERT column list",
                    sql,
                    statement.pos,
                )
            position_of[column] = index
        missing = [c for c in schema if c not in position_of]
        if missing:
            raise SqlError(
                f"INSERT INTO {relation.name} must provide every column; "
                f"missing: {', '.join(missing)}",
                sql,
                statement.pos,
            )
        value_slots = [position_of[c] for c in schema]
        expected = len(statement.columns)
    rows: list[tuple] = []
    weights: list[float] = []
    for value_row in statement.rows:
        if len(value_row) != expected:
            described = (
                "schema order: " + ", ".join(schema)
                if statement.columns is None
                else "column list: " + ", ".join(statement.columns)
            )
            raise SqlError(
                f"INSERT row has {len(value_row)} value(s) but {expected} "
                f"were expected ({described}; add 'weight' to a column list "
                "to set tuple weights)",
                sql,
                value_row[0].pos if value_row else statement.pos,
            )
        rows.append(tuple(value_row[slot].value for slot in value_slots))
        if weight_slot is None:
            weights.append(0.0)
        else:
            literal = value_row[weight_slot]
            if (
                not isinstance(literal.value, (int, float))
                or isinstance(literal.value, bool)
                or not math.isfinite(float(literal.value))
            ):
                raise SqlError(
                    f"'weight' must be a finite number, got "
                    f"{literal.value!r}",
                    sql,
                    literal.pos,
                )
            weights.append(float(literal.value))
    return CompiledMutation(
        sql=sql,
        statement=statement,
        kind="insert",
        relation=relation.name,
        rows=tuple(rows),
        weights=tuple(weights),
    )


def _analyze_delete(
    db: Database, sql: str, statement: DeleteStatement
) -> CompiledMutation:
    relation = _mutation_relation(db, sql, statement.relation, statement.pos)
    table = TableRef(relation.name, None, statement.pos)
    joins, filters = _classify_predicates(
        db, sql, [table], statement.predicates
    )
    if joins:
        raise SqlError(
            "DELETE predicates must compare a column to a literal "
            "(column-to-column predicates would be joins)",
            sql,
            statement.predicates[0].pos,
        )
    if any(f.is_template for f in filters):
        raise SqlError(
            "bind parameters (?) are not supported in DELETE predicates; "
            "mutations take literal values",
            sql,
            statement.pos,
        )
    return CompiledMutation(
        sql=sql,
        statement=statement,
        kind="delete",
        relation=relation.name,
        filters=tuple(filters),
    )


def analyze_statement(
    db: Database, sql: str, statement: SelectStatement
) -> CompiledQuery:
    tables = _resolve_tables(db, sql, statement.tables)
    joins, filters = _classify_predicates(db, sql, tables, statement.predicates)
    cq = _build_cq(db, tables, joins)
    ranking, descending = _resolve_ranking(sql, statement)
    columns, positions = _resolve_output(db, sql, tables, cq, statement.columns)
    return CompiledQuery(
        sql=sql,
        statement=statement,
        cq=cq,
        ranking=ranking,
        descending=descending,
        k=statement.limit,
        output_columns=columns,
        output_positions=positions,
        filters=tuple(filters),
        alias_to_relation={t.name: t.relation for t in tables},
    )


# ----------------------------------------------------------------------
# Tables and columns
# ----------------------------------------------------------------------
def _resolve_tables(
    db: Database, sql: str, tables: tuple[TableRef, ...]
) -> list[TableRef]:
    seen: dict[str, TableRef] = {}
    for table in tables:
        if table.relation not in db:
            raise SqlError(
                f"unknown relation {table.relation!r}; catalog has: "
                f"{', '.join(db.names()) or '(empty database)'}",
                sql,
                table.pos,
            )
        if table.name in seen:
            raise SqlError(
                f"duplicate table name {table.name!r} in FROM; give the "
                "second occurrence an alias (self-joins need one alias per "
                "occurrence)",
                sql,
                table.pos,
            )
        seen[table.name] = table
    return list(tables)


def _resolve_column(
    db: Database,
    sql: str,
    tables: list[TableRef],
    ref: ColumnRef,
) -> tuple[str, str]:
    """Resolve to ``(alias, column)``; unqualified names must be unique."""
    if ref.table is not None:
        for table in tables:
            if table.name == ref.table:
                schema = db[table.relation].schema
                if ref.column not in schema:
                    raise SqlError(
                        f"relation {table.relation!r} (as {table.name!r}) has "
                        f"no column {ref.column!r}; its schema is "
                        f"({', '.join(schema)})",
                        sql,
                        ref.pos,
                    )
                return table.name, ref.column
        raise SqlError(
            f"unknown table {ref.table!r}; FROM introduces: "
            f"{', '.join(t.name for t in tables)}",
            sql,
            ref.pos,
        )
    owners = [t for t in tables if ref.column in db[t.relation].schema]
    if not owners:
        raise SqlError(
            f"no FROM table has a column {ref.column!r}", sql, ref.pos
        )
    if len(owners) > 1:
        raise SqlError(
            f"column {ref.column!r} is ambiguous; qualify it with one of: "
            f"{', '.join(t.name for t in owners)}",
            sql,
            ref.pos,
        )
    return owners[0].name, ref.column


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def _classify_predicates(
    db: Database,
    sql: str,
    tables: list[TableRef],
    predicates: tuple[Comparison, ...],
) -> tuple[list[tuple[tuple[str, str], tuple[str, str]]], list[Filter]]:
    joins: list[tuple[tuple[str, str], tuple[str, str]]] = []
    filters: list[Filter] = []
    for predicate in predicates:
        left_is_column = isinstance(predicate.left, ColumnRef)
        right_is_column = isinstance(predicate.right, ColumnRef)
        if left_is_column and right_is_column:
            if predicate.op != "=":
                raise SqlError(
                    f"theta-joins ({predicate.op} between columns) are not "
                    "supported; join predicates must be equalities",
                    sql,
                    predicate.pos,
                )
            joins.append(
                (
                    _resolve_column(db, sql, tables, predicate.left),
                    _resolve_column(db, sql, tables, predicate.right),
                )
            )
        elif left_is_column or right_is_column:
            column = predicate.left if left_is_column else predicate.right
            literal = predicate.right if left_is_column else predicate.left
            op = predicate.op
            if not left_is_column:  # literal op column — flip the comparison
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            alias, name = _resolve_column(db, sql, tables, column)
            # A Parameter flows through as itself: the filter stays a
            # template until bind_compiled substitutes the bound value.
            value = (
                literal.value if isinstance(literal, Literal) else literal
            )
            filters.append(Filter(alias, name, op, value))
        else:
            raise SqlError(
                "predicates between two literals (or two parameters) are "
                "not supported",
                sql,
                predicate.pos,
            )
    return joins, filters


# ----------------------------------------------------------------------
# CQ construction (union-find over alias.column pairs)
# ----------------------------------------------------------------------
def _build_cq(
    db: Database,
    tables: list[TableRef],
    joins: list[tuple[tuple[str, str], tuple[str, str]]],
) -> ConjunctiveQuery:
    # All (alias, column) slots, in FROM order then schema order: this is
    # the first-appearance order that names each variable class.
    slots: list[tuple[str, str]] = []
    for table in tables:
        for column in db[table.relation].schema:
            slots.append((table.name, column))
    parent: dict[tuple[str, str], tuple[str, str]] = {s: s for s in slots}

    def find(slot: tuple[str, str]) -> tuple[str, str]:
        root = slot
        while parent[root] != root:
            root = parent[root]
        while parent[slot] != root:  # path compression
            parent[slot], slot = root, parent[slot]
        return root

    rank_order = {slot: i for i, slot in enumerate(slots)}
    for left, right in joins:
        root_l, root_r = find(left), find(right)
        if root_l == root_r:
            continue
        # Union by first appearance, so the class representative (and hence
        # the variable name) is the earliest slot in FROM order.
        keep, absorb = sorted((root_l, root_r), key=rank_order.__getitem__)
        parent[absorb] = keep

    def variable_name(slot: tuple[str, str]) -> str:
        alias, column = find(slot)
        return f"{alias}.{column}"

    atoms = [
        Atom(
            table.relation,
            tuple(
                variable_name((table.name, column))
                for column in db[table.relation].schema
            ),
        )
        for table in tables
    ]
    return ConjunctiveQuery(atoms, name="Sql")


# ----------------------------------------------------------------------
# Ranking and output schema
# ----------------------------------------------------------------------
def _resolve_ranking(
    sql: str, statement: SelectStatement
) -> tuple[RankingFunction, bool]:
    order = statement.order_by
    if order is None:
        return SUM, False
    ranking = RANKINGS[order.aggregate]
    if order.descending and ranking is not SUM:
        raise SqlError(
            f"DESC is only supported with sum(weight); {order.aggregate} has "
            "no exact heaviest-first enumeration in this engine",
            sql,
            order.pos,
        )
    return ranking, order.descending


def _resolve_output(
    db: Database,
    sql: str,
    tables: list[TableRef],
    cq: ConjunctiveQuery,
    columns: Optional[tuple[ColumnRef, ...]],
) -> tuple[tuple[str, ...], tuple[int, ...]]:
    if columns is None:  # SELECT *
        return tuple(cq.variables), tuple(range(len(cq.variables)))
    names: list[str] = []
    positions: list[int] = []
    # The analyzer names variables by class representative, so resolving a
    # selected column means finding the atom slot it occupies.
    slot_variable: dict[tuple[str, str], str] = {}
    for table, atom in zip(tables, cq.atoms):
        for column, variable in zip(db[table.relation].schema, atom.variables):
            slot_variable[(table.name, column)] = variable
    for ref in columns:
        alias, column = _resolve_column(db, sql, tables, ref)
        variable = slot_variable[(alias, column)]
        names.append(str(ref))
        positions.append(cq.variables.index(variable))
    return tuple(names), tuple(positions)
