"""Recursive-descent parser for the supported SQL subset.

Grammar (keywords case-insensitive)::

    statement   := (select | insert | delete | explain) [';'] EOF
    explain     := EXPLAIN [ANALYZE] select
    select      := SELECT select_list FROM table_list
                   [WHERE conjunction]
                   [ORDER BY order_key [ASC | DESC]]
                   [LIMIT integer]
    insert      := INSERT INTO identifier ['(' identifier (',' identifier)* ')']
                   VALUES value_row (',' value_row)*
    value_row   := '(' literal (',' literal)* ')'
    delete      := DELETE FROM identifier [WHERE conjunction]
    select_list := '*' | column (',' column)*
    table_list  := table_ref (join_tail)*
    join_tail   := ',' table_ref
                 | [INNER] JOIN table_ref [ON conjunction]
                 | CROSS JOIN table_ref
    table_ref   := identifier [[AS] identifier]
    conjunction := comparison (AND comparison)*
    comparison  := operand ('=' | '<>' | '!=' | '<' | '<=' | '>' | '>=') operand
    operand     := column | number | string | '?'
    column      := identifier ['.' identifier]
    order_key   := 'weight' | identifier '(' 'weight' ')'

``?`` is a positional bind parameter (numbered left to right); it may
stand for the literal side of a comparison or for the LIMIT count, and is
bound from the request's ``params`` vector at execution time.  Parameters
are SELECT-only: INSERT/DELETE statements reject them.

Everything outside the subset — OR, NOT, GROUP BY, HAVING, DISTINCT, outer
joins, set operations, subqueries, arithmetic — is rejected with a
position-annotated :class:`~repro.sql.errors.SqlError` explaining what the
subset supports, rather than a generic syntax error.
"""

from __future__ import annotations

from typing import Optional

from typing import Union

from repro.sql.errors import SqlError
from repro.sql.lexer import Token, tokenize
from repro.sql.nodes import (
    ColumnRef,
    Comparison,
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    Literal,
    Operand,
    OrderBy,
    Parameter,
    SelectStatement,
    TableRef,
)

#: ORDER BY aggregates and the ranking functions they select.
ORDER_AGGREGATES = ("sum", "max", "product", "prod", "lex")

#: Any statement the parser understands.
Statement = Union[
    SelectStatement, InsertStatement, DeleteStatement, ExplainStatement
]


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlError` on anything else."""
    statement = parse_any(sql)
    if isinstance(statement, ExplainStatement):
        raise SqlError(
            "expected a plain SELECT here; EXPLAIN goes through "
            "repro.sql.explain, EXPLAIN ANALYZE through "
            "repro.sql.explain_analyze (or the server's 'explain' op)",
            sql,
            statement.pos,
        )
    if not isinstance(statement, SelectStatement):
        raise SqlError(
            "expected a SELECT statement here; mutations (INSERT/DELETE) go "
            "through repro.sql.mutate or the server's 'mutate' op",
            sql,
            statement.pos,
        )
    return statement


def parse_any(sql: str) -> Statement:
    """Parse one statement of any supported kind (SELECT/INSERT/DELETE)."""
    return _Parser(sql).parse_any()


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        # Positional `?` markers are numbered in appearance order.
        self.parameters = 0

    # -- token plumbing ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SqlError:
        token = token or self.current
        return SqlError(message, self.sql, token.pos)

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected {word}, found {self.current.describe()}")
        return self.advance()

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self.error(f"expected {op!r}, found {self.current.describe()}")
        return self.advance()

    def expect_ident(self, what: str) -> Token:
        if self.current.kind != "ident":
            if self.current.kind == "keyword":
                raise self.error(
                    f"expected {what}, found reserved word {self.current.text}"
                )
            raise self.error(f"expected {what}, found {self.current.describe()}")
        return self.advance()

    # -- grammar -----------------------------------------------------------
    def parse_any(self) -> "Statement":
        if self.current.is_keyword("EXPLAIN"):
            return self.parse_explain()
        if self.current.is_keyword("INSERT"):
            return self.parse_insert()
        if self.current.is_keyword("DELETE"):
            return self.parse_delete()
        if self.current.is_keyword("UPDATE"):
            raise self.error(
                "UPDATE is not supported; express it as DELETE FROM ... WHERE "
                "followed by INSERT INTO"
            )
        return self.parse_statement()

    def parse_explain(self) -> ExplainStatement:
        start = self.expect_keyword("EXPLAIN")
        analyze = False
        if self.current.is_keyword("ANALYZE"):
            self.advance()
            analyze = True
        if not self.current.is_keyword("SELECT"):
            raise self.error(
                "EXPLAIN covers SELECT statements only (mutations commit "
                "unconditionally; there is no plan to show)"
            )
        return ExplainStatement(
            statement=self.parse_statement(), analyze=analyze, pos=start.pos
        )

    def _expect_end(self) -> None:
        """Consume an optional trailing ``;`` and require end of input."""
        if self.current.is_op(";"):
            self.advance()
        if self.current.kind != "eof":
            raise self.error(
                f"unexpected {self.current.describe()} after the statement"
            )

    def parse_insert(self) -> InsertStatement:
        start = self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        relation = self.expect_ident("relation name")
        columns: Optional[tuple[str, ...]] = None
        if self.current.is_op("("):
            self.advance()
            names = [self.parse_insert_column()]
            while self.current.is_op(","):
                self.advance()
                names.append(self.parse_insert_column())
            self.expect_op(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.current.is_op(","):
            self.advance()
            rows.append(self.parse_value_row())
        self._expect_end()
        return InsertStatement(
            relation=relation.text,
            columns=columns,
            rows=tuple(rows),
            pos=start.pos,
        )

    def parse_insert_column(self) -> str:
        """One INSERT column-list entry (a bare column name)."""
        token = self.expect_ident("column name")
        if self.current.is_op("."):
            raise self.error(
                "INSERT column lists take bare column names (the target "
                "relation is already fixed)"
            )
        return token.text

    def parse_value_row(self) -> tuple[Literal, ...]:
        self.expect_op("(")
        values = [self.parse_value_literal()]
        while self.current.is_op(","):
            self.advance()
            values.append(self.parse_value_literal())
        self.expect_op(")")
        return tuple(values)

    def parse_value_literal(self) -> Literal:
        token = self.current
        if token.is_op("?"):
            raise self.error(
                "bind parameters (?) are not supported in INSERT VALUES; "
                "mutations commit literal rows"
            )
        if token.kind == "ident" or token.kind == "keyword":
            raise self.error(
                f"VALUES entries must be number or string literals, found "
                f"{token.describe()} (expressions and column references are "
                "not supported)"
            )
        operand = self.parse_operand()
        assert isinstance(operand, Literal)  # idents were rejected above
        return operand

    def parse_delete(self) -> DeleteStatement:
        start = self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        relation = self.expect_ident("relation name")
        if self.current.kind == "ident" or self.current.is_keyword("AS"):
            raise self.error(
                "DELETE does not take table aliases; predicates refer to "
                "the relation's own column names"
            )
        predicates: tuple[Comparison, ...] = ()
        if self.current.is_keyword("WHERE"):
            self.advance()
            predicates = tuple(self.parse_conjunction())
        self._expect_end()
        return DeleteStatement(
            relation=relation.text, predicates=predicates, pos=start.pos
        )

    def parse_statement(self) -> SelectStatement:
        start = self.expect_keyword("SELECT")
        self._reject_unsupported_select_modifiers()
        columns = self.parse_select_list()
        self.expect_keyword("FROM")
        tables, on_predicates = self.parse_table_list()
        predicates = list(on_predicates)
        if self.current.is_keyword("WHERE"):
            self.advance()
            predicates.extend(self.parse_conjunction())
        order_by = self.parse_order_by()
        limit = self.parse_limit()
        self._reject_trailers()
        self._expect_end()
        return SelectStatement(
            columns=columns,
            tables=tuple(tables),
            predicates=tuple(predicates),
            order_by=order_by,
            limit=limit,
            pos=start.pos,
        )

    def _reject_unsupported_select_modifiers(self) -> None:
        if self.current.is_keyword("DISTINCT"):
            raise self.error(
                "DISTINCT is not supported: ranked enumeration is over full "
                "join results (projection keeps duplicates)"
            )

    def parse_select_list(self) -> Optional[tuple[ColumnRef, ...]]:
        if self.current.is_op("*"):
            star = self.advance()
            if self.current.is_op(","):
                raise self.error(
                    "'*' cannot be combined with other select items", star
                )
            return None
        columns = [self.parse_column("select column")]
        while self.current.is_op(","):
            self.advance()
            columns.append(self.parse_column("select column"))
        return tuple(columns)

    def parse_column(self, what: str) -> ColumnRef:
        first = self.expect_ident(what)
        if self.current.is_op("("):
            raise self.error(
                f"function calls are not supported in a {what}; aggregates "
                "are only allowed in ORDER BY (sum/max/product/lex of weight)",
                first,
            )
        if self.current.is_op("."):
            self.advance()
            second = self.expect_ident("column name")
            return ColumnRef(first.text, second.text, first.pos)
        return ColumnRef(None, first.text, first.pos)

    def parse_table_list(self) -> tuple[list[TableRef], list[Comparison]]:
        tables = [self.parse_table_ref()]
        predicates: list[Comparison] = []
        while True:
            if self.current.is_op(","):
                self.advance()
                tables.append(self.parse_table_ref())
                continue
            if self.current.is_keyword("LEFT", "RIGHT", "FULL", "OUTER"):
                raise self.error(
                    "outer joins are not supported; the subset covers inner "
                    "equality joins (JOIN ... ON or comma-list + WHERE)"
                )
            if self.current.is_keyword("NATURAL"):
                raise self.error(
                    "NATURAL JOIN is not supported; spell the join condition "
                    "with ON or WHERE"
                )
            if self.current.is_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                tables.append(self.parse_table_ref())
                continue
            if self.current.is_keyword("INNER"):
                self.advance()
                if not self.current.is_keyword("JOIN"):
                    raise self.error("expected JOIN after INNER")
            if self.current.is_keyword("JOIN"):
                self.advance()
                tables.append(self.parse_table_ref())
                if self.current.is_keyword("USING"):
                    raise self.error(
                        "JOIN ... USING is not supported; spell the condition "
                        "with ON (t1.col = t2.col)"
                    )
                if self.current.is_keyword("ON"):
                    self.advance()
                    predicates.extend(self.parse_conjunction())
                continue
            return tables, predicates

    def parse_table_ref(self) -> TableRef:
        if self.current.is_op("("):
            raise self.error(
                "subqueries are not supported; FROM takes plain relation names"
            )
        name = self.expect_ident("relation name")
        alias: Optional[str] = None
        if self.current.is_keyword("AS"):
            self.advance()
            alias = self.expect_ident("alias").text
        elif self.current.kind == "ident":
            alias = self.advance().text
        return TableRef(name.text, alias, name.pos)

    def parse_conjunction(self) -> list[Comparison]:
        predicates = [self.parse_comparison()]
        while True:
            if self.current.is_keyword("AND"):
                self.advance()
                predicates.append(self.parse_comparison())
                continue
            if self.current.is_keyword("OR"):
                raise self.error(
                    "OR is not supported; predicates must be a conjunction "
                    "of equality joins and constant filters"
                )
            if self.current.is_keyword("NOT"):
                raise self.error("NOT is not supported")
            return predicates

    def parse_comparison(self) -> Comparison:
        left = self.parse_operand()
        if not self.current.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            raise self.error(
                f"expected a comparison operator, found {self.current.describe()}"
            )
        op_token = self.advance()
        op = "<>" if op_token.text == "!=" else op_token.text
        right = self.parse_operand()
        return Comparison(left, op, right, op_token.pos)

    def parse_operand(self) -> Operand:
        token = self.current
        if token.is_keyword("NOT"):
            raise self.error("NOT is not supported")
        if token.is_op("?"):
            self.advance()
            index = self.parameters
            self.parameters += 1
            return Parameter(index, token.pos)
        sign = 1
        if token.is_op("-", "+"):
            # A literal sign; `--` would lex as a comment, so write `- 1`
            # or `-1` (single minus binds to the number).
            self.advance()
            sign = -1 if token.text == "-" else 1
            if self.current.kind != "number":
                raise self.error(
                    f"expected a number after {token.text!r} (arithmetic "
                    "expressions are not supported)",
                    token,
                )
            token = self.current
        if token.kind == "number":
            self.advance()
            text = token.text
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(sign * value, token.pos)
        if token.kind == "string":
            self.advance()
            return Literal(token.text, token.pos)
        if token.kind == "ident":
            return self.parse_column("column reference")
        if token.is_op("("):
            raise self.error(
                "parenthesized expressions and subqueries are not supported "
                "in predicates"
            )
        raise self.error(f"expected a column or literal, found {token.describe()}")

    def parse_order_by(self) -> Optional[OrderBy]:
        if self.current.is_keyword("GROUP"):
            raise self.error(
                "GROUP BY is not supported; see repro.factorized for "
                "aggregates over join results"
            )
        if self.current.is_keyword("HAVING"):
            raise self.error("HAVING is not supported")
        if not self.current.is_keyword("ORDER"):
            return None
        start = self.advance()
        self.expect_keyword("BY")
        aggregate = self._parse_order_key()
        descending = False
        if self.current.is_keyword("ASC"):
            self.advance()
        elif self.current.is_keyword("DESC"):
            self.advance()
            descending = True
        if self.current.is_op(","):
            raise self.error(
                "multiple ORDER BY keys are not supported; ranking is by one "
                "aggregate of the tuple weights"
            )
        return OrderBy(aggregate=aggregate, descending=descending, pos=start.pos)

    def _parse_order_key(self) -> str:
        token = self.expect_ident("ORDER BY key")
        word = token.text.lower()
        if self.current.is_op("("):
            if word not in ORDER_AGGREGATES:
                raise self.error(
                    f"unknown ranking aggregate {token.text!r}; supported: "
                    "sum, max, product, lex",
                    token,
                )
            self.advance()
            argument = self.expect_ident("aggregate argument")
            if argument.text.lower() != "weight":
                raise self.error(
                    "ranking aggregates take the implicit tuple 'weight' "
                    "column; arbitrary expressions are not supported",
                    argument,
                )
            self.expect_op(")")
            return "product" if word == "prod" else word
        if word != "weight":
            raise self.error(
                "ORDER BY ranks by the implicit tuple 'weight' column: use "
                "ORDER BY weight, or sum/max/product/lex(weight)",
                token,
            )
        return "sum"

    def parse_limit(self) -> Optional["int | Parameter"]:
        if not self.current.is_keyword("LIMIT"):
            return None
        self.advance()
        token = self.current
        k: "int | Parameter"
        if token.is_op("?"):
            self.advance()
            k = Parameter(self.parameters, token.pos)
            self.parameters += 1
        else:
            if token.kind != "number" or not token.text.isdigit():
                raise self.error("LIMIT takes a positive integer (or ?)")
            self.advance()
            k = int(token.text)
            if k < 1:
                raise SqlError("LIMIT must be >= 1", self.sql, token.pos)
        if self.current.is_keyword("OFFSET"):
            raise self.error(
                "OFFSET is not supported; pull from the ranked stream and "
                "skip client-side instead"
            )
        return k

    def _reject_trailers(self) -> None:
        for word, hint in (
            ("UNION", "set operations are not supported"),
            ("EXCEPT", "set operations are not supported"),
            ("INTERSECT", "set operations are not supported"),
            ("GROUP", "GROUP BY is not supported"),
            ("HAVING", "HAVING is not supported"),
        ):
            if self.current.is_keyword(word):
                raise self.error(hint)
