"""Command-line SQL shell: ``repro-sql``.

Runs one statement against a directory of CSV relations (the
:mod:`repro.data.io` format — header row, optional trailing ``__weight__``
column) or against a built-in demo database, and prints the ranked results
or the routed plan::

    repro-sql --demo graph "SELECT * FROM E AS e1 JOIN E AS e2 \\
        ON e1.dst = e2.src ORDER BY weight LIMIT 5"
    repro-sql --data ./relations --explain "SELECT ... LIMIT 10"

With no SQL argument the statement is read from stdin, so the command
composes with heredocs and pipes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.data.database import Database
from repro.data.generators import (
    path_database,
    random_graph_database,
    star_database,
)
from repro.data.io import load_relation
from repro.query.cq import QueryError
from repro.sql.errors import SqlError

DEMOS = {
    "graph": lambda seed: random_graph_database(
        num_edges=2000, num_nodes=300, seed=seed
    ),
    "path": lambda seed: path_database(length=3, size=500, domain=60, seed=seed),
    "star": lambda seed: star_database(arms=3, size=500, domain=60, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sql",
        description="Ranked top-k SQL over weighted relations "
        "(any-k ranked enumeration instead of join-then-sort).",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--data",
        metavar="DIR",
        help="directory of <relation>.csv files (header row, optional "
        "trailing __weight__ column)",
    )
    source.add_argument(
        "--demo",
        choices=sorted(DEMOS),
        help="use a built-in demo database instead of --data",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="seed for --demo databases"
    )
    parser.add_argument(
        "--engine",
        help="force an engine (part:lazy, part:eager, rec, batch, "
        "rank_join, ...) instead of the cost-based router",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the routed plan instead of executing",
    )
    parser.add_argument(
        "sql",
        nargs="*",
        help="one or more SQL statements, run in order against the same "
        "database (INSERT/DELETE mutate it for the following statements); "
        "omitted or '-': read one statement from stdin",
    )
    return parser


def load_directory(directory: str) -> Database:
    root = Path(directory)
    if not root.is_dir():
        raise SystemExit(f"repro-sql: {directory!r} is not a directory")
    db = Database()
    for path in sorted(root.glob("*.csv")):
        db.add(load_relation(path))
    if len(db) == 0:
        raise SystemExit(f"repro-sql: no *.csv relations found in {directory!r}")
    return db


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Import here so `repro-sql --help` stays fast and dependency-light.
    import repro.sql

    if args.data:
        db = load_directory(args.data)
    else:
        db = DEMOS[args.demo or "graph"](args.seed)

    statements = list(args.sql)
    if not statements or statements == ["-"]:
        statements = [sys.stdin.read()]
    if not any(s.strip() for s in statements):
        print("repro-sql: empty statement", file=sys.stderr)
        return 2

    # Mutations need the copy-on-write layer; statements after one see
    # the newest snapshot, exactly like the server's mutate op.
    from repro.dynamic import VersionedDatabase
    from repro.sql.nodes import ExplainStatement, SelectStatement
    from repro.sql.parser import parse_any

    vdb = VersionedDatabase(db, copy=False)
    try:
        for sql in statements:
            statement = parse_any(sql)
            if isinstance(statement, ExplainStatement):
                # EXPLAIN renders the plan; EXPLAIN ANALYZE also runs the
                # statement and reports stage/operator timings and the
                # anytime-delay profile (repro.sql.explain dispatches).
                print(repro.sql.explain(vdb.snapshot(), sql, engine=args.engine))
                continue
            if not isinstance(statement, SelectStatement):
                # Mutations apply even under --explain: later statements'
                # plans must describe the data they would really run on.
                outcome = repro.sql.mutate(vdb, sql)
                prefix = "-- mutation applied (no plan): " if args.explain else "-- "
                print(f"{prefix}{outcome}")
                continue
            snapshot = vdb.snapshot()
            if args.explain:
                print(repro.sql.explain(snapshot, sql, engine=args.engine))
                continue
            result = repro.sql.query(snapshot, sql, engine=args.engine)
            print(f"-- engine: {result.plan.engine}")
            print(" | ".join(result.columns) + " | weight")
            for row, weight in result:
                rendered = " | ".join(str(value) for value in row)
                shown = f"{weight:.6g}" if isinstance(weight, float) else str(weight)
                print(f"{rendered} | {shown}")
        return 0
    except (SqlError, QueryError) as error:
        print(f"repro-sql: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (head, less) closed the pipe mid-stream; the
        # anytime contract makes that a normal way to stop.  Detach stdout
        # so interpreter shutdown does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
