"""Typed AST for the supported SQL subset.

The shapes mirror the grammar in :mod:`repro.sql.parser`: one
:class:`SelectStatement` per query, with column references, table
references, comparison predicates, and an optional ORDER BY / LIMIT tail.
Every node keeps the character offset of the token that introduced it, so
semantic analysis can raise :class:`~repro.sql.errors.SqlError` pointing at
the exact spot in the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class ColumnRef:
    """``column`` or ``table.column``."""

    table: Optional[str]
    column: str
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A number or string constant."""

    value: Union[int, float, str]
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter:
    """A positional bind parameter (``?``), numbered in appearance order.

    Two sources produce these: explicit ``?`` placeholders typed by the
    user (bound from the request's ``params`` vector), and literals the
    plan cache lifts out of comparison predicates / LIMIT so that every
    instantiation of a statement template shares one cached plan.
    """

    index: int
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return "?"


Operand = Union[ColumnRef, Literal, Parameter]

#: Comparison operators of the subset (``!=`` is normalized to ``<>``).
COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with ``op`` in :data:`COMPARISONS`."""

    left: Operand
    op: str
    right: Operand
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableRef:
    """``relation [AS alias]`` in the FROM list."""

    relation: str
    alias: Optional[str]
    pos: int = field(default=0, compare=False)

    @property
    def name(self) -> str:
        """The name this table is referred to by (alias, else relation)."""
        return self.alias or self.relation

    def __str__(self) -> str:
        return f"{self.relation} AS {self.alias}" if self.alias else self.relation


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY <aggregate>(weight) [ASC|DESC]``.

    ``aggregate`` is one of ``sum | max | product | lex``; a bare
    ``ORDER BY weight`` parses as ``sum``.
    """

    aggregate: str
    descending: bool = False
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"{self.aggregate}(weight) {direction}"


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO relation [(col, ...)] VALUES (lit, ...), ...``.

    ``columns is None`` means "values in schema order, weight 0".  When
    given, the column list must cover the relation's schema (any order)
    and may additionally name the implicit ``weight`` pseudo-column.
    """

    relation: str
    columns: Optional[tuple[str, ...]]
    rows: tuple[tuple[Literal, ...], ...]
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        cols = "" if self.columns is None else f" ({', '.join(self.columns)})"
        values = ", ".join(
            "(" + ", ".join(str(v) for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.relation}{cols} VALUES {values}"


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE FROM relation [WHERE constant filters]``.

    Predicates must compare a column of the target relation to a
    literal — deletes never join.
    """

    relation: str
    predicates: tuple[Comparison, ...] = ()
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        where = (
            " WHERE " + " AND ".join(map(str, self.predicates))
            if self.predicates
            else ""
        )
        return f"DELETE FROM {self.relation}{where}"


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``.

    Plain ``EXPLAIN`` renders the routed plan without executing;
    ``EXPLAIN ANALYZE`` additionally runs the statement to completion
    (honoring its LIMIT) and reports per-operator wall time, tuples
    produced, cache/shard attribution, and the anytime-delay profile
    (see :mod:`repro.obs.analyze`).
    """

    statement: "SelectStatement"
    analyze: bool = False
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        prefix = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        return f"{prefix} {self.statement}"


@dataclass(frozen=True)
class SelectStatement:
    """One parsed ``SELECT`` statement.

    ``columns is None`` means ``SELECT *``.  ``predicates`` pools the ON and
    WHERE conjuncts (they are equivalent for inner equality joins).
    """

    columns: Optional[tuple[ColumnRef, ...]]
    tables: tuple[TableRef, ...]
    predicates: tuple[Comparison, ...] = ()
    order_by: Optional[OrderBy] = None
    limit: Optional[Union[int, Parameter]] = None
    pos: int = field(default=0, compare=False)

    def __str__(self) -> str:
        cols = "*" if self.columns is None else ", ".join(map(str, self.columns))
        parts = [f"SELECT {cols}", "FROM " + ", ".join(map(str, self.tables))]
        if self.predicates:
            parts.append("WHERE " + " AND ".join(map(str, self.predicates)))
        if self.order_by is not None:
            parts.append(f"ORDER BY {self.order_by}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)
