"""Declarative SQL front-end for ranked enumeration.

The top-k idiom every DBMS user writes —

    SELECT * FROM ... JOIN ... ORDER BY weight LIMIT k

— compiled down to the library's any-k machinery instead of
join-then-sort.  The pipeline is classic: hand-rolled lexer
(:mod:`repro.sql.lexer`) → recursive-descent parser
(:mod:`repro.sql.parser`) → typed AST (:mod:`repro.sql.nodes`) → semantic
analysis against the database catalog (:mod:`repro.sql.analyzer`) →
cost-based engine routing (:mod:`repro.engine`) → execution.

Supported subset: ``SELECT <cols | *> FROM r1 [AS a] {JOIN r2 ON … | , r2}
[WHERE equality joins AND constant filters] [ORDER BY
weight|sum/max/product/lex(weight) [ASC|DESC]] [LIMIT k]``, plus the
mutations ``INSERT INTO r [(cols...)] VALUES ...`` and ``DELETE FROM r
[WHERE constant filters]`` through :func:`mutate` (which needs a
:class:`repro.dynamic.VersionedDatabase`), and ``EXPLAIN [ANALYZE]
<select>`` through :func:`explain` / :func:`explain_analyze`.
Everything else fails with a position-annotated :class:`SqlError`.

Quickstart::

    from repro.data.generators import random_graph_database
    import repro.sql

    db = random_graph_database(num_edges=2000, num_nodes=300, seed=1)
    top = repro.sql.query(db, '''
        SELECT * FROM E AS e1 JOIN E AS e2 ON e1.dst = e2.src
                 JOIN E AS e3 ON e2.dst = e3.src
                 JOIN E AS e4 ON e3.dst = e4.src AND e4.dst = e1.src
        ORDER BY weight LIMIT 10
    ''')
    for row, weight in top:        # the 10 lightest 4-cycles
        print(weight, row)
    print(repro.sql.explain(db, "SELECT ..."))   # the routed plan
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.anyk.api import METHODS
from repro.data.database import Database
from repro.engine.executor import execute
from repro.engine.planner import Plan, plan_compiled
from repro.sql.analyzer import CompiledQuery, analyze
from repro.sql.errors import SqlError
from repro.sql.nodes import SelectStatement
from repro.sql.parser import parse
from repro.util.counters import Counters

#: Engines accepted as an override (router methods + the middleware).
ENGINES: tuple[str, ...] = METHODS + ("rank_join",)


def _check_engine(engine: Optional[str]) -> None:
    if engine is not None and engine not in ENGINES:
        raise SqlError(
            f"unknown engine {engine!r}; known engines: {', '.join(ENGINES)}"
        )


class SqlResult:
    """A lazily-executed ranked result stream.

    Iterating yields ``(row, weight)`` pairs exactly as
    :func:`repro.anyk.rank_enumerate` would for the lowered query;
    ``columns`` names the row fields and ``plan`` is the routing decision.
    """

    def __init__(
        self,
        compiled: CompiledQuery,
        plan: Plan,
        stream: Iterator[tuple[tuple, Any]],
    ) -> None:
        self.compiled = compiled
        self.plan = plan
        self.columns: tuple[str, ...] = compiled.output_columns
        self._stream = stream

    def __iter__(self) -> "SqlResult":
        return self

    def __next__(self) -> tuple[tuple, Any]:
        return next(self._stream)

    def fetchall(self) -> list[tuple[tuple, Any]]:
        """Drain the remaining stream into a list."""
        return list(self._stream)

    def __repr__(self) -> str:
        return (
            f"SqlResult(columns={self.columns!r}, engine={self.plan.engine!r})"
        )


def query(
    db: Database,
    sql: str,
    engine: Optional[str] = None,
    counters: Optional[Counters] = None,
) -> SqlResult:
    """Compile, route, and execute ``sql`` over ``db``.

    ``engine`` overrides the router (any :data:`repro.anyk.METHODS` entry
    or ``"rank_join"``); omitted, the cost-based router decides.
    """
    _check_engine(engine)
    compiled = analyze(db, sql)
    plan = plan_compiled(db, compiled, engine=engine)
    stream = execute(db, compiled, plan, counters=counters)
    return SqlResult(compiled, plan, stream)


def mutate(target, sql: str):
    """Compile and commit one ``INSERT INTO`` / ``DELETE FROM`` statement.

    ``target`` must be a :class:`repro.dynamic.VersionedDatabase` — the
    copy-on-write layer is what keeps already-open ranked streams
    snapshot-isolated from the write.  Returns the
    :class:`repro.dynamic.MutationResult` (kind, relation, row count, and
    the newly published version id).
    """
    from repro.dynamic import VersionedDatabase
    from repro.engine.executor import apply_mutation
    from repro.sql.analyzer import analyze_mutation

    if not isinstance(target, VersionedDatabase):
        raise SqlError(
            "mutations need a repro.dynamic.VersionedDatabase (wrap the "
            "Database once: VersionedDatabase(db)); mutating a plain "
            "Database in place would corrupt open ranked streams"
        )
    compiled = analyze_mutation(target.snapshot(), sql)
    return apply_mutation(target, compiled)


def render_explain(compiled: CompiledQuery, plan: Plan) -> str:
    """EXPLAIN text for an already-compiled, already-routed statement.

    Shared by :func:`explain` and the server's ``explain`` op (which
    renders from its plan cache instead of re-analyzing).
    """
    lines = [f"sql:      {compiled.statement}"]
    if compiled.filters:
        lines.append(
            "filters:  " + "; ".join(str(f) for f in compiled.filters)
        )
    if compiled.is_projection:
        lines.append(
            "project:  " + ", ".join(compiled.output_columns)
        )
    lines.append(plan.describe())
    return "\n".join(lines)


def explain(db: Database, sql: str, engine: Optional[str] = None) -> str:
    """The routed plan for ``sql``, rendered as text (no execution).

    ``sql`` may carry an ``EXPLAIN`` prefix (it is stripped); an
    ``EXPLAIN ANALYZE`` prefix delegates to :func:`explain_analyze`,
    which *does* execute the statement.
    """
    from repro.sql.nodes import ExplainStatement
    from repro.sql.parser import parse_any

    _check_engine(engine)
    statement = parse_any(sql)
    if isinstance(statement, ExplainStatement):
        if statement.analyze:
            return explain_analyze(db, sql, engine=engine)
        statement = statement.statement
    if not isinstance(statement, SelectStatement):
        raise SqlError(
            "EXPLAIN applies to SELECT statements only", sql, statement.pos
        )
    from repro.sql.analyzer import analyze_statement

    compiled = analyze_statement(db, sql, statement)
    plan = plan_compiled(db, compiled, engine=engine)
    return render_explain(compiled, plan)


def explain_analyze(
    db: Database, sql: str, engine: Optional[str] = None
) -> str:
    """EXPLAIN ANALYZE: run ``sql`` to completion, report where the time
    went — per-stage and per-operator wall time, tuples produced, and
    the in-engine anytime-delay profile (TTF / TT(k) / inter-result
    delay).  See :mod:`repro.obs.analyze` for the report structure;
    :func:`repro.obs.analyze.run_analyze` returns it as a dict.
    """
    from repro.obs.analyze import render_analyze, run_analyze

    return render_analyze(run_analyze(db, sql, engine=engine))


__all__ = [
    "CompiledQuery",
    "Plan",
    "SelectStatement",
    "SqlError",
    "SqlResult",
    "analyze",
    "explain",
    "explain_analyze",
    "mutate",
    "parse",
    "query",
    "render_explain",
]
