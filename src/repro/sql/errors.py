"""Position-annotated SQL diagnostics.

Every error raised by the SQL front-end — lexing, parsing, semantic
analysis — is a :class:`SqlError` carrying the offending source text and a
character offset, and renders gcc-style: the message, the source line, and
a caret pointing at the offending token.  Unsupported-construct errors say
*what* the supported subset is, so the diagnostic doubles as documentation.
"""

from __future__ import annotations

from typing import Optional


class SqlError(ValueError):
    """A lexing, parsing or semantic error in a SQL statement."""

    def __init__(
        self, message: str, sql: Optional[str] = None, pos: Optional[int] = None
    ) -> None:
        self.message = message
        self.sql = sql
        self.pos = pos
        super().__init__(self._render())

    def _render(self) -> str:
        if self.sql is None or self.pos is None:
            return self.message
        line_number, column, line = locate(self.sql, self.pos)
        caret = " " * column + "^"
        return (
            f"{self.message} (line {line_number}, column {column + 1})\n"
            f"    {line}\n"
            f"    {caret}"
        )


def locate(sql: str, pos: int) -> tuple[int, int, str]:
    """``(1-based line, 0-based column, line text)`` of offset ``pos``."""
    pos = max(0, min(pos, len(sql)))
    consumed = 0
    lines = sql.splitlines() or [""]
    for line_number, line in enumerate(lines, start=1):
        if pos <= consumed + len(line):
            return line_number, pos - consumed, line
        consumed += len(line) + 1  # the newline
    last = lines[-1]
    return len(lines), len(last), last
