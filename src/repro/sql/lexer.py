"""Hand-rolled SQL tokenizer.

Produces a flat list of :class:`Token` objects with character offsets into
the source (the raw material for :class:`~repro.sql.errors.SqlError`
diagnostics).  Keywords are recognized case-insensitively and tokenized
with an uppercase ``text``; identifiers keep their spelling.  ``--`` line
comments are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.errors import SqlError

#: Reserved words of the supported subset plus the constructs we refuse
#: with a targeted diagnostic (GROUP, HAVING, ...).  Tokenizing them as
#: keywords keeps them from being mistaken for table or column names.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "JOIN", "ON", "AS", "AND", "OR", "NOT",
        "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "GROUP", "HAVING",
        "DISTINCT", "UNION", "EXCEPT", "INTERSECT", "LEFT", "RIGHT", "FULL",
        "OUTER", "INNER", "CROSS", "NATURAL", "USING",
        "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
        "EXPLAIN", "ANALYZE",
    }
)

#: Multi-character operators first so maximal munch works.  ``-`` and
#: ``+`` only appear as literal signs (``--`` starts a comment instead).
#: ``?`` is the positional bind-parameter marker of prepared statements.
OPERATORS = (
    "<=", ">=", "<>", "!=", "=", "<", ">", ",", ".", "(", ")", ";", "*",
    "-", "+", "?",
)


@dataclass(frozen=True)
class Token:
    """One lexical unit: kind, text, and character offset in the source."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
    text: str
    pos: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.text in words

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def describe(self) -> str:
        return "end of input" if self.kind == "eof" else repr(self.text)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlError` on illegal characters."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                j = i + 1
                if j < n and sql[j] in "+-":
                    j += 1
                if j < n and sql[j].isdigit():
                    i = j
                    while i < n and sql[i].isdigit():
                        i += 1
            text = sql[start:i]
            if text.count(".") > 1:
                raise SqlError(f"malformed number {text!r}", sql, start)
            tokens.append(Token("number", text, start))
            continue
        if ch == "'":
            start = i
            i += 1
            value = []
            while True:
                if i >= n:
                    raise SqlError("unterminated string literal", sql, start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # '' escapes a quote
                        value.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                value.append(sql[i])
                i += 1
            tokens.append(Token("string", "".join(value), start))
            continue
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                break
        else:
            raise SqlError(f"illegal character {ch!r}", sql, i)
    tokens.append(Token("eof", "", n))
    return tokens
