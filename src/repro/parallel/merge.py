"""Lazy k-way merge of ranked (row, weight) streams.

Each input stream must be nondecreasing in weight with equal-weight runs
already in :func:`~repro.anyk.ranking.solution_tie_key` order (what
:func:`~repro.anyk.ranking.stabilize_ties` guarantees, and what every
shard stream is).  The merge holds one head element per live stream in a
binary heap ordered by ``(weight, tie_key(row), stream_index)`` — the
same total order a serial run emits, so merging the shards of a
partitioned database reproduces the serial stream *byte-identically*:
the answer sets are disjoint by the sharding argument, the weights agree
because per-answer folds are computed by structurally identical join
trees, and ties resolve by tuple identity on both sides.

The merge is an ordinary generator: pulling one result pulls at most one
replacement head from one input, so the anytime property (and server
pagination through :class:`~repro.anyk.api.PausableStream`) composes
through it unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

from repro.anyk.ranking import solution_tie_key


def merge_ranked_streams(
    streams: Iterable[Iterator[tuple[tuple, Any]]],
    tie_key: Callable[[tuple], Any] = solution_tie_key,
) -> Iterator[tuple[tuple, Any]]:
    """Merge ranked streams into one globally ranked stream.

    Yields ``(row, weight)`` in nondecreasing weight order with
    deterministic ``tie_key`` tie-breaking.  The trailing stream index in
    the heap entry is a formality: two *distinct* streams can tie on both
    weight and row only when the same row occurs as a bag duplicate, and
    then either emission order is the same stream of bytes — the index
    just keeps the comparison from ever reaching non-comparable payload.
    """
    iterators = [iter(stream) for stream in streams]
    heap: list[tuple[Any, Any, int, tuple]] = []
    for index, iterator in enumerate(iterators):
        head = next(iterator, None)
        if head is not None:
            row, weight = head
            heap.append((weight, tie_key(row), index, row))
    heapq.heapify(heap)
    while heap:
        weight, _, index, row = heap[0]
        yield row, weight
        head = next(iterators[index], None)
        if head is None:
            heapq.heappop(heap)
        else:
            next_row, next_weight = head
            heapq.heapreplace(
                heap, (next_weight, tie_key(next_row), index, next_row)
            )
