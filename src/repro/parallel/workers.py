"""Process-pool execution of per-shard any-k streams.

One worker process per (non-empty) shard.  The parent pickles the shard
payload — filtered database, rewritten query, ranking *name* (the
instances hold lambdas and cannot cross the boundary), method, ``k`` —
into a ``multiprocessing.Process``; the worker enumerates its shard's
ranked stream and ships results back in chunks over a **bounded** queue.
The bound is backpressure: a worker can run at most one queue of chunks
ahead of the consumer, so stopping after the global top-k never pays for
a shard's full output — the anytime property survives the pool.

Failure handling: a worker that raises ships an ``("error", message)``
frame; a worker that dies without one (OOM-kill, signal) is detected by
liveness polling.  Both surface as :class:`ShardWorkerError` in the
consuming thread.  Early termination (the consumer closes the merged
generator, e.g. a server cursor being evicted) terminates the pool.

RAM-model accounting: each worker counts into a private
:class:`~repro.util.counters.Counters` and ships the snapshot in its
final ``("done", {"counters": ..., "delay": ..., "spans": ...})``
frame; the parent
folds finished workers' snapshots into the caller's counters, so a
drained parallel run reports the same kind of totals a serial run does.
When the caller passes a :class:`~repro.obs.delay.DelayProfile`, each
worker additionally profiles its own shard stream (TTF / TT(k) /
inter-result delay as seen *inside* the worker, no IPC on that path)
and the parent files the returned snapshots under ``profile.shards`` —
attribution, not aggregation, so the parent's own measurement of the
merged stream is never double counted.  A
:class:`~repro.obs.memory.MemoryProfile` travels the same way: each
worker space-accounts its own engine structures and ships the snapshot
in the done frame; the parent files it under ``memory.shards``.  Worker
bytes live in the worker *process*, so they are deliberately kept out
of the parent's own live/peak totals (which feed the server's
admission watermark for the server process).

Trace propagation: when :func:`parallel_rank_enumerate` is called while
a span is open on the process-wide tracer (the executor's
``execute.setup``), each worker records real spans — ``setup``,
``enumerate``, per-chunk ``chunk_put`` — in a private tracer, ships the
rendered span dicts home in the done frame, and the parent grafts them
under the open span as a ``shard[i]`` subtree.  A sharded query's
``trace`` op response therefore shows per-worker timing, not just
counters.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import queue as queue_module
import threading
import time
from contextlib import nullcontext
from typing import Any, Iterator, Optional, TYPE_CHECKING

from repro.anyk.ranking import (
    RankingFunction,
    SUM,
    ranking_by_name,
    stabilize_ties,
)
from repro.data.database import Database
from repro.parallel.merge import merge_ranked_streams
from repro.parallel.sharding import Shard, ShardingSpec, shard_database
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.delay import DelayProfile
    from repro.obs.memory import MemoryProfile

#: Results per queue frame (amortizes pickling + IPC per result).
DEFAULT_CHUNK_SIZE = 128

#: Frames a worker may buffer ahead of the consumer (backpressure bound).
QUEUE_DEPTH = 8

#: Liveness-poll interval while waiting on an empty queue (seconds).
_POLL_S = 0.05

#: Counters dataclass fields a snapshot may carry (vs. ``extras`` keys).
_COUNTER_FIELDS = {
    f.name for f in dataclasses.fields(Counters) if f.name not in ("extras", "_lock")
}


class ShardWorkerError(RuntimeError):
    """A shard worker failed (raised, or died without reporting)."""


_forkserver_lock = threading.Lock()
_forkserver_context = None


def _pool_context():
    """The multiprocessing context to spawn shard workers from.

    ``fork`` is the cheap default — but forking a *multithreaded*
    process (the server regime: queries arrive on socketserver handler
    threads) can deadlock the child on a lock another thread held at
    fork time.  When other threads are live we switch to ``forkserver``:
    its single-threaded server process was started before any of our
    threads, so forks from it are safe.  This module is preloaded into
    the forkserver so workers do not re-import the library per query.
    On platforms whose default is already ``spawn`` (macOS, Windows)
    the default context is used as-is — args are picklable and
    :func:`_worker_main` is importable by design.

    Caveat (standard multiprocessing contract): forkserver/spawn worker
    bootstrap re-imports the caller's ``__main__``, so a *script* that
    reaches these paths (threaded parent, or a spawn platform) must
    guard its entry point with ``if __name__ == "__main__":`` — see
    ``examples/parallel_topk.py``.  Plain single-threaded Linux use
    keeps ``fork`` and has no such requirement.
    """
    if multiprocessing.get_start_method() != "fork":
        return multiprocessing.get_context()
    if threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    global _forkserver_context
    with _forkserver_lock:
        if _forkserver_context is None:
            context = multiprocessing.get_context("forkserver")
            context.set_forkserver_preload(["repro.parallel.workers"])
            _forkserver_context = context
    return _forkserver_context


def shard_stream(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """One shard's stabilized ranked stream (any engine, in-process).

    The single enumeration entry point workers run.  Besides every
    :func:`~repro.anyk.rank_enumerate` method it accepts ``"rank_join"``
    (the HRJN middleware), lifting its raw weights into the ranking
    carrier exactly as the SQL executor does — which is what lets the
    differential harness drive all four engine families through one
    sharded code path.
    """
    if method == "rank_join":
        from repro.topk.rank_join import rank_join_stream

        raw = rank_join_stream(
            db, query, counters=counters, combine=ranking.float_combine()
        )
        lift = ranking.lift
        stream = stabilize_ties((row, lift(weight)) for row, weight in raw)
        return stream if k is None else itertools.islice(stream, k)
    from repro.anyk.api import rank_enumerate

    return rank_enumerate(
        db, query, ranking=ranking, method=method, k=k, counters=counters
    )


def _worker_main(
    out_queue,
    db: Database,
    query: ConjunctiveQuery,
    ranking_name: str,
    method: str,
    k: Optional[int],
    chunk_size: int,
    profile_delay: bool = False,
    trace_spans: bool = False,
    profile_memory: bool = False,
) -> None:
    """Worker entry point (module-level so spawn contexts can import it)."""
    counters = Counters()
    wtracer = root = None
    if trace_spans:
        # A private single-trace tracer: worker spans (setup, enumerate,
        # chunk_put) ship home in the done frame and are grafted under
        # the coordinator's execute span — the worker never talks to the
        # parent's ring directly.
        from repro.obs.trace import Tracer

        wtracer = Tracer(capacity=1, enabled=True)
        root = wtracer.start_trace("shard", method=method, k=k)

    def stage(name: str, **attrs: Any):
        return nullcontext() if wtracer is None else wtracer.span(name, **attrs)

    try:
        with stage("setup"):
            memory = None
            if profile_memory:
                # Attach before the stream exists: the engines read the
                # tracker off the counters at structure-construction time.
                from repro.obs.memory import MemoryProfile, attach_tracker

                memory = MemoryProfile(engine=method)
                memory.streams = 1
                attach_tracker(counters, memory)
            ranking = ranking_by_name(ranking_name)
            stream = shard_stream(
                db, query, ranking=ranking, method=method, k=k, counters=counters
            )
            profile = None
            if profile_delay:
                from repro.obs.delay import DelayProfile

                profile = DelayProfile(engine=method)
                stream = profile.wrap(stream)
        chunk: list[tuple[tuple, Any]] = []
        emitted = 0
        with stage("enumerate") as enum_span:
            for item in stream:
                chunk.append(item)
                if len(chunk) >= chunk_size:
                    emitted += len(chunk)
                    with stage("chunk_put", rows=len(chunk)):
                        out_queue.put(("rows", chunk))
                    chunk = []
            if chunk:
                emitted += len(chunk)
                with stage("chunk_put", rows=len(chunk)):
                    out_queue.put(("rows", chunk))
            if wtracer is not None:
                enum_span.set(rows=emitted)
        spans = None
        if wtracer is not None:
            root.finish()
            rendered = wtracer.get(root.trace_id)
            spans = rendered["spans"] if rendered else None
        out_queue.put(
            (
                "done",
                {
                    "counters": counters.snapshot(),
                    "delay": None if profile is None else profile.snapshot(),
                    "memory": None if memory is None else memory.snapshot(),
                    "spans": spans,
                },
            )
        )
    except BaseException as exc:  # ship the failure; never hang the parent
        try:
            out_queue.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def _merge_snapshot(counters: Counters, snapshot: dict) -> None:
    """Fold a worker's counter snapshot into the caller's instance."""
    for name, value in snapshot.items():
        if name == "total_work" or not value:
            continue
        if name in _COUNTER_FIELDS:
            counters.add(name, value)
        else:
            counters.bump(name, value)


class _ShardFeed:
    """Parent-side lazy iterator over one worker's chunked result queue."""

    def __init__(
        self,
        context,
        shard: Shard,
        ranking_name: str,
        method: str,
        k: Optional[int],
        chunk_size: int,
        counters: Optional[Counters],
        profile: Optional["DelayProfile"] = None,
        trace_anchor: Any = None,
        memory: Optional["MemoryProfile"] = None,
    ) -> None:
        self._queue = context.Queue(maxsize=QUEUE_DEPTH)
        self._process = context.Process(
            target=_worker_main,
            args=(
                self._queue,
                shard.database,
                shard.query,
                ranking_name,
                method,
                k,
                chunk_size,
                profile is not None,
                trace_anchor is not None,
                memory is not None,
            ),
            daemon=True,
        )
        self._shard_index = shard.index
        self._counters = counters
        self._profile = profile
        self._memory = memory
        self._anchor = trace_anchor
        self._start_s: Optional[float] = None
        self._finished = False

    def start(self) -> None:
        self._start_s = time.perf_counter()
        self._process.start()

    def _fold_done(self, payload: dict) -> None:
        """Fold a worker's final frame into the caller-side aggregates."""
        self._finished = True
        if self._counters is not None:
            _merge_snapshot(self._counters, payload["counters"])
        delay = payload.get("delay")
        if self._profile is not None and delay is not None:
            # Attribution only: the parent measures the merged stream
            # itself, so worker measurements are filed per shard rather
            # than folded into the parent's own histograms (which would
            # double count every result).
            delay["shard"] = self._shard_index
            self._profile.shards.append(delay)
        mem = payload.get("memory")
        if self._memory is not None and mem is not None:
            # Same attribution-only contract as the delay snapshots; the
            # bytes also live in the worker process, not this one.
            mem["shard"] = self._shard_index
            self._memory.shards.append(mem)
        spans = payload.get("spans")
        if self._anchor is not None and spans:
            # Graft the worker's subtree under the coordinator's execute
            # span; the shipped root is renamed to carry its shard index.
            for span in spans:
                if span.get("parent_id") is None:
                    span["name"] = f"shard[{self._shard_index}]"
            from repro.obs.trace import tracer

            tracer.graft(self._anchor, spans, base_start_s=self._start_s)

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        while True:
            try:
                kind, payload = self._queue.get(timeout=_POLL_S)
            except queue_module.Empty:
                if self._process.is_alive():
                    continue
                # The worker exited; drain anything it flushed first (a
                # short timeout covers frames still in the pipe).
                try:
                    kind, payload = self._queue.get(timeout=0.5)
                except queue_module.Empty:
                    raise ShardWorkerError(
                        f"shard {self._shard_index} worker died without "
                        "reporting (exit code "
                        f"{self._process.exitcode})"
                    ) from None
            if kind == "rows":
                yield from payload
            elif kind == "done":
                self._fold_done(payload)
                self._process.join()
                return
            else:  # "error"
                raise ShardWorkerError(
                    f"shard {self._shard_index} worker failed: {payload}"
                )

    def shutdown(self) -> None:
        """Stop the worker (idempotent; used for early termination too).

        Before terminating, opportunistically drain queued frames for a
        ``("done", ...)`` frame: a worker whose whole output fit in the
        queue has already finished, and its RAM-model work should land
        in the caller's counters even when the consumer stopped early.
        Workers still mid-enumeration lose their counts — the price of
        termination, not worth a handshake.

        With tracing active the drain additionally waits a short,
        bounded grace period: ``k`` is pushed down to every worker, so a
        worker cut off by the global top-k finishes its own (at most k)
        results moments later — waiting for its done frame is what makes
        all per-shard subtrees land in the coordinator's trace instead
        of only the lucky ones.
        """
        if not self._finished:
            grace_s = 2.0 if self._anchor is not None else 0.0
            deadline = time.perf_counter() + grace_s
            while not self._finished:
                try:
                    kind, payload = self._queue.get_nowait()
                except queue_module.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    if not self._process.is_alive():
                        # Exited: anything still in the pipe lands shortly.
                        try:
                            kind, payload = self._queue.get(timeout=0.2)
                        except queue_module.Empty:
                            break
                    else:
                        try:
                            kind, payload = self._queue.get(
                                timeout=min(remaining, _POLL_S)
                            )
                        except queue_module.Empty:
                            continue
                if kind == "done":
                    self._fold_done(payload)
        if self._process.pid is not None and self._process.is_alive():
            self._process.terminate()
        if self._process.pid is not None:
            self._process.join(timeout=2.0)
        self._queue.close()


def parallel_rank_enumerate(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
    workers: int = 2,
    shard_variable: Optional[str] = None,
    policy: str = "hash",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    profile: Optional["DelayProfile"] = None,
    memory: Optional["MemoryProfile"] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Shard, enumerate per shard in worker processes, merge ranked.

    Yields ``(row, weight)`` byte-identically to the serial
    :func:`~repro.anyk.rank_enumerate` stream for the same arguments
    (see :mod:`repro.parallel.merge` for the argument).  ``k`` is pushed
    down to every worker — the global top-k draws at most k results from
    any one shard — and also truncates the merged stream.

    The returned generator owns the pool: exhausting it joins the
    workers, closing it early (``generator.close()``, which is what
    :meth:`PausableStream.close` triggers on cursor eviction) terminates
    them.  Shards whose filtered instance is trivially empty never spawn
    a process.

    Snapshot pinning: the shard payloads are materialized *here*, before
    the lazy generator is returned — each worker pickles the shard built
    from the database object passed in (version-stamped when it is a
    :mod:`repro.dynamic` snapshot), so mutations committed after this
    call can never leak into a draining parallel stream, even when the
    workers have not started yet.
    """
    shards, spec = shard_database(
        db, query, workers, variable=shard_variable, policy=policy
    )
    live = [shard for shard in shards if not shard.is_trivially_empty()]
    context = _pool_context()
    # When this call happens inside an open span (the executor's
    # execute.setup), workers record their own spans and ship them back
    # in the done frame; each feed grafts its subtree under that anchor.
    from repro.obs.trace import tracer as _tracer

    anchor = _tracer.current_span() if _tracer.enabled else None
    feeds = [
        _ShardFeed(
            context,
            shard,
            ranking.name,
            method,
            k,
            chunk_size,
            counters,
            profile=profile,
            trace_anchor=anchor,
            memory=memory,
        )
        for shard in live
    ]

    def merged() -> Iterator[tuple[tuple, Any]]:
        try:
            # Inside the try: a failure starting the Nth worker (process
            # limit, EAGAIN) must still shut the N-1 started ones down.
            for feed in feeds:
                feed.start()
            stream = merge_ranked_streams(feeds)
            if k is not None:
                stream = itertools.islice(stream, k)
            yield from stream
        finally:
            for feed in feeds:
                feed.shutdown()

    stream = merged()
    # The parent-side profile measures the *merged* stream (what the
    # consumer experiences); the per-shard worker measurements arrive via
    # the done frames above.
    return stream if profile is None else profile.wrap(stream)
