"""Partition-parallel any-k execution with ranked stream merge.

Single-threaded any-k caps every query at one core; this package scales
ranked enumeration across worker processes without giving up a single
guarantee:

- :mod:`repro.parallel.sharding` partitions the database by hash (or
  range, for skewed domains) on one join attribute — answers partition
  with the attribute's values, so per-shard answer sets are disjoint and
  their union is exactly the global answer set;
- :mod:`repro.parallel.workers` runs each shard's enumeration in its own
  process behind a bounded queue (backpressure keeps the pool anytime);
- :mod:`repro.parallel.merge` lazily k-way-merges the per-shard ranked
  streams with deterministic tie-breaking, so the merged stream is
  **byte-identical** to the serial one.

Entry points: :func:`repro.anyk.rank_enumerate` grows a ``workers=N``
argument, the cost-based router decides *whether* sharding pays off
(``explain()`` shows the decision), and ``repro-serve --workers N``
serves merged streams through the same resumable cursors as serial ones.
"""

from repro.anyk.ranking import RANKINGS_BY_NAME, RankingFunction
from repro.parallel.merge import merge_ranked_streams
from repro.parallel.sharding import (
    POLICIES,
    Shard,
    ShardingSpec,
    choose_shard_variable,
    shard_database,
    stable_hash,
)
from repro.parallel.workers import (
    ShardWorkerError,
    parallel_rank_enumerate,
    shard_stream,
)
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction

#: rank_enumerate methods (plus the HRJN middleware) the pool can run.
SHARDABLE_METHODS_EXTRA = ("rec", "batch", "lawler", "rank_join")


def is_shardable(
    query: ConjunctiveQuery, ranking: RankingFunction, method: str
) -> bool:
    """Can this (query, ranking, method) run partition-parallel soundly?

    Three conditions:

    - **acyclic query** — per-shard join trees are then structurally
      identical to the serial one, so per-answer weight folds agree
      bitwise (cyclic rewrites recompute heavy/light thresholds per
      shard, which can re-associate float combines);
    - **registered ranking** — workers resolve the ranking by name
      across the pickle boundary, so it must be one of the provided
      instances (:data:`~repro.anyk.ranking.RANKINGS_BY_NAME`);
    - **known method** — an any-k engine, the batch baseline, naive
      Lawler, or the HRJN middleware.
    """
    if RANKINGS_BY_NAME.get(ranking.name) is not ranking:
        return False
    if not (method.startswith("part:") or method in SHARDABLE_METHODS_EXTRA):
        return False
    return gyo_reduction(query) is not None


__all__ = [
    "POLICIES",
    "SHARDABLE_METHODS_EXTRA",
    "Shard",
    "ShardWorkerError",
    "ShardingSpec",
    "choose_shard_variable",
    "is_shardable",
    "merge_ranked_streams",
    "parallel_rank_enumerate",
    "shard_database",
    "shard_stream",
    "stable_hash",
]
