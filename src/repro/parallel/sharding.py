"""Partition a database by a join attribute for parallel any-k runs.

The soundness argument is the classical one for distributing conjunctive
queries (the CQ-evaluation line the paper's related work builds on):
pick one query variable ``v`` and partition its *value domain* into
``shards`` disjoint parts.  Every answer binds ``v`` to exactly one
value, hence falls in exactly one part — so running the query per shard
(with each atom that binds ``v`` restricted to tuples whose ``v``-column
lands in the part) yields ranked streams whose union is *exactly* the
global answer set, with no duplicates and no misses.  Atoms that do not
bind ``v`` are carried into every shard unchanged (shared, not copied).

Two partition policies:

- ``hash`` — a seed-independent hash of the value (``blake2b`` over
  ``repr``; Python's builtin ``hash`` is randomized per process and
  would break cross-process determinism).  The default: oblivious to the
  data, near-uniform on distinct values.
- ``range`` — contiguous runs of the sorted value domain, sized by tuple
  frequency in the largest relation binding ``v``.  For skewed domains
  (Zipf keys) hash sharding can land several heavy hitters in one shard;
  range sharding balances *tuple counts* instead.

Self-joins are handled by rewriting: each atom that binds ``v`` gets its
own filtered relation under a fresh name (``E`` seen as ``E__p0`` /
``E__p1`` when atoms 0 and 1 bind ``v`` at different columns), so the
per-shard query joins exactly the restrictions it should.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.cq import Atom, ConjunctiveQuery, QueryError

#: Partition policies understood by :func:`shard_database`.
POLICIES = ("hash", "range")


def _canonical(value: object) -> object:
    """Collapse a value to a representative of its ``==`` class.

    Python join equality says ``True == 1 == 1.0``, and the serial
    engines inherit it through dict-based hash indexes — so the shard
    function must respect it too, or numerically equal keys of
    different types (an int column joined against a float column, easy
    to produce via the CSV loader) land in different shards and their
    join answers silently vanish.
    """
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    return value


def stable_hash(value: object) -> int:
    """A process- and run-independent 64-bit hash of a column value.

    Hashes the :func:`_canonical` representative, so values that join
    under ``==`` shard together.  ``repr`` is stable for the value
    types relations hold (ints, floats, strings, tuples thereof);
    ``blake2b`` mixes it.  Never use builtin ``hash`` here: string
    hashing is salted per interpreter, and a shard function that
    disagrees between runs (or between a parent and a spawned — not
    forked — worker) silently corrupts the partition.
    """
    digest = hashlib.blake2b(
        repr(_canonical(value)).encode("utf-8"), digest_size=8
    )
    return int.from_bytes(digest.digest(), "big")


def choose_shard_variable(query: ConjunctiveQuery) -> str:
    """The join attribute to partition on.

    Preference: the variable appearing in the most atoms (restricting
    more relations shrinks more per-shard work), ties broken by first
    appearance in the query — deterministic, so plans are reproducible.
    """
    counts: dict[str, int] = {v: 0 for v in query.variables}
    for atom in query.atoms:
        for variable in atom.variable_set:
            counts[variable] += 1
    return max(query.variables, key=lambda v: counts[v])


@dataclass(frozen=True)
class ShardingSpec:
    """How one database+query pair was partitioned.

    ``assign`` maps a ``v`` value to its shard index.  For hash sharding
    it is pure; for range sharding it closes over the frequency-balanced
    boundary table (values unseen while building the table go to shard
    0 — they cannot join anyway, since the scanned atom binds ``v`` too).
    """

    variable: str
    policy: str
    shards: int
    assign: Callable[[object], int]


def _hash_spec(variable: str, shards: int) -> ShardingSpec:
    return ShardingSpec(
        variable=variable,
        policy="hash",
        shards=shards,
        assign=lambda value: stable_hash(value) % shards,
    )


def _range_spec(
    db: Database, query: ConjunctiveQuery, variable: str, shards: int
) -> ShardingSpec:
    # Scan the largest relation binding the variable: its frequency
    # profile is the skew that matters most.
    candidates = [
        (index, atom)
        for index, atom in enumerate(query.atoms)
        if variable in atom.variable_set
    ]
    index, atom = max(candidates, key=lambda pair: len(db[pair[1].relation]))
    column = atom.variables.index(variable)
    frequency: dict[object, int] = {}
    for row in db[atom.relation].rows:
        value = row[column]
        frequency[value] = frequency.get(value, 0) + 1
    # Sort values by a type-safe key and cut into runs of ~equal tuple
    # mass (a heavy hitter still owns its whole run: partitioning is by
    # value, never within one value).
    ordered = sorted(frequency, key=lambda v: (v.__class__.__name__, v))
    total = sum(frequency.values())
    target = total / shards if shards else 0
    table: dict[object, int] = {}
    shard, mass = 0, 0
    for value in ordered:
        table[value] = shard
        mass += frequency[value]
        if mass >= target * (shard + 1) and shard < shards - 1:
            shard += 1
    return ShardingSpec(
        variable=variable,
        policy="range",
        shards=shards,
        assign=lambda value: table.get(value, 0),
    )


def make_spec(
    db: Database,
    query: ConjunctiveQuery,
    shards: int,
    variable: Optional[str] = None,
    policy: str = "hash",
) -> ShardingSpec:
    """Build the sharding decision without materializing shards yet."""
    if shards < 1:
        raise ValueError("shard count must be >= 1")
    if policy not in POLICIES:
        raise ValueError(f"unknown shard policy {policy!r}; known: {POLICIES}")
    if variable is None:
        variable = choose_shard_variable(query)
    elif variable not in query.variables:
        raise QueryError(
            f"shard variable {variable!r} is not a variable of {query}"
        )
    if policy == "hash":
        return _hash_spec(variable, shards)
    return _range_spec(db, query, variable, shards)


@dataclass
class Shard:
    """One partition: a database plus the (possibly rewritten) query."""

    index: int
    database: Database
    query: ConjunctiveQuery

    def is_trivially_empty(self) -> bool:
        """True when some referenced relation has no tuples (no answers
        possible — not worth a worker process)."""
        return any(
            len(self.database[atom.relation]) == 0 for atom in self.query.atoms
        )


def shard_database(
    db: Database,
    query: ConjunctiveQuery,
    shards: int,
    variable: Optional[str] = None,
    policy: str = "hash",
) -> tuple[list[Shard], ShardingSpec]:
    """Partition ``db`` for ``query`` into ``shards`` disjoint instances.

    Every atom binding the shard variable points, per shard, at a
    filtered copy of its relation (restricted on that atom's first
    ``v``-column); other atoms share their base relation across all
    shards.  The returned queries are structurally identical to
    ``query`` (same atom order, same variables), so join trees — and
    hence per-answer weight folds — match the serial run exactly.
    """
    query.validate(db)
    spec = make_spec(db, query, shards, variable=variable, policy=policy)
    assign = spec.assign

    # Per atom: the column to filter on (None = atom does not bind v).
    filter_columns: list[Optional[int]] = [
        atom.variables.index(spec.variable)
        if spec.variable in atom.variable_set
        else None
        for atom in query.atoms
    ]

    # One scan (and one assign() per row) per binding atom: bucket its
    # relation into all shards at once instead of re-filtering — and
    # re-hashing — the relation once per shard.
    partitions: dict[int, list[Relation]] = {}
    for atom_index, atom in enumerate(query.atoms):
        column = filter_columns[atom_index]
        if column is None:
            continue
        relation = db[atom.relation]
        name = f"{atom.relation}__p{atom_index}"
        buckets = [Relation(name, relation.schema) for _ in range(shards)]
        for bucket in buckets:
            # Buckets inherit the base relation's snapshot generation:
            # the shard payload a worker pickles is pinned to the exact
            # versions the plan was costed on.
            bucket.version = relation.version
        for row, weight in zip(relation.rows, relation.weights):
            bucket = buckets[assign(row[column])]
            bucket.rows.append(row)
            bucket.weights.append(weight)
        partitions[atom_index] = buckets

    out: list[Shard] = []
    for shard_index in range(shards):
        shard_db = Database()
        shard_db.version = db.version
        atoms: list[Atom] = []
        for atom_index, atom in enumerate(query.atoms):
            if filter_columns[atom_index] is None:
                if atom.relation not in shard_db:
                    shard_db.add(db[atom.relation])
                atoms.append(atom)
                continue
            filtered = partitions[atom_index][shard_index]
            shard_db.replace(filtered)
            atoms.append(Atom(filtered.name, atom.variables))
        out.append(
            Shard(
                index=shard_index,
                database=shard_db,
                query=ConjunctiveQuery(atoms, name=query.name),
            )
        )
    return out, spec
