"""repro — "Optimal Join Algorithms Meet Top-k" (SIGMOD 2020), reproduced.

A self-contained Python library implementing the three parts of the
tutorial by Tziavelis, Gatterbauer and Riedewald:

1. **Top-k algorithms** (:mod:`repro.topk`): Fagin's Algorithm, the
   Threshold Algorithm, NRA, and HRJN-style rank joins, with explicit
   access-model *and* RAM-model cost accounting.
2. **(Worst-case) optimal joins** (:mod:`repro.joins`,
   :mod:`repro.query`): binary plans, Yannakakis, Generic-Join, Leapfrog
   Triejoin, the AGM bound, hypertree decompositions, and the heavy/light
   union-of-trees behind the O~(n^1.5) 4-cycle results.
3. **Ranked enumeration / any-k** (:mod:`repro.anyk`): ANYK-PART
   (Lawler–Murty, five successor strategies), ANYK-REC (recursive
   enumeration), batch and naive-Lawler baselines, over acyclic and
   cyclic queries and multiple ranking functions.

On top sits a declarative surface: a SQL front-end (:mod:`repro.sql`,
``SELECT ... ORDER BY weight LIMIT k``, CLI ``repro-sql``) and a
cost-based engine router (:mod:`repro.engine`, also reachable as
``rank_enumerate(..., method="auto")``) that picks among the engines
above by query shape, k, and AGM estimates — including whether to shard
the database across worker processes (:mod:`repro.parallel`,
``rank_enumerate(..., workers=N)``) and lazily merge the per-shard
ranked streams back into one byte-identical global stream.

Quickstart::

    from repro import rank_enumerate, cycle_query
    from repro.data.generators import random_graph_database

    db = random_graph_database(num_edges=2000, num_nodes=300, seed=1)
    for row, weight in rank_enumerate(db, cycle_query(4), k=10):
        print(weight, row)          # the 10 lightest 4-cycles

See README.md for the architecture overview and EXPERIMENTS.md for the
reproduced claims.
"""

from repro.anyk import LEX, MAX, METHODS, PRODUCT, SUM, RankingFunction, rank_enumerate
from repro.anyk.api import top_k
from repro.data import Database, Relation
from repro.query import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.util.counters import Counters

__version__ = "1.9.0"

__all__ = [
    "Database",
    "Relation",
    "Atom",
    "ConjunctiveQuery",
    "path_query",
    "star_query",
    "triangle_query",
    "cycle_query",
    "rank_enumerate",
    "top_k",
    "RankingFunction",
    "SUM",
    "MAX",
    "PRODUCT",
    "LEX",
    "METHODS",
    "Counters",
]
