"""Cost-based engine routing for ranked enumeration.

The planner picks among the engines the library already implements —
batch join + sort, ANYK-PART, ANYK-REC, and the rank-join middleware —
based on query shape (acyclic / 4-cycle / general cyclic), the ranking
function, ``k``, and AGM/width estimates over the actual catalog.  The SQL
front-end (:mod:`repro.sql`) routes every statement through here;
:func:`repro.anyk.rank_enumerate` exposes the same rules as
``method="auto"``.
"""

from repro.engine.catalog import (
    AtomStats,
    CatalogStats,
    StatsCache,
    database_fingerprint,
)
from repro.engine.executor import execute, filtered_database
from repro.engine.planner import (
    Plan,
    PlanEstimates,
    choose_method,
    plan_compiled,
    route,
)

__all__ = [
    "AtomStats",
    "CatalogStats",
    "StatsCache",
    "database_fingerprint",
    "Plan",
    "PlanEstimates",
    "route",
    "choose_method",
    "plan_compiled",
    "execute",
    "filtered_database",
]
