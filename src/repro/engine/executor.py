"""Plan execution: run a routed plan and emit (row, weight) pairs.

The executor is deliberately thin — all heavy lifting lives in the engines
it dispatches to (:func:`repro.anyk.rank_enumerate`, the batch baseline,
or the HRJN rank-join middleware).  Its own responsibilities:

- apply constant filters by materializing filtered copies of the affected
  base relations (σ before ⋈, the one classical rewrite that is always
  safe and always pays off);
- implement ``DESC`` by negating weights (ascending enumeration of the
  negated instance is exactly heaviest-first of the original — SUM only,
  enforced by the analyzer);
- project full result rows onto the SELECT list (bag semantics: the
  ranked stream of full rows is mapped, never deduplicated);
- truncate to LIMIT.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, TYPE_CHECKING

from repro.anyk.api import rank_enumerate
from repro.data.database import Database
from repro.query.cq import Atom, ConjunctiveQuery
from repro.engine.planner import Plan
from repro.util.counters import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dynamic import MutationResult, VersionedDatabase
    from repro.obs.delay import DelayProfile
    from repro.obs.memory import MemoryProfile
    from repro.sql.analyzer import CompiledMutation, CompiledQuery


def apply_mutation(
    versioned: "VersionedDatabase", compiled: "CompiledMutation"
) -> "MutationResult":
    """Commit a compiled SQL mutation against a versioned database.

    The write-side counterpart of :func:`execute`: lowers the analyzer's
    :class:`~repro.sql.analyzer.CompiledMutation` onto the dynamic
    layer's :class:`~repro.dynamic.Insert`/:class:`~repro.dynamic.Delete`
    and applies it, publishing a new copy-on-write snapshot.  Open
    cursors keep draining the snapshot they were planned on; the new
    version id makes stale plan/stats cache entries miss.
    """
    from repro.dynamic import Delete, Insert

    if compiled.kind == "insert":
        return versioned.apply(
            Insert(compiled.relation, compiled.rows, compiled.weights)
        )
    relation = versioned.snapshot()[compiled.relation]
    if not compiled.filters:
        predicate = None
    else:
        tests = [
            (f.predicate(relation.positions((f.column,))[0]))
            for f in compiled.filters
        ]

        def predicate(row: tuple, _tests=tuple(tests)) -> bool:
            return all(test(row) for test in _tests)

    return versioned.apply(
        Delete(
            compiled.relation,
            predicate,
            description=" AND ".join(str(f) for f in compiled.filters),
        )
    )


def negated_database(
    db: Database, only: Optional[Iterable[str]] = None
) -> Database:
    """Relations replaced by weight-negated copies (same names).

    Ascending enumeration over the negated instance is exactly
    heaviest-first enumeration of the original — the DESC implementation.

    ``only`` restricts negation to the named relations (the ones a query
    actually references): everything else is carried over *shared and
    untouched* instead of copied, so a DESC query against a multi-tenant
    catalog pays O(referenced tuples), not O(database).  Omitted, every
    relation is negated (the standalone-helper behavior).
    """
    names = None if only is None else set(only)
    negated = Database()
    for relation in db:
        if names is not None and relation.name not in names:
            negated.add(relation)
            continue
        copy = relation.copy()
        copy.weights = [-w for w in copy.weights]
        negated.add(copy)
    return negated


def filtered_database(
    db: Database, compiled: "CompiledQuery", negate: bool = True
) -> tuple[Database, ConjunctiveQuery]:
    """The working database and query after filter pushdown and DESC.

    Atoms whose FROM entry carries constant filters point at materialized
    filtered copies (named ``<relation>__sigma<i>``); untouched atoms keep
    their base relations.  For ``DESC``, every participating relation is
    replaced by a weight-negated copy under its original name —
    ``negate=False`` skips that (size-preserving) step for callers that
    only cost the plan and never enumerate (EXPLAIN).
    """
    cq = compiled.cq
    table_names = [t for t in compiled.alias_to_relation]
    atoms: list[Atom] = []
    working = Database()
    for index, atom in enumerate(cq.atoms):
        alias = table_names[index]
        filters = [f for f in compiled.filters if f.table == alias]
        if filters:
            relation = db[atom.relation]
            name = f"{atom.relation}__sigma{index}"
            selected = relation
            for f in filters:
                position = relation.positions((f.column,))[0]
                selected = selected.select(f.predicate(position), name=name)
            selected.name = name
            # The filtered copy inherits its base's snapshot generation so
            # cached statistics over it invalidate exactly when the base
            # relation is mutated.
            selected.version = relation.version
            working.replace(selected)
            atoms.append(Atom(name, atom.variables))
        else:
            if atom.relation not in working:
                working.add(db[atom.relation])
            atoms.append(atom)
    working.version = db.version
    if compiled.descending and negate:
        working = negated_database(working, only={a.relation for a in atoms})
    rewritten = (
        cq
        if all(a.relation == b.relation for a, b in zip(atoms, cq.atoms))
        else ConjunctiveQuery(atoms, name=cq.name)
    )
    return working, rewritten


def execute(
    db: Database,
    compiled: "CompiledQuery",
    plan: Plan,
    counters: Optional[Counters] = None,
    profile: Optional["DelayProfile"] = None,
    memory: Optional["MemoryProfile"] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Run ``plan`` for ``compiled`` over ``db``.

    Yields ``(row, weight)`` with ``row`` following
    ``compiled.output_columns`` and ``weight`` in the ranking's carrier
    (sign-corrected for DESC).

    ``profile`` (a :class:`repro.obs.delay.DelayProfile`) measures the
    engine stream as it drains: per-result delay, TTF, TT(k), and — for
    parallel plans — per-shard worker attribution folded back across
    the process boundary.  ``None`` (the default) adds zero per-result
    cost.  ``memory`` (a :class:`repro.obs.memory.MemoryProfile`) rides
    the execution's counters as a space tracker; the engines' structures
    report entry counts into it at O(1) cost, and parallel plans ship
    per-shard snapshots home in the worker done frames.  The setup work
    (DESC negation, shard materialization) lands in a tracer span when
    the process tracer is enabled, parented to whichever request span is
    current at the first pull.
    """
    from repro.obs.memory import attach_tracker
    from repro.obs.trace import tracer

    with tracer.span(
        "execute.setup", engine=plan.engine, workers=plan.workers
    ):
        if plan.working_db is not None and plan.working_cq is not None:
            # plan_compiled already materialized the filtered instance (and
            # costed the plan on it) — don't rebuild it.  It defers the DESC
            # negation to us, since only enumeration needs it.
            working, cq = plan.working_db, plan.working_cq
            if compiled.descending:
                working = negated_database(
                    working, only={a.relation for a in cq.atoms}
                )
        else:
            working, cq = filtered_database(db, compiled)
        k = compiled.k

        if profile is not None and not profile.engine:
            profile.engine = plan.engine
        if memory is not None:
            if not memory.engine:
                memory.engine = plan.engine
            memory.streams += 1
            if counters is None:
                counters = Counters()
            attach_tracker(counters, memory)

        if plan.workers > 1:
            # The router already vetted shardability and picked the shard
            # attribute; honor its decision verbatim (covers the HRJN
            # middleware too — workers run it per shard like any engine).
            from repro.parallel import parallel_rank_enumerate

            stream: Iterator[tuple[tuple, Any]] = parallel_rank_enumerate(
                working,
                cq,
                ranking=compiled.ranking,
                method=plan.engine,
                k=k,
                counters=counters,
                workers=plan.workers,
                shard_variable=plan.shard_variable,
                policy=plan.shard_policy,
                profile=profile,
                memory=memory,
            )
        elif plan.engine == "rank_join":
            # The same lift+stabilize+truncate adapter shard workers run,
            # in-process (one definition, serial and parallel can't drift).
            from repro.parallel.workers import shard_stream

            stream = shard_stream(
                working,
                cq,
                ranking=compiled.ranking,
                method="rank_join",
                k=k,
                counters=counters,
            )
            if profile is not None:
                stream = profile.wrap(stream)
        else:
            stream = rank_enumerate(
                working,
                cq,
                ranking=compiled.ranking,
                method=plan.engine,
                k=k,
                counters=counters,
                # The plan's kernel slot pins the compiled enumeration
                # template across executions of a cached plan (None for
                # non-any-k engines: rank_enumerate ignores it then).
                kernel_slot=plan.kernel_slot,
            )
            if profile is not None:
                stream = profile.wrap(stream)

    positions = compiled.output_positions
    identity = positions == tuple(range(len(cq.variables)))
    for row, weight in stream:
        out = row if identity else tuple(row[p] for p in positions)
        yield out, (-weight if compiled.descending else weight)
