"""Rule/cost-based engine router.

Given a conjunctive query, a ranking function, and the LIMIT ``k``, the
router picks the execution engine the paper's experiments argue for:

- **batch** (join + sort) when the whole output is wanted: its
  time-to-last is optimal, and with no LIMIT there is nothing for an
  anytime algorithm to win (E8's crossover).
- **ANYK-PART (lazy)** for small ``k``: the best time-to-k across the
  paper's workloads (E9), on acyclic queries directly, on the 4-cycle via
  the heavy/light union of trees (O~(n^1.5 + k)), and on other cyclic
  queries via a fractional-hypertree decomposition (O~(n^fhw + k)).
- **ANYK-REC** for deep ``k``: memoized recursive streams amortize
  better once enumeration goes deep (E9's large-k regime).
- **HRJN rank join** (top-k middleware, Part 1) for tiny ``k`` over a
  binary join: two sorted scans and a corner bound usually terminate
  after shallow prefixes, with none of the T-DP setup cost (E6) — chosen
  only when the inputs cannot blow up the bound (no cyclic structure).
- **LEX ranking** forces an any-k engine: batch and the middleware
  pre-combine weights into floats, which loses the per-stage vectors.

``k`` is compared against the AGM bound of the query over the actual
relation sizes (:mod:`repro.query.agm`) — the worst-case output size that
worst-case-optimal engines are calibrated to.

Every decision is recorded as human-readable rationale lines; ``explain``
output renders them under the chosen plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.anyk.cyclic import is_fourcycle
from repro.anyk.ranking import RankingFunction, SUM
from repro.data.database import Database
from repro.engine.catalog import CatalogStats, StatsCache
from repro.query.agm import fractional_edge_cover
from repro.query.cq import ConjunctiveQuery
from repro.query.decomposition import min_fill_decomposition
from repro.query.hypergraph import gyo_reduction, is_free_connex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sql.analyzer import CompiledQuery

#: k at or below which a binary join is handed to the rank-join middleware.
RANK_JOIN_MAX_K = 16

#: k at or above which ANYK-REC's amortization beats ANYK-PART (E9 regime).
DEEP_K = 1000

#: Fraction of the AGM bound beyond which batch's optimal time-to-last wins.
BATCH_FRACTION = 0.5

#: Total input tuples below which fork+pickle overhead eats any sharding
#: win: a worker costs a process fork, a pickled shard payload, and IPC
#: per result chunk — roughly the T-DP preprocessing of a few thousand
#: tuples.  Below the floor the router runs serial even when workers are
#: offered.
PARALLEL_MIN_TUPLES = 4096


@dataclass(frozen=True)
class PlanEstimates:
    """Query-shape and size estimates feeding the routing rules."""

    acyclic: bool
    fourcycle: bool
    agm_bound: float
    cover_number: float
    fhw: Optional[float] = None  # only computed for general cyclic queries
    free_connex: Optional[bool] = None  # only computed for projections

    @property
    def shape(self) -> str:
        if self.acyclic:
            return "acyclic"
        if self.fourcycle:
            return "4-cycle"
        return f"cyclic (fhw ≈ {self.fhw:.2f})" if self.fhw else "cyclic"


@dataclass
class Plan:
    """The routing decision for one query.

    For SQL plans, ``working_db``/``working_cq`` carry the
    filter-pushed-down (and, for DESC, weight-negated) instance the plan
    was costed on, so the executor reuses it instead of re-materializing.
    """

    engine: str  # a rank_enumerate method, or "rank_join"
    query: ConjunctiveQuery
    ranking: RankingFunction
    k: Optional[int]
    estimates: PlanEstimates
    stats: CatalogStats
    rationale: list[str] = field(default_factory=list)
    working_db: Optional[Database] = None
    working_cq: Optional[ConjunctiveQuery] = None
    #: Partition-parallelism decision: 1 = serial; > 1 = hash/range-shard
    #: on ``shard_variable`` and merge per-shard ranked streams.
    workers: int = 1
    shard_variable: Optional[str] = None
    shard_policy: str = "hash"
    #: Version id of the snapshot this plan was costed on (None for
    #: plain, unversioned databases).  A mutation publishes a higher
    #: version, so any plan reporting an older one is known-stale.
    snapshot_version: Optional[int] = None
    #: Compiled-kernel pin (:class:`repro.anyk.kernels.KernelSlot`) for
    #: any-k engines: the first execution stores the shape's compiled
    #: template here, and — because the plan cache's soft-hit re-bind
    #: copies the dataclass sharing this field by reference — every
    #: later execution of the cached plan reuses it without even a
    #: template-cache lookup.  None for non-any-k engines and for plans
    #: routed outside the SQL layer.
    kernel_slot: Optional[Any] = None

    @property
    def is_anyk(self) -> bool:
        """True when an anytime ranked-enumeration engine was chosen."""
        return self.engine.startswith("part:") or self.engine == "rec"

    def describe(self) -> str:
        """Multi-line rendering (the body of EXPLAIN output)."""
        lines = [
            f"query:    {self.query}",
            f"shape:    {self.estimates.shape}",
            "sizes:    "
            + ", ".join(
                f"{a.relation}={a.size}" for a in self.stats.atoms
            )
            + f"  (n = {self.stats.max_size})",
            f"agm:      {self.estimates.agm_bound:.6g} worst-case results "
            f"(ρ* = {self.estimates.cover_number:.2f})",
            f"ranking:  {self.ranking.name}",
            f"k:        {self.k if self.k is not None else 'unbounded (no LIMIT)'}",
        ]
        if self.snapshot_version is not None:
            lines.insert(
                1, f"snapshot: version {self.snapshot_version}"
            )
        if self.estimates.free_connex is not None:
            lines.append(
                "free:     projection is "
                + ("" if self.estimates.free_connex else "NOT ")
                + "free-connex"
            )
        lines.append(f"engine:   {self.engine}")
        if self.workers > 1:
            lines.append(
                f"parallel: {self.workers} workers, {self.shard_policy}-"
                f"sharded on {self.shard_variable} (ranked streams merged "
                "with deterministic ties)"
            )
        lines.append("because:")
        lines.extend(f"  - {reason}" for reason in self.rationale)
        return "\n".join(lines)


def route(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    k: Optional[int] = None,
    free_variables: Optional[tuple[str, ...]] = None,
    allow_middleware: bool = True,
    engine: Optional[str] = None,
    stats: Optional[CatalogStats] = None,
    workers: Optional[int] = None,
    shard_policy: str = "hash",
) -> Plan:
    """Choose an engine for ``query`` over ``db``.

    ``free_variables`` (when a projection is requested) only affects the
    free-connex annotation; execution always enumerates full rows.
    ``engine`` forces the choice (recorded as an override in the
    rationale).  ``stats`` lets a caller with a
    :class:`~repro.engine.catalog.StatsCache` supply pre-gathered
    statistics instead of re-scanning the catalog.  ``workers`` offers a
    process budget for partition-parallel execution; the router takes it
    only when the chosen engine shards soundly *and* the input is big
    enough to amortize fork+pickle overhead (see
    :data:`PARALLEL_MIN_TUPLES`) — the outcome lands in ``plan.workers``
    and the rationale either way.
    """
    query.validate(db)
    if stats is None:
        stats = CatalogStats.gather(db, query)
    tree = gyo_reduction(query)
    acyclic = tree is not None
    fourcycle = False if acyclic else is_fourcycle(query)
    cover = fractional_edge_cover(query, stats.sizes)
    fhw = None
    if not acyclic and not fourcycle:
        fhw = min_fill_decomposition(query).fractional_hypertree_width()
    free_connex = None
    if free_variables is not None and set(free_variables) != set(query.variables):
        free_connex = is_free_connex(query, free_variables)
    estimates = PlanEstimates(
        acyclic=acyclic,
        fourcycle=fourcycle,
        agm_bound=cover.bound if not stats.any_empty() else 0.0,
        cover_number=cover.cover_number,
        fhw=fhw,
        free_connex=free_connex,
    )
    plan = Plan(
        engine="part:lazy",
        query=query,
        ranking=ranking,
        k=k,
        estimates=estimates,
        stats=stats,
    )
    if engine is not None:
        plan.engine = engine
        plan.rationale.append(f"engine {engine!r} forced by the caller")
    else:
        _decide(plan, allow_middleware=allow_middleware)
    _decide_parallelism(plan, workers, shard_policy)
    return plan


def _decide_parallelism(
    plan: Plan, workers: Optional[int], shard_policy: str
) -> None:
    """Take (or decline) an offered worker budget; record why."""
    if workers is None or workers <= 1:
        return  # nothing offered: serial silently
    say = plan.rationale.append
    from repro.parallel import is_shardable
    from repro.parallel.sharding import choose_shard_variable

    if not is_shardable(plan.query, plan.ranking, plan.engine):
        say(
            f"{workers} workers offered, running serial: engine "
            f"{plan.engine!r} over this query/ranking cannot be sharded "
            "soundly (needs an acyclic shape and a registered ranking)"
        )
        return
    # Per-query input: sum of atom sizes (a self-joined relation feeds
    # every one of its atoms, so it counts once per atom).
    input_tuples = sum(atom.size for atom in plan.stats.atoms)
    if input_tuples < PARALLEL_MIN_TUPLES:
        say(
            f"{workers} workers offered, running serial: "
            f"{input_tuples} input tuples are below the "
            f"{PARALLEL_MIN_TUPLES}-tuple floor where fork+pickle "
            "overhead amortizes"
        )
        return
    plan.workers = workers
    plan.shard_variable = choose_shard_variable(plan.query)
    plan.shard_policy = shard_policy
    say(
        f"sharding across {workers} workers on {plan.shard_variable} "
        f"({shard_policy}): {input_tuples} input tuples amortize "
        "process overhead, and the k-way merge preserves the exact "
        "ranked order"
    )


def _decide(plan: Plan, allow_middleware: bool) -> None:
    est = plan.estimates
    k = plan.k
    say = plan.rationale.append

    if plan.ranking.name == "lex":
        say(
            "lex ranking keeps per-stage weight vectors, which only the "
            "any-k T-DP retains (batch and middleware pre-combine floats)"
        )
        plan.engine = _anyk_engine(plan, say)
        return

    if plan.stats.any_empty():
        say("an input relation is empty, so the output is empty; batch "
            "finishes immediately")
        plan.engine = "batch"
        return

    if k is None:
        say(
            "no LIMIT: the full result is wanted, and batch (join + sort) "
            "has optimal time-to-last — anytime delivery buys nothing here"
        )
        plan.engine = "batch"
        return

    if k >= BATCH_FRACTION * est.agm_bound:
        say(
            f"k = {k} is ≥ {BATCH_FRACTION:.0%} of the AGM worst-case "
            f"output ({est.agm_bound:.6g}): enumeration would nearly drain "
            "the result anyway, so batch's optimal time-to-last wins (E8)"
        )
        plan.engine = "batch"
        return

    if (
        allow_middleware
        and est.acyclic
        and len(plan.query.atoms) == 2
        and plan.ranking is SUM
        and k <= min(RANK_JOIN_MAX_K, math.isqrt(max(1, plan.stats.max_size)))
    ):
        say(
            f"binary join with tiny k = {k} (≤ √n): the HRJN corner "
            "bound usually stops after shallow sorted prefixes, skipping "
            "T-DP setup entirely (Part 1 middleware, E6)"
        )
        plan.engine = "rank_join"
        return

    say(
        f"k = {k} is small against the AGM worst case "
        f"({est.agm_bound:.6g}): anytime ranked enumeration avoids paying "
        "for the full join"
    )
    if est.fourcycle:
        say(
            "4-cycle shape: heavy/light union of trees gives the "
            "submodular-width O~(n^1.5 + k) pipeline (§3)"
        )
    elif not est.acyclic:
        say(
            f"cyclic shape: one GHD rewrite (fhw ≈ {est.fhw:.2f}) "
            f"materializes O~(n^{est.fhw:.2f}) derived relations, then the "
            "acyclic any-k pipeline runs on top"
        )
    plan.engine = _anyk_engine(plan, say)


def _anyk_engine(plan: Plan, say) -> str:
    k = plan.k
    if k is not None and k >= DEEP_K:
        say(
            f"k = {k} is deep (≥ {DEEP_K}): ANYK-REC's memoized streams "
            "amortize repeated work best in the large-k regime (E9)"
        )
        return "rec"
    say(
        "ANYK-PART with the lazy successor strategy has the best "
        "time-to-k for small k across the paper's workloads (E9)"
    )
    return "part:lazy"


def choose_method(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    k: Optional[int] = None,
) -> str:
    """A :func:`repro.anyk.rank_enumerate`-compatible method name.

    The ``method="auto"`` entry point of the any-k API: same routing rules,
    restricted to engines ``rank_enumerate`` itself accepts (the rank-join
    middleware is only reachable through the SQL layer).
    """
    return route(db, query, ranking=ranking, k=k, allow_middleware=False).engine


def plan_compiled(
    db: Database,
    compiled: "CompiledQuery",
    engine: Optional[str] = None,
    stats_cache: Optional[StatsCache] = None,
    workers: Optional[int] = None,
) -> Plan:
    """Route a SQL :class:`~repro.sql.analyzer.CompiledQuery`.

    ``stats_cache`` (the server's cached-stats catalog) short-cuts the
    statistics scan over the filtered working instance.  ``workers``
    offers a partition-parallelism budget (``repro-serve --workers``),
    subject to the same routing rules as :func:`route`.
    """
    from repro.engine.executor import filtered_database

    if compiled.is_template:
        from repro.sql.errors import SqlError

        raise SqlError(
            "statement has unbound parameters (?); supply a params vector "
            "(the server's 'params' request field) or inline the values"
        )
    # Plan on the filtered instance (filters change the stats the router
    # reads) but skip the size-preserving DESC negation — it only matters
    # at enumeration time, and EXPLAIN never enumerates.
    working_db, working_cq = filtered_database(db, compiled, negate=False)
    stats = (
        stats_cache.gather(working_db, working_cq)
        if stats_cache is not None
        else None
    )
    plan = route(
        working_db,
        working_cq,
        ranking=compiled.ranking,
        k=compiled.k,
        free_variables=(
            compiled.free_variables if compiled.is_projection else None
        ),
        engine=engine,
        stats=stats,
        workers=workers,
    )
    plan.working_db = working_db
    plan.working_cq = working_cq
    if plan.is_anyk:
        from repro.anyk.kernels import KernelSlot

        plan.kernel_slot = KernelSlot()
    # Versioned snapshots stamp their Database; recording it lets EXPLAIN
    # say exactly which data generation the costing read.
    plan.snapshot_version = db.version
    # Combinations that would die with a bare TypeError mid-stream
    # (RankingFunction.float_combine on a non-float carrier) are rejected
    # here with a proper SQL diagnostic instead: cyclic rewrites, batch,
    # and the rank-join middleware all pre-combine weights into floats,
    # which loses lex's per-stage weight vectors.
    if compiled.ranking.name == "lex" and (
        not plan.estimates.acyclic or plan.engine in ("batch", "rank_join")
    ):
        from repro.sql.errors import SqlError

        order = compiled.statement.order_by
        reason = (
            f"the {plan.engine} engine pre-combines weights into floats"
            if plan.estimates.acyclic
            else "cyclic rewrites pre-combine weights into floats"
        )
        raise SqlError(
            f"lex(weight) cannot run here: {reason}, which loses the "
            "per-stage lex vectors (use an any-k engine on an acyclic "
            "query)",
            compiled.sql,
            order.pos if order is not None else None,
        )
    if compiled.filters:
        plan.rationale.append(
            "constant filters applied before planning: "
            + "; ".join(str(f) for f in compiled.filters)
        )
    if compiled.descending:
        plan.rationale.append(
            "DESC: executed on weight-negated relations (heaviest-first "
            "order via ascending enumeration of negated weights)"
        )
    if compiled.is_projection and plan.estimates.free_connex is False:
        plan.rationale.append(
            "projection is not free-connex: full rows are enumerated and "
            "projected on emission (duplicates are kept, bag semantics)"
        )
    return plan
