"""Relation statistics for cost-based routing.

The planner's raw material: per-atom cardinalities and join-key fan-outs
pulled from the :class:`~repro.data.database.Database`.  Statistics are
computed on demand at planning time (the library's engines assume no
precomputation — tutorial §1's setting), so gathering them is kept to
single passes over the relations involved in the query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery
from repro.util.lru import LruCache


@dataclass(frozen=True)
class AtomStats:
    """Statistics of one query atom's relation."""

    relation: str
    size: int
    #: per-variable number of distinct values in the column(s) binding it
    distinct: dict  # variable -> int

    def max_fanout(self, variable: str) -> float:
        """Upper bound on rows per distinct value of ``variable``."""
        d = self.distinct.get(variable, 0)
        return float(self.size) if d == 0 else self.size / d


@dataclass(frozen=True)
class CatalogStats:
    """Everything the router reads about the data."""

    atoms: tuple[AtomStats, ...]
    max_size: int  # n, the paper's size parameter
    total_tuples: int

    @classmethod
    def gather(
        cls,
        db: Database,
        query: ConjunctiveQuery,
        with_fanouts: bool = False,
    ) -> "CatalogStats":
        """Gather stats for ``query``'s atoms.

        ``with_fanouts`` additionally computes per-variable distinct
        counts (an O(n) index build per bound column set).  The current
        routing rules only read cardinalities, so the default keeps
        planning O(1) per atom; pass ``True`` when fan-out estimates are
        wanted.
        """
        cardinalities = db.sizes()
        atoms = []
        for index, atom in enumerate(query.atoms):
            relation = db[atom.relation]
            distinct = {}
            if with_fanouts:
                positions = query.atom_variable_positions(index)
                for variable, cols in positions.items():
                    attrs = tuple(relation.schema[c] for c in cols)
                    distinct[variable] = relation.distinct_count(attrs)
            atoms.append(
                AtomStats(
                    relation=atom.relation,
                    size=cardinalities[atom.relation],
                    distinct=distinct,
                )
            )
        sizes = [a.size for a in atoms]
        return cls(
            atoms=tuple(atoms),
            max_size=max(sizes) if sizes else 0,
            total_tuples=db.total_tuples(),
        )

    @property
    def sizes(self) -> list[int]:
        return [a.size for a in self.atoms]

    def any_empty(self) -> bool:
        return any(a.size == 0 for a in self.atoms)


def database_fingerprint(db: Database, only=None) -> tuple:
    """A cheap, hashable token identifying the catalog's *shape*.

    Covers relation names, schemas, cardinalities, and copy-on-write
    version ids — everything the router's statistics read, plus the one
    token that distinguishes equal-cardinality generations of mutated
    data (delete one row, insert another: same length, different
    contents, different version).  Relation objects are immutable after
    registration (:meth:`Relation.copy` shares row storage on that
    basis); mutations go through :class:`repro.dynamic.VersionedDatabase`,
    which publishes *new* relation objects with bumped versions — so two
    equal fingerprints mean cached plans and statistics still describe
    the data.  O(#relations), not O(tuples): fingerprinting must stay far
    cheaper than the planning it short-cuts.

    ``only`` restricts the fingerprint to the named relations (the ones
    a statement's FROM list references), so mutating relation ``S`` does
    not invalidate cached plans for queries that only touch ``R`` —
    names absent from the catalog contribute a distinct marker, so a
    later-added relation of that name still changes the fingerprint.
    """
    if only is None:
        return tuple(
            sorted((r.name, r.schema, len(r), r.version) for r in db)
        )
    names = set(only)
    items = [
        (r.name, r.schema, len(r), r.version) for r in db if r.name in names
    ]
    items.extend(
        (name, None, -1, -1) for name in names if name not in db
    )
    return tuple(sorted(items, key=lambda item: item[0]))


class StatsCache:
    """Memoized :meth:`CatalogStats.gather` keyed on catalog fingerprint.

    Statistics gathering is a per-query scan of the catalog; a serving
    workload replays the same query shapes against the same catalog.
    Default (cardinality-only) stats are pure functions of the
    fingerprint — it covers exactly what they read: names, schemas,
    sizes.  *Fan-out* stats additionally read relation contents, which
    the fingerprint deliberately does not hash (it must stay O(#relations)),
    so ``with_fanouts=True`` bypasses the cache rather than risk serving
    one filtered instance's distinct counts for another's.  Bounded LRU
    (the same :class:`~repro.util.lru.LruCache` as the fractional-cover
    LP memo and the plan cache), thread-safe for the concurrent server
    regime.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self._lru = LruCache(maxsize)

    def gather(
        self,
        db: Database,
        query: ConjunctiveQuery,
        with_fanouts: bool = False,
    ) -> CatalogStats:
        """Cached equivalent of :meth:`CatalogStats.gather`."""
        if with_fanouts:  # content-dependent: not soundly cacheable here
            return CatalogStats.gather(db, query, with_fanouts=True)
        key = (
            database_fingerprint(db),
            tuple(atom.relation for atom in query.atoms),
            tuple(atom.variables for atom in query.atoms),
        )
        cached = self._lru.get(key)
        if cached is not None:
            return cached
        stats = CatalogStats.gather(db, query)
        self._lru.put(key, stats)
        return stats

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def info(self) -> dict:
        """Hit/miss counters for the server's ``stats`` endpoint."""
        return self._lru.info()
