"""Relation statistics for cost-based routing.

The planner's raw material: per-atom cardinalities and join-key fan-outs
pulled from the :class:`~repro.data.database.Database`.  Statistics are
computed on demand at planning time (the library's engines assume no
precomputation — tutorial §1's setting), so gathering them is kept to
single passes over the relations involved in the query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery


@dataclass(frozen=True)
class AtomStats:
    """Statistics of one query atom's relation."""

    relation: str
    size: int
    #: per-variable number of distinct values in the column(s) binding it
    distinct: dict  # variable -> int

    def max_fanout(self, variable: str) -> float:
        """Upper bound on rows per distinct value of ``variable``."""
        d = self.distinct.get(variable, 0)
        return float(self.size) if d == 0 else self.size / d


@dataclass(frozen=True)
class CatalogStats:
    """Everything the router reads about the data."""

    atoms: tuple[AtomStats, ...]
    max_size: int  # n, the paper's size parameter
    total_tuples: int

    @classmethod
    def gather(
        cls,
        db: Database,
        query: ConjunctiveQuery,
        with_fanouts: bool = False,
    ) -> "CatalogStats":
        """Gather stats for ``query``'s atoms.

        ``with_fanouts`` additionally computes per-variable distinct
        counts (an O(n) index build per bound column set).  The current
        routing rules only read cardinalities, so the default keeps
        planning O(1) per atom; pass ``True`` when fan-out estimates are
        wanted.
        """
        cardinalities = db.sizes()
        atoms = []
        for index, atom in enumerate(query.atoms):
            relation = db[atom.relation]
            distinct = {}
            if with_fanouts:
                positions = query.atom_variable_positions(index)
                for variable, cols in positions.items():
                    attrs = tuple(relation.schema[c] for c in cols)
                    distinct[variable] = relation.distinct_count(attrs)
            atoms.append(
                AtomStats(
                    relation=atom.relation,
                    size=cardinalities[atom.relation],
                    distinct=distinct,
                )
            )
        sizes = [a.size for a in atoms]
        return cls(
            atoms=tuple(atoms),
            max_size=max(sizes) if sizes else 0,
            total_tuples=db.total_tuples(),
        )

    @property
    def sizes(self) -> list[int]:
        return [a.size for a in self.atoms]

    def any_empty(self) -> bool:
        return any(a.size == 0 for a in self.atoms)
