"""CA — the Combined Algorithm of Fagin, Lotem and Naor (tutorial Part 1).

TA resolves every newly seen object immediately by random access; NRA never
random-accesses.  CA interpolates for settings where a random access costs
``ratio`` times a sorted access (e.g. disk seeks vs scans): it runs NRA-style
rounds of sorted access and only every ``ratio`` rounds spends random
accesses — on the most promising unresolved candidate — keeping the total
cost within a constant of optimal for the combined cost measure.

This implementation follows the structure of the original paper at the
granularity the tutorial discusses: NRA bookkeeping (lower/upper bounds),
periodic resolution of the best-upper-bound candidate, and the NRA stopping
rule over exact-or-bounded scores.
"""

from __future__ import annotations

from typing import Hashable

from repro.topk.access import Aggregate, VerticalSource, sum_aggregate


def combined_algorithm(
    source: VerticalSource,
    k: int,
    aggregate: Aggregate = sum_aggregate,
    ratio: int = 5,
    min_score: float = 0.0,
) -> list[tuple[Hashable, float]]:
    """Top-k with cost-balanced sorted/random accesses.

    ``ratio`` models c_random / c_sorted; larger ratios make CA behave like
    NRA, ``ratio=1`` approaches TA.  Returns ``(object, score)`` pairs with
    exact scores for resolved objects and tight lower bounds otherwise; the
    returned *set* is a correct top-k (same contract as NRA).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    m = source.num_lists
    partial: dict[Hashable, dict[int, float]] = {}
    resolved: set[Hashable] = set()

    def lower(scores: dict[int, float]) -> float:
        return aggregate([scores.get(j, min_score) for j in range(m)])

    def upper(scores: dict[int, float]) -> float:
        return aggregate(
            [scores.get(j, source.last_seen_score(j)) for j in range(m)]
        )

    round_number = 0
    while not all(source.exhausted(j) for j in range(m)):
        round_number += 1
        for j in range(m):
            pair = source.sorted_next(j)
            if pair is None:
                continue
            obj, score = pair
            partial.setdefault(obj, {})[j] = score

        if round_number % ratio == 0:
            # Resolve the unresolved candidate with the best upper bound.
            candidates = [
                (upper(scores), repr(obj), obj)
                for obj, scores in partial.items()
                if obj not in resolved
            ]
            if candidates:
                _, _, best = max(candidates)
                scores = partial[best]
                for j in range(m):
                    if j not in scores:
                        scores[j] = source.random_access(j, best)
                resolved.add(best)

        if len(partial) < k:
            continue
        ranked = sorted(
            partial.items(), key=lambda item: (-lower(item[1]), repr(item[0]))
        )
        top_k, rest = ranked[:k], ranked[k:]
        kth_lower = lower(top_k[-1][1])
        unseen_upper = aggregate([source.last_seen_score(j) for j in range(m)])
        rest_upper = max(
            (upper(scores) for _, scores in rest), default=float("-inf")
        )
        if kth_lower >= max(rest_upper, unseen_upper):
            return [(obj, lower(scores)) for obj, scores in top_k]

    ranked = sorted(
        partial.items(), key=lambda item: (-lower(item[1]), repr(item[0]))
    )
    return [(obj, lower(scores)) for obj, scores in ranked[:k]]
