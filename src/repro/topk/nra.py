"""NRA — No-Random-Access algorithm (tutorial Part 1).

For sources that only support sorted access, NRA maintains for every seen
object a score interval: the *lower bound* substitutes the worst possible
score (``min_score``) for unseen lists, the *upper bound* substitutes the
current sorted-access frontier of each unseen list.  It can stop once the
k-th best lower bound is no smaller than the best upper bound of any other
object — at the price of more sorted accesses and per-round bookkeeping
than TA (experiment E5).

The returned scores are the objects' true aggregates only when their
intervals have closed; NRA guarantees the *set* is a correct top-k, which
is what the tests verify (by score multiset against the oracle).
"""

from __future__ import annotations

from typing import Hashable

from repro.topk.access import Aggregate, VerticalSource, sum_aggregate


def nra(
    source: VerticalSource,
    k: int,
    aggregate: Aggregate = sum_aggregate,
    min_score: float = 0.0,
) -> list[tuple[Hashable, float]]:
    """Top-k by aggregate score using sorted access only.

    ``min_score`` is the smallest score any list can assign (0 for the
    generators in this library).  Returns ``(object, lower_bound)`` pairs;
    lower bounds equal true scores for objects seen in every list.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    m = source.num_lists
    partial: dict[Hashable, dict[int, float]] = {}

    def lower(scores: dict[int, float]) -> float:
        return aggregate(
            [scores.get(j, min_score) for j in range(m)]
        )

    def upper(scores: dict[int, float]) -> float:
        return aggregate(
            [
                scores.get(j, source.last_seen_score(j))
                for j in range(m)
            ]
        )

    while not all(source.exhausted(j) for j in range(m)):
        for j in range(m):
            pair = source.sorted_next(j)
            if pair is None:
                continue
            obj, score = pair
            partial.setdefault(obj, {})[j] = score

        if len(partial) < k:
            continue
        # Current top-k by lower bound (deterministic tie-break).
        ranked = sorted(
            partial.items(),
            key=lambda item: (-lower(item[1]), repr(item[0])),
        )
        top_k = ranked[:k]
        rest = ranked[k:]
        kth_lower = lower(top_k[-1][1])
        # Unseen objects are bounded by the all-frontier aggregate.
        unseen_upper = aggregate(
            [source.last_seen_score(j) for j in range(m)]
        )
        rest_upper = max(
            (upper(scores) for _, scores in rest), default=float("-inf")
        )
        if kth_lower >= max(rest_upper, unseen_upper):
            return [(obj, lower(scores)) for obj, scores in top_k]

    # Lists exhausted: all scores are complete.
    ranked = sorted(
        partial.items(), key=lambda item: (-lower(item[1]), repr(item[0]))
    )
    return [(obj, lower(scores)) for obj, scores in ranked[:k]]
