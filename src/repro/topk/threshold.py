"""The Threshold Algorithm (TA) of Fagin, Lotem and Naor (tutorial Part 1).

TA interleaves sorted and random access: each object delivered by sorted
access is immediately completed by random access to all other lists; the
algorithm stops as soon as the k-th best complete score reaches the
*threshold* τ — the aggregate of the current sorted-access frontiers, an
upper bound on the score of any unseen object.  TA is instance-optimal
among algorithms using the same access operations (2014 Gödel Prize); its
cost never exceeds FA's by more than a constant factor and is often far
lower, which experiment E4 measures across correlation regimes.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.topk.access import Aggregate, VerticalSource, sum_aggregate


def threshold_algorithm(
    source: VerticalSource,
    k: int,
    aggregate: Aggregate = sum_aggregate,
) -> list[tuple[Hashable, float]]:
    """Top-k objects by aggregate score, TA style.

    Returns ``(object, score)`` pairs, best first.  ``aggregate`` must be
    monotone in each coordinate for the threshold bound to be valid.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    m = source.num_lists

    # Min-heap of (score, repr, object) keeps the current top-k.
    top: list[tuple[float, str, Hashable]] = []
    completed: set[Hashable] = set()

    while not all(source.exhausted(j) for j in range(m)):
        frontier: list[float] = []
        for j in range(m):
            pair = source.sorted_next(j)
            if pair is None:
                frontier.append(source.last_seen_score(j))
                continue
            obj, score = pair
            frontier.append(score)
            if obj in completed:
                continue
            completed.add(obj)
            scores = [
                score if i == j else source.random_access(i, obj)
                for i in range(m)
            ]
            total = aggregate(scores)
            entry = (total, repr(obj), obj)
            if len(top) < k:
                heapq.heappush(top, entry)
            elif entry > top[0]:
                heapq.heapreplace(top, entry)
        threshold = aggregate(frontier)
        if len(top) >= k and top[0][0] >= threshold:
            break

    ranked = sorted(top, key=lambda triple: (-triple[0], triple[1]))
    return [(obj, score) for score, _, obj in ranked]
