"""The middleware access model of Fagin, Lotem and Naor (tutorial Part 1).

A conceptual table is vertically partitioned into m scored lists, each
managed by an external source that can serve

- *sorted access*: the next (object, score) pair in descending score order;
- *random access*: the score of a given object in a given list.

The Threshold Algorithm's celebrated instance optimality holds in the cost
model that counts exactly these two operations ("the actual computation is
essentially free" — §1).  :class:`VerticalSource` simulates the sources
in-memory and counts both access kinds in a
:class:`~repro.util.counters.Counters`, so experiments E4/E5 can report the
access-model cost next to RAM-model work.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.util.counters import Counters

Aggregate = Callable[[Sequence[float]], float]


def sum_aggregate(scores: Sequence[float]) -> float:
    """Default monotone aggregation: the sum of the list scores."""
    return float(sum(scores))


def min_aggregate(scores: Sequence[float]) -> float:
    """Bottleneck aggregation (also monotone)."""
    return float(min(scores))


class VerticalSource:
    """m sorted lists over a shared object universe, with access counting.

    Parameters
    ----------
    lists:
        One list per partition: ``(object_id, score)`` pairs sorted by
        descending score.  Every object must appear in every list (the
        standard completeness assumption of the TA setting); this is
        validated at construction.
    counters:
        Optional counter sink; ``sorted_accesses`` / ``random_accesses``
        are incremented per operation.
    """

    def __init__(
        self,
        lists: Sequence[Sequence[tuple[Hashable, float]]],
        counters: Optional[Counters] = None,
    ) -> None:
        if not lists:
            raise ValueError("need at least one list")
        self._lists = [list(column) for column in lists]
        universe = {obj for obj, _ in self._lists[0]}
        for j, column in enumerate(self._lists):
            if {obj for obj, _ in column} != universe:
                raise ValueError(
                    f"list {j} covers a different object set; the TA model "
                    "assumes complete lists"
                )
            for (_, a), (_, b) in zip(column, column[1:]):
                if a < b:
                    raise ValueError(f"list {j} is not sorted by descending score")
        self._random_index = [
            {obj: score for obj, score in column} for column in self._lists
        ]
        self._cursors = [0] * len(self._lists)
        self.counters = counters if counters is not None else Counters()

    @property
    def num_lists(self) -> int:
        """m — the number of vertical partitions."""
        return len(self._lists)

    @property
    def num_objects(self) -> int:
        """Size of the object universe."""
        return len(self._lists[0])

    def depth(self, list_index: int) -> int:
        """How far sorted access has descended into list ``list_index``."""
        return self._cursors[list_index]

    def exhausted(self, list_index: int) -> bool:
        """True when sorted access has consumed the whole list."""
        return self._cursors[list_index] >= len(self._lists[list_index])

    def sorted_next(self, list_index: int) -> Optional[tuple[Hashable, float]]:
        """Sorted access: next pair from list ``list_index`` (or None)."""
        cursor = self._cursors[list_index]
        column = self._lists[list_index]
        if cursor >= len(column):
            return None
        self.counters.sorted_accesses += 1
        self._cursors[list_index] = cursor + 1
        return column[cursor]

    def last_seen_score(self, list_index: int) -> float:
        """Score at the current sorted-access frontier of the list.

        Before any sorted access this is the list's top score (the best any
        unseen object could have).
        """
        cursor = self._cursors[list_index]
        column = self._lists[list_index]
        if cursor == 0:
            return column[0][1] if column else float("-inf")
        return column[min(cursor, len(column)) - 1][1]

    def random_access(self, list_index: int, obj: Hashable) -> float:
        """Random access: the score of ``obj`` in list ``list_index``."""
        self.counters.random_accesses += 1
        try:
            return self._random_index[list_index][obj]
        except KeyError as exc:
            raise KeyError(
                f"object {obj!r} not present in list {list_index}"
            ) from exc

    def reset(self) -> None:
        """Rewind all sorted-access cursors (counters are left alone)."""
        self._cursors = [0] * len(self._lists)

    def brute_force_topk(self, k: int, aggregate: Aggregate = sum_aggregate):
        """Oracle top-k by scanning everything (for tests); not counted."""
        universe = [obj for obj, _ in self._lists[0]]
        scored = [
            (
                aggregate(
                    [self._random_index[j][obj] for j in range(self.num_lists)]
                ),
                obj,
            )
            for obj in universe
        ]
        scored.sort(key=lambda pair: (-pair[0], repr(pair[1])))
        return [(obj, score) for score, obj in scored[:k]]
