"""Top-k algorithms for join queries (tutorial Part 1).

Two families are implemented, matching the tutorial's structure:

**Middleware / top-k selection** (:mod:`repro.topk.access`,
:mod:`repro.topk.fagin`, :mod:`repro.topk.threshold`,
:mod:`repro.topk.nra`): a single conceptual table vertically partitioned
into scored lists, each supporting sorted and (except NRA) random access.
Costs are counted in the access model in which TA's instance optimality is
stated — and the same runs also report RAM-model counters, the tutorial's
methodological point.

**Rank joins** (:mod:`repro.topk.rank_join`): HRJN-style binary operators
over inputs sorted by weight, composable into left-deep plans, with the
corner-bound threshold that lets them stop early when the top answers come
from the top of the inputs.

Convention note: the middleware algorithms follow the top-k literature and
maximize *scores* (higher = better); the rank joins follow the rest of this
library and minimize *weights* (lower = better), matching the "lightest
4-cycles" framing.  ``score = -weight`` converts between them.
"""

from repro.topk.access import VerticalSource
from repro.topk.ca import combined_algorithm
from repro.topk.fagin import fagins_algorithm
from repro.topk.jstar import jstar_stream, jstar_topk
from repro.topk.nra import nra
from repro.topk.rank_join import HRJN, RelationScan, rank_join_topk
from repro.topk.threshold import threshold_algorithm

__all__ = [
    "VerticalSource",
    "fagins_algorithm",
    "threshold_algorithm",
    "nra",
    "combined_algorithm",
    "HRJN",
    "RelationScan",
    "rank_join_topk",
    "jstar_stream",
    "jstar_topk",
]
