"""Fagin's Algorithm (FA) — the precursor of TA (tutorial Part 1).

FA proceeds in two phases: (1) round-robin sorted access until at least k
objects have been seen *in every list*; (2) random access to complete the
scores of every object seen anywhere; then return the best k.  Correctness
follows from monotonicity of the aggregate: an object never seen under
sorted access is dominated in every list by the k fully-seen ones.

FA has no instance-optimality guarantee — on anti-correlated inputs it
descends far deeper than TA, which experiment E4 reproduces.
"""

from __future__ import annotations

from typing import Hashable

from repro.topk.access import Aggregate, VerticalSource, sum_aggregate


def fagins_algorithm(
    source: VerticalSource,
    k: int,
    aggregate: Aggregate = sum_aggregate,
) -> list[tuple[Hashable, float]]:
    """Top-k objects by aggregate score, FA style.

    Returns ``(object, score)`` pairs, best first; ties broken by object
    repr for determinism.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    m = source.num_lists
    seen_scores: dict[Hashable, dict[int, float]] = {}
    fully_seen = 0

    # Phase 1: round-robin sorted access until k objects seen everywhere.
    while fully_seen < k and not all(source.exhausted(j) for j in range(m)):
        for j in range(m):
            pair = source.sorted_next(j)
            if pair is None:
                continue
            obj, score = pair
            scores = seen_scores.setdefault(obj, {})
            if j not in scores:
                scores[j] = score
                if len(scores) == m:
                    fully_seen += 1
        if fully_seen >= k:
            break

    # Phase 2: complete partially-seen objects by random access to the
    # lists that have not delivered them yet.
    scored: list[tuple[float, str, Hashable]] = []
    for obj, scores in seen_scores.items():
        full = [
            scores[j] if j in scores else source.random_access(j, obj)
            for j in range(m)
        ]
        scored.append((aggregate(full), repr(obj), obj))
    scored.sort(key=lambda triple: (-triple[0], triple[1]))
    return [(obj, score) for score, _, obj in scored[:k]]
