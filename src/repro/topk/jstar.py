"""J* — A*-style incremental join over ranked inputs (tutorial Part 1).

Natsev et al.'s J* algorithm treats a top-k join as a search problem: a
state is a partial assignment of one tuple per input stream, its priority
is the weight of the assigned tuples plus an *admissible* bound — the head
(minimum) weight of every unassigned stream — and a global priority queue
explores states best-first.  Complete consistent states pop in exact
ranking order, which makes J* an anytime ranked-enumeration operator like
HRJN, but "holistic": one queue over all streams rather than a binary
operator tree.

States here bind streams in a fixed order and carry a cursor into the
current stream, so each pop expands into at most two successors (bind the
cursor's tuple, or advance the cursor) — the standard lazy formulation.
The tutorial's RAM-model caveat applies unchanged: on anti-correlated
inputs or cyclic queries, J* explores (and buffers) states proportional to
intermediate-result sizes.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterator, Optional

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters
from repro.util.heaps import BinaryHeap


def jstar_stream(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    order: Optional[list[int]] = None,
) -> Iterator[tuple[tuple, float]]:
    """Enumerate ``(row, weight)`` in nondecreasing weight order via J*.

    ``order`` fixes the stream binding order (defaults to query order).
    Weight combination must be monotone for the bound to stay admissible.
    """
    query.validate(db)
    order = list(order) if order is not None else list(range(len(query.atoms)))
    streams: list[Relation] = [
        atom_relation(db, query, i).sorted_by_weight() for i in order
    ]
    if any(len(s) == 0 for s in streams):
        return
    num_streams = len(streams)
    #: optimistic completion: combine of head weights of streams j..end
    tail_bound = [0.0] * (num_streams + 1)
    tail_bound[num_streams] = 0.0
    for j in range(num_streams - 1, -1, -1):
        head = streams[j].weights[0]
        tail_bound[j] = (
            head if j == num_streams - 1 else combine(head, tail_bound[j + 1])
        )

    # Variable binding bookkeeping per stream.
    schemas = [s.schema for s in streams]

    def compatible(bound_rows: tuple, j: int, row: tuple) -> bool:
        binding = {}
        for row_index in range(len(bound_rows)):
            for variable, value in zip(schemas[row_index], bound_rows[row_index]):
                binding[variable] = value
        for variable, value in zip(schemas[j], row):
            if variable in binding and binding[variable] != value:
                if counters is not None:
                    counters.comparisons += 1
                return False
        return True

    def priority(weight_so_far: float, j: int, cursor: int) -> float:
        candidate = streams[j].weights[cursor]
        value = (
            combine(weight_so_far, candidate) if j > 0 else candidate
        )
        if j + 1 < num_streams:
            value = combine(value, tail_bound[j + 1])
        return value

    heap = BinaryHeap(counters)
    # State: (bound_rows, weight_so_far, stream j, cursor into stream j).
    heap.push(priority(0.0, 0, 0), ((), 0.0, 0, 0))

    out_schema: list[str] = []
    for schema in schemas:
        for variable in schema:
            if variable not in out_schema:
                out_schema.append(variable)
    out_positions = [out_schema.index(v) for v in query.variables]

    while heap:
        _, (bound_rows, weight_so_far, j, cursor) = heap.pop()
        stream = streams[j]
        row = stream.rows[cursor]
        row_weight = stream.weights[cursor]
        if counters is not None:
            counters.tuples_read += 1

        # Successor 1: advance the cursor within stream j.
        if cursor + 1 < len(stream):
            heap.push(
                priority(weight_so_far, j, cursor + 1),
                (bound_rows, weight_so_far, j, cursor + 1),
            )

        # Successor 2: bind this tuple if consistent with the prefix.
        if not compatible(bound_rows, j, row):
            continue
        new_weight = combine(weight_so_far, row_weight) if j > 0 else row_weight
        new_rows = bound_rows + (row,)
        if j + 1 == num_streams:
            flat: list = [None] * len(out_schema)
            for row_index in range(num_streams):
                for variable, value in zip(schemas[row_index], new_rows[row_index]):
                    flat[out_schema.index(variable)] = value
            if counters is not None:
                counters.output_tuples += 1
            yield tuple(flat[p] for p in out_positions), new_weight
        else:
            heap.push(
                priority(new_weight, j + 1, 0),
                (new_rows, new_weight, j + 1, 0),
            )


def jstar_topk(
    db: Database,
    query: ConjunctiveQuery,
    k: int,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
) -> list[tuple[tuple, float]]:
    """The k lightest join results via J*."""
    if k < 1:
        raise ValueError("k must be >= 1")
    results = []
    for item in jstar_stream(db, query, counters=counters, combine=combine):
        results.append(item)
        if len(results) == k:
            break
    return results
