"""Rank joins: HRJN and HRJN* (tutorial Part 1).

The rank-join family (J*, RankJoin/HRJN, LARA-J*, …) extends TA's idea to
real joins: inputs arrive sorted by weight, the operator joins incrementally
and uses a *corner bound* to decide when the best buffered result can be
emitted.  In this library's min-weight convention, after pulling prefixes of
the two inputs with first/last weights (L₁, lℓ) and (R₁, rℓ), any result
involving an unseen tuple weighs at least

    τ = min(lℓ + R₁, L₁ + rℓ)

so every buffered result with weight ≤ τ is safe to emit.  The operator
produces its own output in nondecreasing weight order, hence HRJN operators
compose into left-deep trees (:func:`rank_join_topk`).

When the constituent tuples of the top results sit deep in the inputs, the
bound stays loose and rank joins degrade toward full materialization — the
behaviour experiments E6/E7 measure (and the intermediate-result blowup on
cyclic queries that motivates the any-k algorithms of Part 3).
"""

from __future__ import annotations

import operator
from typing import Callable, Iterator, Optional, Protocol

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.base import atom_relation
from repro.obs.memory import (
    hrjn_result_bytes,
    hrjn_seen_bytes,
    sorted_scan_bytes,
    tracker_of,
)
from repro.query.cq import ConjunctiveQuery
from repro.util.counters import Counters
from repro.util.heaps import BinaryHeap


class RankedInput(Protocol):
    """Pull-based stream of (row, weight) in nondecreasing weight order."""

    schema: tuple[str, ...]

    def pull(self) -> Optional[tuple[tuple, float]]:
        """Next item, or None when exhausted."""


class RelationScan:
    """Sorted scan of a relation — the leaf of a rank-join plan.

    Sorting happens at construction (query time, per the tutorial's no
    precomputation assumption); every pull counts as a sorted access.
    """

    def __init__(
        self, relation: Relation, counters: Optional[Counters] = None
    ) -> None:
        self.schema = tuple(relation.schema)
        self._sorted = relation.sorted_by_weight()
        self._cursor = 0
        self._counters = counters
        self.name = relation.name
        space = tracker_of(counters)
        if space is not None:
            space.gauge("rankjoin.sorted", sorted_scan_bytes()).add(
                len(self._sorted)
            )

    def pull(self) -> Optional[tuple[tuple, float]]:
        if self._cursor >= len(self._sorted):
            return None
        if self._counters is not None:
            self._counters.sorted_accesses += 1
        row = self._sorted.rows[self._cursor]
        weight = self._sorted.weights[self._cursor]
        self._cursor += 1
        return row, weight

    @property
    def depth(self) -> int:
        """Tuples consumed so far."""
        return self._cursor


class HRJN:
    """Hash Rank Join of two ranked inputs (natural join on shared names).

    ``strategy='alternate'`` pulls inputs round-robin (HRJN); ``'corner'``
    pulls the input whose corner term currently equals the bound, tightening
    it fastest (HRJN*).
    """

    def __init__(
        self,
        left: RankedInput,
        right: RankedInput,
        counters: Optional[Counters] = None,
        combine: Callable[[float, float], float] = operator.add,
        strategy: str = "alternate",
    ) -> None:
        if strategy not in ("alternate", "corner"):
            raise ValueError(f"unknown pull strategy {strategy!r}")
        self._left = left
        self._right = right
        self._counters = counters
        self._combine = combine
        self._strategy = strategy
        self.schema = tuple(left.schema) + tuple(
            a for a in right.schema if a not in left.schema
        )
        self._shared = tuple(a for a in left.schema if a in right.schema)
        self._left_key = tuple(left.schema.index(a) for a in self._shared)
        self._right_key = tuple(right.schema.index(a) for a in self._shared)
        self._right_extra = [
            right.schema.index(a) for a in self.schema if a not in left.schema
        ]
        self._seen_left: dict[tuple, list[tuple[tuple, float]]] = {}
        self._seen_right: dict[tuple, list[tuple[tuple, float]]] = {}
        self._first: list[Optional[float]] = [None, None]
        self._last: list[float] = [float("-inf"), float("-inf")]
        self._done = [False, False]
        space = tracker_of(counters)
        if space is None:
            self._seen_gauge = buffer_gauge = None
        else:
            self._seen_gauge = space.gauge("hrjn.seen", hrjn_seen_bytes())
            buffer_gauge = space.gauge(
                "hrjn.buffer", hrjn_result_bytes(len(self.schema))
            )
        self._buffer = BinaryHeap(counters, gauge=buffer_gauge)
        self._turn = 0

    # -- bound bookkeeping -------------------------------------------------
    def _corner_terms(self) -> tuple[float, float]:
        """(bound from unseen-left results, bound from unseen-right)."""
        inf = float("inf")
        if self._done[0] or self._first[1] is None:
            unseen_left = inf if self._done[0] else -inf
        else:
            unseen_left = self._combine(self._last[0], self._first[1])
        if self._done[1] or self._first[0] is None:
            unseen_right = inf if self._done[1] else -inf
        else:
            unseen_right = self._combine(self._first[0], self._last[1])
        return unseen_left, unseen_right

    def threshold(self) -> float:
        """Lower bound on the weight of any not-yet-buffered result."""
        return min(self._corner_terms())

    # -- pulling -----------------------------------------------------------
    def _pull_side(self, side: int) -> bool:
        """Pull one tuple from a side; join it against the other side's
        seen tuples; buffer the results.  Returns False on exhaustion."""
        source = self._left if side == 0 else self._right
        item = source.pull()
        if item is None:
            self._done[side] = True
            return False
        row, weight = item
        if self._first[side] is None:
            self._first[side] = weight
        self._last[side] = weight

        if side == 0:
            key = tuple(row[p] for p in self._left_key)
            self._seen_left.setdefault(key, []).append((row, weight))
            partners = self._seen_right.get(key, ())
        else:
            key = tuple(row[p] for p in self._right_key)
            self._seen_right.setdefault(key, []).append((row, weight))
            partners = self._seen_left.get(key, ())
        if self._seen_gauge is not None:
            self._seen_gauge.add(1)
        if self._counters is not None:
            self._counters.hash_probes += 1
        for other_row, other_weight in partners:
            if side == 0:
                left_row, right_row = row, other_row
                total = self._combine(weight, other_weight)
            else:
                left_row, right_row = other_row, row
                total = self._combine(other_weight, weight)
            out = tuple(left_row) + tuple(right_row[p] for p in self._right_extra)
            self._buffer.push(total, out)
            if self._counters is not None:
                self._counters.intermediate_tuples += 1
        return True

    def _choose_side(self) -> int:
        if self._done[0]:
            return 1
        if self._done[1]:
            return 0
        if (
            self._strategy == "alternate"
            or self._first[0] is None
            or self._first[1] is None
        ):
            side = self._turn
            self._turn = 1 - self._turn
            return side
        # HRJN*: pull the side whose corner term is the current minimum —
        # the one holding the bound down.
        unseen_left, unseen_right = self._corner_terms()
        return 0 if unseen_left <= unseen_right else 1

    def pull(self) -> Optional[tuple[tuple, float]]:
        """Next join result in nondecreasing weight order."""
        while True:
            if self._buffer:
                weight, row = self._buffer.peek()
                if weight <= self.threshold():
                    self._buffer.pop()
                    if self._counters is not None:
                        self._counters.output_tuples += 1
                    return row, weight
            if self._done[0] and self._done[1]:
                if not self._buffer:
                    return None
                weight, row = self._buffer.pop()
                if self._counters is not None:
                    self._counters.output_tuples += 1
                return row, weight
            self._pull_side(self._choose_side())


def rank_join_topk(
    db: Database,
    query: ConjunctiveQuery,
    k: int,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    strategy: str = "alternate",
    order: Optional[list[int]] = None,
) -> list[tuple[tuple, float]]:
    """Top-k lightest query results via a left-deep HRJN plan.

    Atoms are joined in ``order`` (default: query order); the result rows
    follow the plan's schema, reordered to the query's variable order.
    Returns at most k ``(row, weight)`` pairs, lightest first.
    """
    query.validate(db)
    if k < 1:
        raise ValueError("k must be >= 1")
    order = list(order) if order is not None else list(range(len(query.atoms)))

    plan: RankedInput = RelationScan(
        atom_relation(db, query, order[0]), counters=counters
    )
    for atom_index in order[1:]:
        scan = RelationScan(
            atom_relation(db, query, atom_index), counters=counters
        )
        plan = HRJN(plan, scan, counters=counters, combine=combine, strategy=strategy)

    positions = [plan.schema.index(v) for v in query.variables]
    results: list[tuple[tuple, float]] = []
    while len(results) < k:
        item = plan.pull()
        if item is None:
            break
        row, weight = item
        results.append((tuple(row[p] for p in positions), weight))
    return results


def rank_join_stream(
    db: Database,
    query: ConjunctiveQuery,
    counters: Optional[Counters] = None,
    combine: Callable[[float, float], float] = operator.add,
    strategy: str = "alternate",
) -> Iterator[tuple[tuple, float]]:
    """Unbounded ranked enumeration through the HRJN plan (anytime use)."""
    query.validate(db)
    plan: RankedInput = RelationScan(
        atom_relation(db, query, 0), counters=counters
    )
    for atom_index in range(1, len(query.atoms)):
        scan = RelationScan(
            atom_relation(db, query, atom_index), counters=counters
        )
        plan = HRJN(plan, scan, counters=counters, combine=combine, strategy=strategy)
    positions = [plan.schema.index(v) for v in query.variables]
    while True:
        item = plan.pull()
        if item is None:
            return
        row, weight = item
        yield tuple(row[p] for p in positions), weight
