"""Ranking functions as selective dioids (tutorial Part 3).

The companion paper frames the class of ranking functions any-k algorithms
support algebraically: a *selective dioid* — a semiring whose "addition" is
selective (x ⊕ y ∈ {x, y}, i.e. min under a total order) and whose
"multiplication" ⊗ accumulates weights along a solution and is monotone
w.r.t. the order.  Monotonicity is exactly what makes the DP principle of
optimality (and hence ranked enumeration) work.

A :class:`RankingFunction` packages ⊗, its identity, and a ``lift`` from raw
float tuple weights into the dioid's carrier.  Provided instances:

- :data:`SUM` — tropical (min, +): total weight of the combination, the
  "lightest 4-cycles" ranking;
- :data:`MAX` — bottleneck (min, max): minimize the heaviest participating
  tuple;
- :data:`PRODUCT` — (min, ×) over positive weights, via logs;
- :data:`LEX` — lexicographic comparison of the per-stage weight vector
  (carrier: tuples of floats).

All carriers compare with ``<`` and support equality, which is all the
enumeration machinery assumes.

Deterministic tie-breaking
--------------------------
Equal-weight results are ordered by *tuple identity* — the total order
:func:`solution_tie_key` puts on output rows — never by insertion order.
Insertion order is an artifact of how an engine happened to discover a
result (heap tick, bucket layout, shard assignment), so two executions
over differently laid-out inputs would disagree on it; the row itself is
a property of the *answer*.  :func:`stabilize_ties` enforces the order on
any nondecreasing stream, and is what makes a hash-sharded parallel run
(:mod:`repro.parallel`) byte-identical to a serial one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class RankingFunction:
    """A selective dioid driving ranked enumeration.

    Attributes
    ----------
    name:
        Identifier used in benchmarks and ``repr``.
    combine:
        The monotone accumulation operator ⊗ on the carrier.
    identity:
        ⊗'s identity element (the weight of an empty combination).
    lift:
        Maps a raw input-tuple weight (float) into the carrier.
    float_based:
        True when the carrier is ``float`` — required for cyclic-query
        rewrites, which pre-combine weights inside derived relations.
    """

    name: str
    combine: Callable[[Any, Any], Any]
    identity: Any
    lift: Callable[[float], Any]
    float_based: bool = True
    raw_combine: Callable[[float, float], float] | None = None

    def combine_many(self, weights) -> Any:
        """Fold ⊗ over an iterable (in iteration order)."""
        total = self.identity
        first = True
        for w in weights:
            total = w if first else self.combine(total, w)
            first = False
        return total

    def float_combine(self) -> Callable[[float, float], float]:
        """⊗ in *raw weight space*, for engines that pre-combine weights.

        The contract is ``lift(raw_combine(a, b)) == combine(lift(a),
        lift(b))`` so that a derived relation storing pre-combined raw
        weights ranks identically (e.g. PRODUCT pre-combines with ``a*b``,
        not with ``log a + log b``).  Raises :class:`TypeError` for
        non-float carriers (LEX), whose weights cannot be collapsed inside
        derived relations.
        """
        if not self.float_based or self.raw_combine is None:
            raise TypeError(
                f"ranking {self.name!r} has a non-float carrier and cannot "
                "be pre-combined inside derived relations"
            )
        return self.raw_combine

    def __repr__(self) -> str:
        return f"RankingFunction({self.name})"


def _product_lift(weight: float) -> float:
    if weight <= 0:
        raise ValueError(
            f"PRODUCT ranking requires strictly positive weights, got {weight}"
        )
    return math.log(weight)


#: Tropical sum: results ranked by total weight (the default everywhere).
SUM = RankingFunction(
    "sum", lambda a, b: a + b, 0.0, float, raw_combine=lambda a, b: a + b
)

#: Bottleneck: results ranked by their heaviest participating tuple.
MAX = RankingFunction(
    "max", max, float("-inf"), float, raw_combine=lambda a, b: max(a, b)
)

#: Product of (positive) weights, compared in log space for stability.
PRODUCT = RankingFunction(
    "product",
    lambda a, b: a + b,
    0.0,
    _product_lift,
    raw_combine=lambda a, b: a * b,
)

#: Lexicographic: compare per-stage weight vectors position by position.
#: Carrier is tuples; all solutions of one query have equal-length vectors,
#: which keeps concatenation strictly monotone.
LEX = RankingFunction(
    "lex",
    lambda a, b: a + b,
    (),
    lambda w: (float(w),),
    float_based=False,
)

#: Rankings usable by every engine including cyclic rewrites.
FLOAT_RANKINGS = (SUM, MAX, PRODUCT)

#: All provided rankings.
ALL_RANKINGS = (SUM, MAX, PRODUCT, LEX)

#: Name -> instance, the registry process-pool workers resolve against:
#: a :class:`RankingFunction` holds lambdas and so cannot cross a pickle
#: boundary — its *name* can (:mod:`repro.parallel.workers`).
RANKINGS_BY_NAME: dict[str, RankingFunction] = {
    ranking.name: ranking for ranking in ALL_RANKINGS
}


def ranking_by_name(name: str) -> RankingFunction:
    """Resolve a provided ranking by its registry name."""
    try:
        return RANKINGS_BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown ranking {name!r}; known: {sorted(RANKINGS_BY_NAME)}"
        ) from None


# ----------------------------------------------------------------------
# Deterministic tie-breaking
# ----------------------------------------------------------------------
def solution_tie_key(row: tuple) -> tuple:
    """A total order on output rows, independent of value types.

    Each value is decorated with its class name so heterogeneous columns
    (the hub-graph generators mix ``"b"``-style hub labels with integer
    spokes) never hit an unorderable ``int < str`` comparison: values
    order by type name first, then by value within one type.
    """
    return tuple((value.__class__.__name__, value) for value in row)


def stabilize_ties(
    stream: Iterable[tuple[tuple, Any]],
    key: Callable[[tuple], Any] = solution_tie_key,
) -> Iterator[tuple[tuple, Any]]:
    """Re-emit a nondecreasing ranked stream with deterministic tie order.

    Consecutive results of *equal* weight form a tie group; each group is
    emitted sorted by ``key`` of the row.  Since the input stream is
    nondecreasing, a group is complete as soon as a strictly heavier
    result (or exhaustion) is seen, so the extra latency is one result of
    lookahead and the extra memory one tie group — the anytime property
    survives.  Weights are compared with ``==`` in the ranking carrier.
    """
    iterator = iter(stream)
    head = next(iterator, None)
    if head is None:
        return
    group = [head]
    group_weight = head[1]
    for item in iterator:
        if item[1] == group_weight:
            group.append(item)
            continue
        if len(group) > 1:
            group.sort(key=lambda pair: key(pair[0]))
        yield from group
        group = [item]
        group_weight = item[1]
    if len(group) > 1:
        group.sort(key=lambda pair: key(pair[0]))
    yield from group
