"""Public façade: ranked enumeration for any full conjunctive query.

:func:`rank_enumerate` picks the pipeline by query shape:

- acyclic  → full reducer + T-DP + the chosen any-k algorithm;
- 4-cycle  → heavy/light union of trees, one T-DP per tree, global merge;
- other cyclic → single GHD rewrite, then the acyclic pipeline.

Methods (the ``method`` argument, also listed in :data:`METHODS`):

``part:eager | part:lazy | part:quick | part:take2 | part:all``
    ANYK-PART with the respective bucket successor strategy.
``rec``
    ANYK-REC (recursive enumeration with memoized streams).
``batch``
    Full join then sort (baseline; not anytime).
``lawler``
    Naive Lawler–Murty with from-scratch subproblem solving (polynomial
    delay; the strawman of experiment E10).  Acyclic queries only.
``auto``
    Defer the choice to the cost-based router (:mod:`repro.engine`),
    which weighs query shape, ``k``, and the AGM bound — the same rules
    the SQL front-end (:mod:`repro.sql`) applies to every statement.

Example
-------
>>> from repro.data.generators import path_database
>>> from repro.query.cq import path_query
>>> from repro.anyk import rank_enumerate
>>> db = path_database(length=3, size=50, domain=10, seed=7)
>>> for row, weight in rank_enumerate(db, path_query(3), k=3):
...     print(weight, row)      # three lightest 3-paths   # doctest: +SKIP
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Iterator, Optional

from repro.anyk.batch import batch_enumerate
from repro.anyk.cyclic import (
    is_fourcycle,
    rank_enumerate_fourcycle,
    rank_enumerate_ghd,
)
from repro.anyk.part import STRATEGIES, anyk_part, naive_lawler
from repro.anyk.ranking import RankingFunction, SUM, stabilize_ties
from repro.anyk.rec import anyk_rec
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.query.hypergraph import gyo_reduction
from repro.util.counters import Counters

#: All anytime-capable methods accepted by :func:`rank_enumerate`.
#: ``method="auto"`` additionally defers the choice to the router.
METHODS: tuple[str, ...] = tuple(
    f"part:{name}" for name in sorted(STRATEGIES)
) + ("rec", "batch", "lawler")

#: Default for ``rank_enumerate(compile_kernels=...)``: compiled
#: enumeration kernels are on unless ``REPRO_ANYK_KERNELS=0`` (the
#: interpreted path stays available for differential testing and as the
#: fallback for unsupported shapes).  Read once at import, so worker
#: processes inherit the setting through their environment.
KERNELS_DEFAULT: bool = os.environ.get("REPRO_ANYK_KERNELS", "1") != "0"


def _enumerator_factory(method: str):
    """Map a method name to a TDP -> iterator factory."""
    if method.startswith("part:"):
        strategy = method.split(":", 1)[1]
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown PART strategy {strategy!r}; known: {sorted(STRATEGIES)}"
            )
        return lambda tdp: anyk_part(tdp, strategy=strategy)
    if method == "rec":
        return anyk_rec
    if method == "lawler":
        return naive_lawler
    raise ValueError(f"unknown any-k method {method!r}; known: {METHODS}")


def rank_enumerate(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
    workers: Optional[int] = None,
    deterministic: bool = True,
    compile_kernels: Optional[bool] = None,
    kernel_slot: Optional[Any] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Enumerate query answers in nondecreasing ranking order.

    Yields ``(row, weight)`` pairs; ``row`` follows ``query.variables``,
    ``weight`` lives in the ranking function's carrier (a float for SUM /
    MAX / PRODUCT).  ``k`` truncates the stream; omitted, the stream runs
    to exhaustion (the "any-k" contract: callers stop whenever satisfied).

    Equal-weight results are emitted in :func:`solution_tie_key` order
    (tuple identity), so the stream is a pure function of the query and
    data — not of engine internals.  The cost is buffering one tie group
    at a time, which degenerates exactly when weights degenerate: an
    *unweighted* join (every weight 0.0) is one output-sized tie group,
    so its first result waits for the whole join.  Pass
    ``deterministic=False`` to skip tie stabilization and recover strict
    anytime delay there — ties then follow engine internals, and
    parallel execution is refused (a nondeterministic shard merge could
    not match any serial order).

    ``workers > 1`` requests partition-parallel execution: the database
    is hash-sharded on a join attribute, each shard enumerates in its own
    worker process, and the per-shard streams are lazily merged back into
    one globally ranked stream (:mod:`repro.parallel`), byte-identical to
    the serial stream.  Queries the sharder cannot split soundly (cyclic
    shapes, unregistered rankings) silently run serial; with
    ``method="auto"`` the cost-based router additionally vetoes sharding
    when the input is too small to amortize fork+pickle overhead (the
    decision is visible in ``explain()``).

    ``compile_kernels`` toggles the code-generated enumeration kernels
    (:mod:`repro.anyk.kernels`) that specialize the T-DP inner loops to
    this query's shape; ``None`` (the default) follows
    :data:`KERNELS_DEFAULT`.  Compiled streams are byte-identical to
    interpreted ones; unsupported shapes silently run interpreted.
    ``kernel_slot`` (a :class:`repro.anyk.kernels.KernelSlot`) lets a
    plan cache pin the compiled template across executions so warm
    statements skip kernel setup too.
    """
    query.validate(db)
    if k is not None and k < 1:
        raise ValueError("k must be >= 1 when given")

    shard_variable: Optional[str] = None
    shard_policy = "hash"
    if method == "auto":
        # Deferred import: repro.engine sits above this module.
        from repro.engine.planner import route

        plan = route(
            db, query, ranking=ranking, k=k, allow_middleware=False,
            workers=workers,
        )
        method = plan.engine
        # The router may veto sharding; when it shards, execute its
        # exact decision (variable + policy), not a re-derivation.
        workers = plan.workers
        shard_variable = plan.shard_variable
        shard_policy = plan.shard_policy

    if workers is not None and workers > 1 and deterministic:
        # Deferred import: repro.parallel sits above this module.
        from repro.parallel import is_shardable, parallel_rank_enumerate

        if is_shardable(query, ranking, method):
            return parallel_rank_enumerate(
                db,
                query,
                ranking=ranking,
                method=method,
                k=k,
                counters=counters,
                workers=workers,
                shard_variable=shard_variable,
                policy=shard_policy,
            )

    if method == "batch":
        # batch_enumerate already sorts by (weight, solution_tie_key),
        # deterministic or not — sorting the full output is its nature.
        stream = batch_enumerate(db, query, ranking=ranking, counters=counters)
        return stream if k is None else itertools.islice(stream, k)

    tree = gyo_reduction(query)
    if tree is not None:
        tdp = TDP(db, query, ranking=ranking, tree=tree, counters=counters)
        use_kernels = (
            KERNELS_DEFAULT if compile_kernels is None else compile_kernels
        )
        if use_kernels and method != "lawler":
            # The naive-Lawler strawman stays interpreted on purpose: its
            # whole point is measuring the uncompiled from-scratch cost.
            from repro.anyk.kernels import install_kernels

            install_kernels(tdp, slot=kernel_slot, engine=method)
        stream = _enumerator_factory(method)(tdp)
    elif method == "lawler":
        raise QueryError("the naive-Lawler baseline supports acyclic queries only")
    elif is_fourcycle(query):
        stream = rank_enumerate_fourcycle(
            db, query, ranking, _enumerator_factory(method), counters=counters
        )
    else:
        stream = rank_enumerate_ghd(
            db, query, ranking, _enumerator_factory(method), counters=counters
        )
    if deterministic:
        stream = stabilize_ties(stream)
    return stream if k is None else itertools.islice(stream, k)


class StreamClosed(RuntimeError):
    """A :class:`PausableStream` was closed with results still pending.

    Distinct from exhaustion on purpose: answering a pull on a closed
    stream with "done" would silently truncate the ranked result set.
    Callers racing a concurrent close (the server's cursor eviction) get
    this error instead and can report the session as gone.
    """


class PausableStream:
    """A ranked stream that can be drained in increments and resumed.

    The any-k contract says callers may stop after any prefix; this
    wrapper makes the complementary *pause* explicit: :meth:`take` pulls
    the next ``n`` results and leaves the underlying enumeration iterator
    suspended exactly where it stopped, so a later :meth:`take` continues
    the ranked order with no recomputation.  That is what turns anytime
    enumeration into server-side pagination (:mod:`repro.server` keeps
    one of these per open cursor).

    Thread-safe: a lock serializes pulls, so two concurrent fetches on the
    same cursor cannot interleave inside the generator frame (generators
    raise ``ValueError: already executing`` otherwise — corrupted pulls at
    worst).  Results are handed out in pull order.
    """

    def __init__(self, stream: Iterator[tuple[tuple, Any]]) -> None:
        self._iterator = iter(stream)
        self._lock = threading.Lock()
        self._exhausted = False
        self._closed = False
        self._emitted = 0

    @property
    def exhausted(self) -> bool:
        """True once the underlying enumeration has run dry."""
        return self._exhausted

    @property
    def closed(self) -> bool:
        """True after :meth:`close` (whether or not results remained)."""
        return self._closed

    @property
    def emitted(self) -> int:
        """How many results have been handed out so far."""
        return self._emitted

    def take(
        self, n: int, deadline: Optional[float] = None
    ) -> tuple[list[tuple[tuple, Any]], bool]:
        """Pull up to ``n`` more results; returns ``(results, done)``.

        ``deadline`` (a :func:`time.monotonic` timestamp) bounds the pull:
        enumeration stops early once the clock passes it, returning the
        results produced so far with ``done=False`` — the anytime
        property as a latency SLO.  ``n <= 0`` returns nothing (but still
        reports exhaustion state).  Pulling from a stream that was
        :meth:`close`-d before running dry raises :class:`StreamClosed`
        (done-on-close would silently truncate the ranked stream).
        """
        out: list[tuple[tuple, Any]] = []
        with self._lock:
            if self._exhausted:
                return out, True
            if self._closed:
                raise StreamClosed(
                    "the stream was closed with results still pending"
                )
            while len(out) < n:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                try:
                    out.append(next(self._iterator))
                except StopIteration:
                    self._exhausted = True
                    break
            self._emitted += len(out)
            return out, self._exhausted

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        while True:
            results, done = self.take(1)
            if results:
                yield results[0]
            if done:
                return

    def close(self) -> None:
        """Dispose of the underlying iterator (frees generator frames)."""
        with self._lock:
            self._closed = True
            close = getattr(self._iterator, "close", None)
            if close is not None:
                close()


def top_k(
    db: Database,
    query: ConjunctiveQuery,
    k: int,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    counters: Optional[Counters] = None,
) -> list[tuple[tuple, Any]]:
    """The k lightest answers as a list (convenience wrapper)."""
    return list(
        rank_enumerate(
            db, query, ranking=ranking, method=method, k=k, counters=counters
        )
    )
