"""Public façade: ranked enumeration for any full conjunctive query.

:func:`rank_enumerate` picks the pipeline by query shape:

- acyclic  → full reducer + T-DP + the chosen any-k algorithm;
- 4-cycle  → heavy/light union of trees, one T-DP per tree, global merge;
- other cyclic → single GHD rewrite, then the acyclic pipeline.

Methods (the ``method`` argument, also listed in :data:`METHODS`):

``part:eager | part:lazy | part:quick | part:take2 | part:all``
    ANYK-PART with the respective bucket successor strategy.
``rec``
    ANYK-REC (recursive enumeration with memoized streams).
``batch``
    Full join then sort (baseline; not anytime).
``lawler``
    Naive Lawler–Murty with from-scratch subproblem solving (polynomial
    delay; the strawman of experiment E10).  Acyclic queries only.
``auto``
    Defer the choice to the cost-based router (:mod:`repro.engine`),
    which weighs query shape, ``k``, and the AGM bound — the same rules
    the SQL front-end (:mod:`repro.sql`) applies to every statement.

Example
-------
>>> from repro.data.generators import path_database
>>> from repro.query.cq import path_query
>>> from repro.anyk import rank_enumerate
>>> db = path_database(length=3, size=50, domain=10, seed=7)
>>> for row, weight in rank_enumerate(db, path_query(3), k=3):
...     print(weight, row)      # three lightest 3-paths   # doctest: +SKIP
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional

from repro.anyk.batch import batch_enumerate
from repro.anyk.cyclic import (
    is_fourcycle,
    rank_enumerate_fourcycle,
    rank_enumerate_ghd,
)
from repro.anyk.part import STRATEGIES, anyk_part, naive_lawler
from repro.anyk.ranking import RankingFunction, SUM
from repro.anyk.rec import anyk_rec
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.query.hypergraph import gyo_reduction
from repro.util.counters import Counters

#: All anytime-capable methods accepted by :func:`rank_enumerate`.
#: ``method="auto"`` additionally defers the choice to the router.
METHODS: tuple[str, ...] = tuple(
    f"part:{name}" for name in sorted(STRATEGIES)
) + ("rec", "batch", "lawler")


def _enumerator_factory(method: str):
    """Map a method name to a TDP -> iterator factory."""
    if method.startswith("part:"):
        strategy = method.split(":", 1)[1]
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown PART strategy {strategy!r}; known: {sorted(STRATEGIES)}"
            )
        return lambda tdp: anyk_part(tdp, strategy=strategy)
    if method == "rec":
        return anyk_rec
    if method == "lawler":
        return naive_lawler
    raise ValueError(f"unknown any-k method {method!r}; known: {METHODS}")


def rank_enumerate(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    k: Optional[int] = None,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Enumerate query answers in nondecreasing ranking order.

    Yields ``(row, weight)`` pairs; ``row`` follows ``query.variables``,
    ``weight`` lives in the ranking function's carrier (a float for SUM /
    MAX / PRODUCT).  ``k`` truncates the stream; omitted, the stream runs
    to exhaustion (the "any-k" contract: callers stop whenever satisfied).
    """
    query.validate(db)
    if k is not None and k < 1:
        raise ValueError("k must be >= 1 when given")

    if method == "auto":
        # Deferred import: repro.engine sits above this module.
        from repro.engine.planner import choose_method

        method = choose_method(db, query, ranking=ranking, k=k)

    if method == "batch":
        stream = batch_enumerate(db, query, ranking=ranking, counters=counters)
        return stream if k is None else itertools.islice(stream, k)

    tree = gyo_reduction(query)
    if tree is not None:
        tdp = TDP(db, query, ranking=ranking, tree=tree, counters=counters)
        stream = _enumerator_factory(method)(tdp)
    elif method == "lawler":
        raise QueryError("the naive-Lawler baseline supports acyclic queries only")
    elif is_fourcycle(query):
        stream = rank_enumerate_fourcycle(
            db, query, ranking, _enumerator_factory(method), counters=counters
        )
    else:
        stream = rank_enumerate_ghd(
            db, query, ranking, _enumerator_factory(method), counters=counters
        )
    return stream if k is None else itertools.islice(stream, k)


def top_k(
    db: Database,
    query: ConjunctiveQuery,
    k: int,
    ranking: RankingFunction = SUM,
    method: str = "part:lazy",
    counters: Optional[Counters] = None,
) -> list[tuple[tuple, Any]]:
    """The k lightest answers as a list (convenience wrapper)."""
    return list(
        rank_enumerate(
            db, query, ranking=ranking, method=method, k=k, counters=counters
        )
    )
