"""Tree-based dynamic programming over a join tree (tutorial Part 3).

The companion paper's central construction: after a full-reducer pass, an
acyclic full conjunctive query becomes a *non-serial dynamic program* whose
stages are the join-tree nodes (here serialized in DFS pre-order), whose
states are the surviving input tuples, and whose solutions — one tuple per
stage, consistent along tree edges — are exactly the query answers.

Key objects:

- :class:`Stage` — one join-tree node: its reduced relation, the join-key
  positions linking it to its parent, and its DFS subtree extent.
- :class:`Bucket` — the tuples of a stage sharing one parent join-key
  value, with their *subtree weights* (the tuple's lifted weight ⊗ the best
  achievable completion of its whole subtree) and the bucket minimum.
  Buckets are the unit on which the ANYK-PART successor strategies operate.
- :class:`TDP` — builds stages and buckets bottom-up in O(n) after
  reduction, and provides the weight/row algebra shared by ANYK-PART and
  ANYK-REC: canonical solution weights fold in DFS pre-order, so partial
  (prefix) priorities and full solution weights are always comparable —
  this is what makes non-float rankings such as LEX safe on trees.

A *solution prefix* is a choice of tuples for stages ``0..L-1`` (DFS order
guarantees each stage's parent is chosen before it).  Its *priority* — the
exact weight of the best full solution extending it — folds assigned lifts
and, for each frontier subtree, the corresponding bucket minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.anyk.ranking import RankingFunction, SUM
from repro.joins.semijoin import full_reducer
from repro.obs.memory import tdp_bucket_bytes, tdp_tuple_bytes, tracker_of
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, join_tree_or_raise
from repro.util.counters import Counters


@dataclass
class Bucket:
    """Tuples of one stage sharing a parent join-key value.

    ``tuple_ids`` index into the stage relation; ``subtree_weights`` is
    parallel.  ``best_position`` points at the (first) minimum.
    ``structure`` is a per-strategy successor structure attached lazily by
    ANYK-PART; ``stream`` is the memoized solution stream attached lazily
    by ANYK-REC.
    """

    tuple_ids: list[int]
    subtree_weights: list[Any]
    best_position: int = 0
    structure: Any = None
    stream: Any = None

    @property
    def best_weight(self) -> Any:
        """Minimum subtree weight in the bucket."""
        return self.subtree_weights[self.best_position]

    @property
    def best_tuple(self) -> int:
        """Tuple id achieving the bucket minimum."""
        return self.tuple_ids[self.best_position]

    def __len__(self) -> int:
        return len(self.tuple_ids)


@dataclass
class Stage:
    """One DP stage: a join-tree node in DFS pre-order."""

    position: int
    atom_index: int
    relation: Relation
    parent: Optional[int]  # stage position of the parent
    #: positions (in this relation's schema) of the join vars with parent
    own_key_positions: tuple[int, ...]
    #: positions (in the parent relation's schema) of the same join vars
    parent_key_positions: tuple[int, ...]
    children: list[int] = field(default_factory=list)
    subtree_size: int = 1


class TDP:
    """The compiled dynamic program for one acyclic full CQ.

    Construction performs the full-reducer pass and the bottom-up subtree-
    weight computation — O~(n) total — after which every any-k algorithm
    enumerates without touching the base database again.
    """

    def __init__(
        self,
        db: Database,
        query: ConjunctiveQuery,
        ranking: RankingFunction = SUM,
        tree: Optional[JoinTree] = None,
        counters: Optional[Counters] = None,
    ) -> None:
        query.validate(db)
        self.query = query
        self.ranking = ranking
        self.counters = counters
        self.tree = tree if tree is not None else join_tree_or_raise(query)
        reduced = full_reducer(db, query, tree=self.tree, counters=counters)

        self.stages: list[Stage] = []
        self._build_stages(reduced)
        self.num_stages = len(self.stages)

        # Lifted tuple weights per stage (parallel to relation rows).
        lift = ranking.lift
        self.lifted: list[list[Any]] = [
            [lift(w) for w in stage.relation.weights] for stage in self.stages
        ]

        #: per stage: parent-key -> Bucket
        self.buckets: list[dict[tuple, Bucket]] = [
            {} for _ in range(self.num_stages)
        ]
        self._compute_bottom_up()

        # Output assembly: for each stage, (schema position, output position)
        # pairs for variables first bound at this stage.
        seen: set[str] = set()
        self._writers: list[list[tuple[int, int]]] = []
        out_position = {v: i for i, v in enumerate(query.variables)}
        for stage in self.stages:
            writers = []
            for schema_position, variable in enumerate(stage.relation.schema):
                if variable not in seen:
                    seen.add(variable)
                    writers.append((schema_position, out_position[variable]))
            self._writers.append(writers)

        # Static footprint: the compiled program holds every surviving
        # tuple's bucket/weight state for its whole lifetime, so account
        # for it once here rather than on any hot path.
        space = tracker_of(counters)
        if space is not None:
            space.gauge("tdp.tuples", tdp_tuple_bytes()).add(
                self.total_tuples()
            )
            space.gauge("tdp.buckets", tdp_bucket_bytes()).add(
                sum(len(stage_buckets) for stage_buckets in self.buckets)
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_stages(self, reduced: dict[int, Relation]) -> None:
        """DFS pre-order serialization of the join tree."""
        position_of_atom: dict[int, int] = {}

        def visit(atom_index: int, parent_position: Optional[int]) -> None:
            relation = reduced[atom_index]
            if parent_position is None:
                own_key: tuple[int, ...] = ()
                parent_key: tuple[int, ...] = ()
            else:
                parent_stage = self.stages[parent_position]
                join_vars = sorted(
                    set(relation.schema) & set(parent_stage.relation.schema)
                )
                own_key = relation.positions(join_vars)
                parent_key = parent_stage.relation.positions(join_vars)
            position = len(self.stages)
            position_of_atom[atom_index] = position
            stage = Stage(
                position=position,
                atom_index=atom_index,
                relation=relation,
                parent=parent_position,
                own_key_positions=own_key,
                parent_key_positions=parent_key,
            )
            self.stages.append(stage)
            if parent_position is not None:
                self.stages[parent_position].children.append(position)
            for child_atom in self.tree.children[atom_index]:
                visit(child_atom, position)
            stage.subtree_size = len(self.stages) - position

        visit(self.tree.root, None)

    def _compute_bottom_up(self) -> None:
        """Subtree weights and buckets, children before parents."""
        combine = self.ranking.combine
        for position in range(self.num_stages - 1, -1, -1):
            stage = self.stages[position]
            relation = stage.relation
            lifted = self.lifted[position]
            subtree: list[Any] = []
            for tuple_id, row in enumerate(relation.rows):
                if self.counters is not None:
                    self.counters.tuples_read += 1
                weight = lifted[tuple_id]
                for child_position in stage.children:
                    child_stage = self.stages[child_position]
                    key = tuple(
                        row[p] for p in child_stage.parent_key_positions
                    )
                    child_bucket = self.buckets[child_position][key]
                    weight = combine(weight, child_bucket.best_weight)
                subtree.append(weight)
            # Bucket the tuples by parent join key.
            stage_buckets = self.buckets[position]
            for tuple_id, row in enumerate(relation.rows):
                key = tuple(row[p] for p in stage.own_key_positions)
                bucket = stage_buckets.get(key)
                if bucket is None:
                    bucket = Bucket(tuple_ids=[], subtree_weights=[])
                    stage_buckets[key] = bucket
                bucket.tuple_ids.append(tuple_id)
                bucket.subtree_weights.append(subtree[tuple_id])
            for bucket in stage_buckets.values():
                best = 0
                weights = bucket.subtree_weights
                for i in range(1, len(weights)):
                    if self.counters is not None:
                        self.counters.comparisons += 1
                    if weights[i] < weights[best]:
                        best = i
                bucket.best_position = best

    # ------------------------------------------------------------------
    # Accessors used by the enumeration algorithms
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True iff the query has no answers (root bucket empty/absent)."""
        root = self.buckets[0].get(())
        return root is None or len(root) == 0

    def root_bucket(self) -> Optional[Bucket]:
        """The single bucket of the root stage (key ``()``), or None."""
        return self.buckets[0].get(())

    def bucket_for(self, position: int, choices: Sequence[int]) -> Bucket:
        """The stage's bucket selected by the parent's chosen tuple.

        ``choices[stage.parent]`` must be assigned.  After the full
        reducer, the bucket always exists.
        """
        stage = self.stages[position]
        if stage.parent is None:
            return self.buckets[0][()]
        parent_row = self.stages[stage.parent].relation.rows[
            choices[stage.parent]
        ]
        key = tuple(parent_row[p] for p in stage.parent_key_positions)
        return self.buckets[position][key]

    def prefix_priority(self, choices: Sequence[int]) -> Any:
        """Exact weight of the best full solution extending ``choices``.

        Folds, in DFS pre-order: the lifted weight of each assigned stage,
        and for each frontier stage (unassigned, parent assigned) its
        bucket minimum — then skips that stage's whole DFS subtree, which
        the bucket minimum already accounts for.
        """
        length = len(choices)
        combine = self.ranking.combine
        total = self.ranking.identity
        first = True
        position = 0
        while position < self.num_stages:
            if position < length:
                contribution = self.lifted[position][choices[position]]
                step = 1
            else:
                bucket = self.bucket_for(position, choices)
                contribution = bucket.best_weight
                step = self.stages[position].subtree_size
            total = contribution if first else combine(total, contribution)
            first = False
            position += step
        return total

    def solution_weight(self, choices: Sequence[int]) -> Any:
        """Weight of a full solution (DFS-order fold of lifted weights)."""
        if len(choices) != self.num_stages:
            raise ValueError("solution must assign every stage")
        return self.prefix_priority(choices)

    def expand_best(self, choices: list[int]) -> list[int]:
        """Extend a prefix to the best full solution, in place (greedy:
        each remaining stage takes its bucket minimum)."""
        for position in range(len(choices), self.num_stages):
            bucket = self.bucket_for(position, choices)
            choices.append(bucket.best_tuple)
        return choices

    def solution_row(self, choices: Sequence[int]) -> tuple:
        """Assemble the output row of a full solution."""
        out: list = [None] * len(self.query.variables)
        for position, stage in enumerate(self.stages):
            row = stage.relation.rows[choices[position]]
            for schema_position, out_position in self._writers[position]:
                out[out_position] = row[schema_position]
        return tuple(out)

    def total_tuples(self) -> int:
        """Total surviving tuples across stages (the naive-Lawler cost)."""
        return sum(len(stage.relation) for stage in self.stages)
