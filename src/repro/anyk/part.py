"""ANYK-PART: Lawler–Murty ranked enumeration over the T-DP (Part 3).

The Lawler–Murty procedure partitions the solution space by *prefix
deviations*: when the best solution S of a subspace is emitted, the
remainder of the subspace is split, per position j, into the solutions that
agree with S before j and deviate at j.  Exploiting the T-DP structure, the
best solution of each piece is known *exactly* without solving anything
from scratch — prefix weight plus frontier bucket minima
(:meth:`repro.anyk.tdp.TDP.prefix_priority`) — which is what brings the
delay from polynomial (naive Lawler, also provided here as
:class:`NaiveLawler` for experiment E10) down to O(log k).

The variants of the companion paper differ only in how the *successor* of a
tuple inside a bucket (ordered by subtree weight) is found:

========  ==================================================================
Eager     every touched bucket is fully sorted on first use
Lazy      incremental heap-sort per bucket (pay O(log b) per rank needed)
Quick     incremental quickselect per bucket
Take2     bucket heapified once; "successors" are the ≤ 2 heap children,
          so every pop inserts O(1) candidates
All       no order at all: deviating into a bucket inserts *all* its
          alternatives at once
========  ==================================================================

Each candidate subspace is encoded as ``(choices, anchor)``: ``choices``
fixes tuples for stages ``0..L-1``; the last choice is constrained to rank
≥ its own (per strategy); earlier choices are exact.  Popping a candidate
emits its best solution and spawns one horizontal successor (next rank at
stage L-1) plus one vertical deviation per later stage — exactly Lawler's
partition, so every solution is enumerated exactly once.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.anyk.tdp import TDP, Bucket
from repro.obs.memory import pq_entry_bytes, tracker_of
from repro.util.heaps import (
    BinaryHeap,
    IncrementalQuickSelect,
    LazySortedList,
    TournamentBucket,
)


def _pq_gauge(tdp: TDP):
    """The candidate-queue space gauge when profiling is on, else None."""
    space = tracker_of(tdp.counters)
    if space is None:
        return None
    return space.gauge("part.pq", pq_entry_bytes(tdp.num_stages))


class SuccessorStrategy:
    """How ANYK-PART walks a bucket in nondecreasing subtree-weight order.

    ``anchor`` values are strategy-specific handles (sorted rank, heap
    position, …).  ``first`` returns the bucket's best element's anchor;
    ``successors(bucket, anchor)`` returns the anchors whose subspaces
    partition "strictly after ``anchor``" within the bucket;
    ``deviations(bucket)`` returns the anchors partitioning "everything but
    the best".  ``tuple_at`` / ``weight_at`` resolve an anchor.
    """

    name = "abstract"

    def __init__(self, counters=None) -> None:
        self.counters = counters

    def prepare(self, bucket: Bucket) -> None:
        raise NotImplementedError

    def first(self, bucket: Bucket) -> Any:
        raise NotImplementedError

    def initial_anchors(self, bucket: Bucket) -> list:
        """Anchors that together cover the whole bucket at start-up.

        A single ``first`` anchor suffices when horizontal successors chain
        through the bucket; the All strategy has no successors and seeds
        every element instead.
        """
        return [self.first(bucket)]

    def successors(self, bucket: Bucket, anchor: Any) -> list:
        raise NotImplementedError

    def deviations(self, bucket: Bucket) -> list:
        raise NotImplementedError

    def tuple_at(self, bucket: Bucket, anchor: Any) -> int:
        raise NotImplementedError


class _RankedStrategy(SuccessorStrategy):
    """Shared logic for strategies whose anchor is a sorted rank."""

    def _entry(self, bucket: Bucket, rank: int) -> Optional[int]:
        """Position (into bucket arrays) of the rank-th smallest, or None."""
        raise NotImplementedError

    def first(self, bucket: Bucket) -> int:
        return 0

    def successors(self, bucket: Bucket, anchor: int) -> list[int]:
        if anchor + 1 < len(bucket):
            return [anchor + 1]
        return []

    def deviations(self, bucket: Bucket) -> list[int]:
        if len(bucket) > 1:
            return [1]
        return []

    def tuple_at(self, bucket: Bucket, anchor: int) -> int:
        position = self._entry(bucket, anchor)
        assert position is not None
        return bucket.tuple_ids[position]


class EagerStrategy(_RankedStrategy):
    """Sort each bucket completely on first touch."""

    name = "eager"

    def prepare(self, bucket: Bucket) -> None:
        if bucket.structure is None:
            order = sorted(
                range(len(bucket)),
                key=lambda i: (bucket.subtree_weights[i], i),
            )
            bucket.structure = order
            if self.counters is not None and len(order) > 1:
                # Standard comparison-sort cost model: b ceil(log2 b).
                self.counters.comparisons += len(order) * max(
                    1, (len(order) - 1).bit_length()
                )

    def _entry(self, bucket: Bucket, rank: int) -> Optional[int]:
        order = bucket.structure
        return order[rank] if rank < len(order) else None


class LazyStrategy(_RankedStrategy):
    """Incremental heap-sort per bucket (the paper's default variant)."""

    name = "lazy"

    def prepare(self, bucket: Bucket) -> None:
        if bucket.structure is None:
            bucket.structure = LazySortedList(
                range(len(bucket)),
                key=lambda i: (bucket.subtree_weights[i], i),
                counters=self.counters,
            )

    def _entry(self, bucket: Bucket, rank: int) -> Optional[int]:
        try:
            return bucket.structure.get(rank)
        except IndexError:
            return None


class QuickStrategy(_RankedStrategy):
    """Incremental quickselect per bucket."""

    name = "quick"

    def prepare(self, bucket: Bucket) -> None:
        if bucket.structure is None:
            bucket.structure = IncrementalQuickSelect(
                range(len(bucket)),
                key=lambda i: (bucket.subtree_weights[i], i),
                counters=self.counters,
            )

    def _entry(self, bucket: Bucket, rank: int) -> Optional[int]:
        if rank >= len(bucket):
            return None
        return bucket.structure.get(rank)


class Take2Strategy(SuccessorStrategy):
    """Bucket heapified once; anchors are heap positions.

    Heap children are no smaller than their parent, so replacing "next in
    sorted order" by "the ≤2 heap children" keeps the global priority queue
    correct while bounding the candidates spawned per pop.
    """

    name = "take2"

    def prepare(self, bucket: Bucket) -> None:
        if bucket.structure is None:
            bucket.structure = TournamentBucket(
                range(len(bucket)),
                key=lambda i: (bucket.subtree_weights[i], i),
                counters=self.counters,
            )

    def first(self, bucket: Bucket) -> int:
        return 0

    def successors(self, bucket: Bucket, anchor: int) -> list[int]:
        return bucket.structure.children(anchor)

    def deviations(self, bucket: Bucket) -> list[int]:
        return bucket.structure.children(0)

    def tuple_at(self, bucket: Bucket, anchor: int) -> int:
        return bucket.tuple_ids[bucket.structure.item_at(anchor)]


class AllStrategy(SuccessorStrategy):
    """No bucket ordering: deviations insert every alternative at once.

    Anchors are positions into the bucket arrays; the anchored choice is
    *exact*, so popped candidates spawn no horizontal successors.
    """

    name = "all"

    def prepare(self, bucket: Bucket) -> None:  # nothing to build
        bucket.structure = True

    def first(self, bucket: Bucket) -> int:
        return bucket.best_position

    def successors(self, bucket: Bucket, anchor: int) -> list[int]:
        return []

    def deviations(self, bucket: Bucket) -> list[int]:
        return [i for i in range(len(bucket)) if i != bucket.best_position]

    def initial_anchors(self, bucket: Bucket) -> list[int]:
        return list(range(len(bucket)))

    def tuple_at(self, bucket: Bucket, anchor: int) -> int:
        return bucket.tuple_ids[anchor]


STRATEGIES: dict[str, type[SuccessorStrategy]] = {
    "eager": EagerStrategy,
    "lazy": LazyStrategy,
    "quick": QuickStrategy,
    "take2": Take2Strategy,
    "all": AllStrategy,
}


def anyk_part(
    tdp: TDP, strategy: str = "lazy"
) -> Iterator[tuple[tuple, Any]]:
    """Enumerate ``(row, weight)`` in nondecreasing weight order.

    ``strategy`` selects the bucket successor structure (see module
    docstring).  The generator is lazy: stopping after k results costs
    O((n +) k log k) beyond the T-DP preprocessing already paid.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown ANYK-PART strategy {strategy!r}; "
            f"choose from {sorted(STRATEGIES)}"
        )
    succ = STRATEGIES[strategy](tdp.counters)
    if tdp.is_empty():
        return

    queue = BinaryHeap(tdp.counters, gauge=_pq_gauge(tdp))
    root_bucket = tdp.root_bucket()
    succ.prepare(root_bucket)
    for anchor in succ.initial_anchors(root_bucket):
        choice = succ.tuple_at(root_bucket, anchor)
        queue.push(tdp.prefix_priority((choice,)), ((choice,), anchor))

    m = tdp.num_stages
    while queue:
        priority, (choices, anchor) = queue.pop()
        length = len(choices)
        last_bucket = tdp.bucket_for(length - 1, choices)

        # Expand to the full best solution of this subspace and emit it.
        full = tdp.expand_best(list(choices))
        yield tdp.solution_row(full), priority
        if tdp.counters is not None:
            tdp.counters.output_tuples += 1

        # Horizontal: the rest of the last stage's bucket after `anchor`.
        for next_anchor in succ.successors(last_bucket, anchor):
            new_choice = succ.tuple_at(last_bucket, next_anchor)
            new_choices = choices[:-1] + (new_choice,)
            queue.push(
                tdp.prefix_priority(new_choices), (new_choices, next_anchor)
            )

        # Vertical: deviate at each later stage of the emitted solution.
        for position in range(length, m):
            bucket = tdp.bucket_for(position, full)
            succ.prepare(bucket)
            prefix = tuple(full[:position])
            for dev_anchor in succ.deviations(bucket):
                dev_choice = succ.tuple_at(bucket, dev_anchor)
                dev_choices = prefix + (dev_choice,)
                queue.push(
                    tdp.prefix_priority(dev_choices), (dev_choices, dev_anchor)
                )


def naive_lawler(tdp: TDP) -> Iterator[tuple[tuple, Any]]:
    """Lawler–Murty with from-scratch subproblem solving (experiment E10).

    Structurally identical to :func:`anyk_part` with the Eager strategy,
    but every candidate's priority is recomputed by a full bottom-up pass
    over all surviving tuples — the "direct application of the procedure
    that solves each partition from scratch", whose delay is polynomial in
    the input instead of logarithmic in k.  The extra work is surfaced in
    ``counters.extras['naive_dp_work']``.
    """
    succ = EagerStrategy(tdp.counters)
    if tdp.is_empty():
        return

    def priority(choices: tuple) -> Any:
        # Deliberately wasteful full pass: touch every surviving tuple to
        # recompute what prefix_priority reads off precomputed minima.
        if tdp.counters is not None:
            tdp.counters.bump("naive_dp_work", tdp.total_tuples())
            for stage in tdp.stages:
                tdp.counters.comparisons += len(stage.relation)
        return tdp.prefix_priority(choices)

    queue = BinaryHeap(tdp.counters, gauge=_pq_gauge(tdp))
    root_bucket = tdp.root_bucket()
    succ.prepare(root_bucket)
    anchor = succ.first(root_bucket)
    choice = succ.tuple_at(root_bucket, anchor)
    queue.push(priority((choice,)), ((choice,), anchor))

    m = tdp.num_stages
    while queue:
        prio, (choices, anchor) = queue.pop()
        length = len(choices)
        last_bucket = tdp.bucket_for(length - 1, choices)
        full = tdp.expand_best(list(choices))
        yield tdp.solution_row(full), prio
        if tdp.counters is not None:
            tdp.counters.output_tuples += 1
        for next_anchor in succ.successors(last_bucket, anchor):
            new_choices = choices[:-1] + (succ.tuple_at(last_bucket, next_anchor),)
            queue.push(priority(new_choices), (new_choices, next_anchor))
        for position in range(length, m):
            bucket = tdp.bucket_for(position, full)
            succ.prepare(bucket)
            prefix = tuple(full[:position])
            for dev_anchor in succ.deviations(bucket):
                dev_choices = prefix + (succ.tuple_at(bucket, dev_anchor),)
                queue.push(priority(dev_choices), (dev_choices, dev_anchor))
