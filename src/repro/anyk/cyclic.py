"""Ranked enumeration for cyclic queries (tutorial Parts 3 + 2 combined).

Cyclic queries are handled the way the tutorial describes for optimal join
processing, lifted to ranked enumeration:

- the **4-cycle** uses the heavy/light *union of trees*
  (:mod:`repro.joins.heavylight`): O(n^1.5) materialization, then one T-DP
  per tree and a global merge heap over the per-tree any-k streams.  The
  trees partition the answer space, so the merge needs no deduplication,
  and the whole pipeline achieves the submodular-width-style
  O~(n^1.5 + k) the tutorial highlights for "top-k lightest 4-cycles";
- **other cyclic queries** fall back to a single (fractional-hypertree)
  decomposition: materialize one derived relation per bag
  (:func:`repro.query.decomposition.decompose_to_acyclic`, O~(n^fhw)) and
  run any acyclic any-k algorithm on the rewrite.

Weight bookkeeping: derived relations store *raw pre-combined* weights
(each original atom contributing exactly once), so enumeration over the
rewrite ranks identically to the original query.  Only float-carrier
rankings are supported here (see :meth:`RankingFunction.float_combine`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.anyk.ranking import RankingFunction, SUM
from repro.anyk.tdp import TDP
from repro.data.database import Database
from repro.joins.heavylight import UnionTree, fourcycle_pattern, fourcycle_union_of_trees
from repro.query.cq import ConjunctiveQuery, QueryError
from repro.query.decomposition import decompose_to_acyclic
from repro.util.counters import Counters
from repro.util.heaps import BinaryHeap

#: Type of per-tree enumerator factories: TDP -> iterator of (row, weight).
EnumeratorFactory = Callable[[TDP], Iterator[tuple[tuple, Any]]]


def is_fourcycle(query: ConjunctiveQuery) -> bool:
    """True if the query matches the canonical 4-cycle chain pattern."""
    try:
        fourcycle_pattern(query)
    except QueryError:
        return False
    return True


def enumerate_union_of_trees(
    trees: list[UnionTree],
    output_variables: tuple[str, ...],
    ranking: RankingFunction,
    enumerator: EnumeratorFactory,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Merge per-tree any-k streams into one globally ranked stream.

    Each tree's stream is nondecreasing, and trees are answer-disjoint, so
    a heap holding one head element per stream yields the global order.
    Fixed variables (heavy values bound inside a tree) are re-attached to
    every emitted row.
    """
    streams: list[Iterator[tuple[tuple, Any]]] = []
    assemblers: list[Callable[[tuple], tuple]] = []
    for tree in trees:
        tdp = TDP(tree.database, tree.query, ranking=ranking, counters=counters)
        streams.append(enumerator(tdp))
        tree_vars = tree.query.variables
        fixed = dict(tree.fixed)
        positions: list[tuple[str, Optional[int]]] = [
            (v, tree_vars.index(v) if v in tree_vars else None)
            for v in output_variables
        ]

        def assemble(
            row: tuple, positions=positions, fixed=fixed
        ) -> tuple:
            return tuple(
                row[p] if p is not None else fixed[v] for v, p in positions
            )

        assemblers.append(assemble)

    heap = BinaryHeap(counters)
    for index, stream in enumerate(streams):
        head = next(stream, None)
        if head is not None:
            row, weight = head
            heap.push((weight, index), (index, row))
    while heap:
        (weight, _), (index, row) = heap.pop()
        yield assemblers[index](row), weight
        head = next(streams[index], None)
        if head is not None:
            next_row, next_weight = head
            heap.push((next_weight, index), (index, next_row))


def rank_enumerate_fourcycle(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction,
    enumerator: EnumeratorFactory,
    counters: Optional[Counters] = None,
    threshold: Optional[float] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Any-k over the 4-cycle through the heavy/light union of trees."""
    trees = fourcycle_union_of_trees(
        db,
        query,
        combine=ranking.float_combine(),
        threshold=threshold,
        counters=counters,
    )
    return enumerate_union_of_trees(
        trees, query.variables, ranking, enumerator, counters=counters
    )


def rank_enumerate_ghd(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction,
    enumerator: EnumeratorFactory,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Any-k over an arbitrary cyclic query via a single GHD rewrite."""
    rewrite = decompose_to_acyclic(db, query, combine=ranking.float_combine())
    tdp = TDP(rewrite.database, rewrite.query, ranking=ranking, counters=counters)
    rewrite_vars = rewrite.query.variables
    positions = [rewrite_vars.index(v) for v in query.variables]
    for row, weight in enumerator(tdp):
        yield tuple(row[p] for p in positions), weight
