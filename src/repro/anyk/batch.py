"""Batch baseline: materialize the full join, sort, then emit (Part 3).

The natural competitor of any-k algorithms: compute all r results with a
(worst-case-)optimal join algorithm, sort them by the ranking function, and
return them one by one.  Its time-to-first-result equals the full join plus
an O(r log r) sort — the gap any-k algorithms close — while its time-to-last
is hard to beat, which is exactly the trade-off experiment E8/E9 charts.

Only float-carrier rankings are supported (the join engines pre-combine
weights tuple-by-tuple); LEX needs the per-stage weight vector that only
the T-DP retains.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.anyk.ranking import RankingFunction, SUM, solution_tie_key
from repro.data.database import Database
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction
from repro.util.counters import Counters


def batch_enumerate(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Full join (Yannakakis if acyclic, else Generic-Join), then sort.

    Yields ``(row, lifted_weight)`` in nondecreasing ranking order, with
    ties broken by row for determinism.
    """
    combine = ranking.float_combine()  # raises for LEX, by design
    tree = gyo_reduction(query)
    if tree is not None:
        result = yannakakis_join(db, query, counters=counters, combine=combine, tree=tree)
    else:
        result = generic_join(db, query, counters=counters, combine=combine)
    lift = ranking.lift
    ranked = sorted(
        ((lift(weight), row) for row, weight in zip(result.rows, result.weights)),
        key=lambda pair: (pair[0], solution_tie_key(pair[1])),
    )
    if counters is not None:
        counters.comparisons += max(0, len(ranked) - 1)
    for weight, row in ranked:
        yield row, weight
