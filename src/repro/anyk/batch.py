"""Batch baseline: materialize the full join, sort, then emit (Part 3).

The natural competitor of any-k algorithms: compute all r results with a
(worst-case-)optimal join algorithm, sort them by the ranking function, and
return them one by one.  Its time-to-first-result equals the full join plus
an O(r log r) sort — the gap any-k algorithms close — while its time-to-last
is hard to beat, which is exactly the trade-off experiment E8/E9 charts.

Only float-carrier rankings are supported (the join engines pre-combine
weights tuple-by-tuple); LEX needs the per-stage weight vector that only
the T-DP retains.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.anyk.ranking import RankingFunction, SUM
from repro.data.database import Database
from repro.joins.generic_join import evaluate as generic_join
from repro.joins.yannakakis import evaluate as yannakakis_join
from repro.obs.memory import (
    batch_sort_bytes,
    columnar_row_bytes,
    row_bytes,
    tracker_of,
)
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import gyo_reduction
from repro.util.counters import Counters


def batch_enumerate(
    db: Database,
    query: ConjunctiveQuery,
    ranking: RankingFunction = SUM,
    counters: Optional[Counters] = None,
) -> Iterator[tuple[tuple, Any]]:
    """Full join (Yannakakis if acyclic, else Generic-Join), then sort.

    Yields ``(row, lifted_weight)`` in nondecreasing ranking order, with
    ties broken by row for determinism.
    """
    combine = ranking.float_combine()  # raises for LEX, by design
    tree = gyo_reduction(query)
    if tree is not None:
        result = yannakakis_join(db, query, counters=counters, combine=combine, tree=tree)
    else:
        result = generic_join(db, query, counters=counters, combine=combine)
    # Sort through the columnar view: one pass builds the lifted weight
    # vector, and the order pass touches row values only inside tie
    # groups.  Lifted weights (not raw) key the sort so tie groups form
    # in the ranking carrier, exactly as the any-k engines see them.
    lift = ranking.lift
    store = result.columnar()
    lifted = [lift(w) for w in result.weights]
    order = store.sorted_order(weights=lifted)
    if counters is not None:
        counters.comparisons += max(0, len(order) - 1)
    rows = result.rows
    space = tracker_of(counters)
    if space is not None:
        store.attach_gauge(
            space.gauge("columnar.rows", columnar_row_bytes(len(store.schema)))
        )
        space.gauge("batch.sort", batch_sort_bytes()).add(len(order))
        # The row-wise materialization stays alive beside the columnar
        # view for the whole emission: the joined row tuples and the raw
        # weight vector they carry.
        space.gauge("batch.rows", row_bytes(len(store.schema))).add(len(rows))
    for i in order:
        yield rows[i], lifted[i]
