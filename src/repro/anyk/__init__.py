"""Ranked enumeration over joins — "any-k" algorithms (tutorial Part 3).

An any-k ("anytime top-k") algorithm returns join results one by one in
ranking order, minimizing the time to the k-th result for *every* k without
knowing k in advance.  The implementation follows the companion VLDB 2020
paper the tutorial presents: any-k algorithms are extensions of non-serial
dynamic programming over the query's join tree.

Modules:

- :mod:`repro.anyk.ranking` — ranking functions as selective dioids (sum,
  max/bottleneck, product, lexicographic);
- :mod:`repro.anyk.tdp` — the tree-based dynamic program (T-DP): stages,
  buckets keyed by parent join values, bottom-up optimal subtree weights;
- :mod:`repro.anyk.part` — ANYK-PART, the Lawler–Murty prefix-deviation
  scheme with pluggable bucket successor strategies (Eager, Lazy, All,
  Take2, Quick) and a from-scratch "naive Lawler" baseline with
  polynomial delay;
- :mod:`repro.anyk.rec` — ANYK-REC, recursive enumeration à la
  Jiménez–Marzal / Hoffman–Pavley k-shortest paths, with memoized
  per-bucket solution streams;
- :mod:`repro.anyk.batch` — the batch baseline (full join, then sort);
- :mod:`repro.anyk.cyclic` — ranked enumeration for cyclic queries via
  disjoint union-of-trees decompositions with a global merge heap;
- :mod:`repro.anyk.api` — the :func:`~repro.anyk.api.rank_enumerate`
  façade dispatching on query shape and method name.
"""

from repro.anyk.api import (
    METHODS,
    PausableStream,
    StreamClosed,
    rank_enumerate,
)
from repro.anyk.ranking import LEX, MAX, PRODUCT, SUM, RankingFunction

__all__ = [
    "rank_enumerate",
    "PausableStream",
    "StreamClosed",
    "METHODS",
    "RankingFunction",
    "SUM",
    "MAX",
    "PRODUCT",
    "LEX",
]
