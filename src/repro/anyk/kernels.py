"""Per-plan compiled enumeration kernels for the any-k inner loops.

The T-DP accessors ANYK-PART and ANYK-REC hammer during enumeration —
:meth:`~repro.anyk.tdp.TDP.prefix_priority` (one call per candidate
pushed), :meth:`~repro.anyk.tdp.TDP.expand_best` (one per emitted
result), :meth:`~repro.anyk.tdp.TDP.solution_row` (one per result) —
are interpreted walks over the stage list: a ``while`` loop, a
``combine`` callback per term, a bucket lookup through two attribute
hops per frontier stage.  For a *fixed* query shape all of that
structure is constant: the join order, the arity, the per-stage parent
key positions, the subtree extents, the ranking's fold operator, and
the output writers are decided at plan time and never change during
enumeration.

This module therefore generates, per **shape signature**, straight-line
Python source with all of it baked in — e.g. for a 3-stage SUM plan the
full-prefix priority compiles to ``l0[c0] + l1[c1] + l2[c2]`` — and
``exec``-compiles it once into a :class:`KernelTemplate`.  Templates
are cached process-wide in an LRU keyed on the signature, and a
:class:`KernelSlot` stored inside the server's cached plan pins the
template alongside the routing so a warm statement skips planning *and*
kernel setup.  Binding a template to a concrete :class:`TDP` is cheap
(tuple/dict snapshots of the already-computed stage arrays) and
installs the closures as *instance attributes*, shadowing the
interpreted methods for that TDP only.

Correctness contract: a kernel folds contributions in exactly the DFS
pre-order the interpreted walk uses, with the same first-element
special case and the same left association, and reads the same
first-minimum bucket representatives — so compiled streams are
byte-identical to interpreted ones (pinned by the differential suite).
Unsupported shapes (unregistered rankings) silently fall back to the
interpreted path and bump the ``unsupported`` counter.

Fold-exactness per ranking: ``sum``/``product``(log-lifted)/``lex``
fold with Python's left-associative ``+`` — identical to the
interpreted left fold; ``max`` folds as nested ``max(acc, term)``
calls — again identical, including the return-first-on-ties behavior.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.anyk.ranking import RANKINGS_BY_NAME
from repro.anyk.tdp import TDP
from repro.util.lru import LruCache

#: Registered ranking name -> fold operator spelling used by codegen.
#: PRODUCT ranks in log space (lift = log), so its carrier fold is "+";
#: LEX concatenates per-stage tuples, also "+".
_FOLD_OPS: dict[str, str] = {
    "sum": "+",
    "product": "+",
    "lex": "+",
    "max": "max",
}

#: Process-wide template cache: shape signature -> KernelTemplate.
#: Shapes are tiny (a few hundred bytes of source each); 256 distinct
#: live query shapes is far beyond any serving workload.
_TEMPLATES = LruCache(maxsize=256)

_EVENTS = (
    "installs",
    "compiles",
    "template_hits",
    "template_misses",
    "slot_hits",
    "unsupported",
)

_stats: dict[str, dict[str, int]] = {}
_stats_lock = threading.Lock()


def _bump(engine: str, event: str) -> None:
    with _stats_lock:
        counts = _stats.get(engine)
        if counts is None:
            counts = {name: 0 for name in _EVENTS}
            _stats[engine] = counts
        counts[event] += 1


def kernel_stats() -> dict[str, dict[str, int]]:
    """Per-engine kernel counters (installs, template hits/misses,
    slot hits, compiles, unsupported fallbacks)."""
    with _stats_lock:
        return {engine: dict(counts) for engine, counts in _stats.items()}


def reset_kernel_stats() -> None:
    """Zero the per-engine counters (tests and benchmarks)."""
    with _stats_lock:
        _stats.clear()


def kernel_cache_info() -> dict:
    """The template cache's size and hit/miss counts."""
    return _TEMPLATES.info()


def clear_kernel_cache() -> None:
    """Drop every compiled template (tests)."""
    _TEMPLATES.clear()


# ----------------------------------------------------------------------
# Shape signatures
# ----------------------------------------------------------------------
def kernel_signature(tdp: TDP) -> Optional[tuple]:
    """The shape key a compiled template is valid for, or None.

    Everything the generated source depends on: the ranking's fold
    operator (via its registry name — a custom RankingFunction that
    merely *shares* a registered name is rejected by identity check),
    the number of output variables, and per stage its parent position,
    parent-key positions, and DFS subtree extent, plus the writer table.
    """
    name = tdp.ranking.name
    if _FOLD_OPS.get(name) is None or RANKINGS_BY_NAME.get(name) is not tdp.ranking:
        return None
    stages = tuple(
        (
            -1 if stage.parent is None else stage.parent,
            stage.parent_key_positions,
            stage.subtree_size,
        )
        for stage in tdp.stages
    )
    writers = tuple(tuple(w) for w in tdp._writers)
    return (name, len(tdp.query.variables), stages, writers)


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
def _fold(op: str, terms: list[str]) -> str:
    """Fold ``terms`` exactly as the interpreted left fold would."""
    if op == "+":
        return " + ".join(terms)
    expr = terms[0]
    for term in terms[1:]:
        expr = f"max({expr}, {term})"
    return expr


def _key_expr(parent: int, key_positions: tuple[int, ...]) -> str:
    """The bucket-key expression read off the parent's row.

    Single-attribute keys read a scalar (the snapshot dicts for those
    stages are re-keyed by the lone value — see :func:`generate_source`),
    skipping a tuple allocation per lookup on the hottest path.
    """
    if len(key_positions) == 1:
        return f"r{parent}[{key_positions[0]}]"
    parts = ", ".join(f"r{parent}[{q}]" for q in key_positions)
    return f"({parts})"


def generate_source(signature: tuple) -> str:
    """Python source for one shape's ``_bind`` factory.

    ``_bind(tdp, interp_priority, interp_expand, interp_row)`` snapshots
    the TDP's stage arrays into locals and returns the three closures;
    the ``interp_*`` class functions back the fallback branches for
    prefix lengths the straight-line code does not cover (defensive —
    the engines never produce them).
    """
    _, num_out, stages, writers = signature
    op = _FOLD_OPS[signature[0]]
    m = len(stages)
    parent = [entry[0] for entry in stages]
    key_positions = [entry[1] for entry in stages]
    subtree = [entry[2] for entry in stages]

    lines: list[str] = []
    emit = lines.append
    emit("def _bind(tdp, interp_priority, interp_expand, interp_row):")
    for i in range(m):
        emit(f"    rows{i} = tdp.stages[{i}].relation.rows")
        emit(f"    l{i} = tdp.lifted[{i}]")
    for i in range(1, m):
        # Buckets are keyed by parent-key tuples; stages joining on a
        # single attribute re-key their snapshots by the lone value so
        # lookups need no tuple allocation (matches _key_expr).
        key = "key[0]" if len(key_positions[i]) == 1 else "key"
        emit(
            f"    bw{i} = {{{key}: b.subtree_weights[b.best_position]"
            f" for key, b in tdp.buckets[{i}].items()}}"
        )
        emit(
            f"    bt{i} = {{{key}: b.tuple_ids[b.best_position]"
            f" for key, b in tdp.buckets[{i}].items()}}"
        )
    emit("")

    # -- prefix_priority ------------------------------------------------
    emit("    def prefix_priority(choices):")
    emit("        L = len(choices)")
    for length in range(1, m + 1):
        emit(f"        {'if' if length == 1 else 'elif'} L == {length}:")
        frontier: list[int] = []
        position = length
        while position < m:
            frontier.append(position)
            position += subtree[position]
        needed_parents = sorted({parent[p] for p in frontier})
        for p in needed_parents:
            emit(f"            r{p} = rows{p}[choices[{p}]]")
        terms = [f"l{i}[choices[{i}]]" for i in range(length)]
        terms += [
            f"bw{p}[{_key_expr(parent[p], key_positions[p])}]" for p in frontier
        ]
        emit(f"            return {_fold(op, terms)}")
    emit("        return interp_priority(tdp, choices)")
    emit("")

    # -- expand_best ----------------------------------------------------
    emit("    def expand_best(choices):")
    emit("        L = len(choices)")
    for length in range(1, m + 1):
        emit(f"        {'if' if length == 1 else 'elif'} L == {length}:")
        if length == m:
            emit("            return choices")
            continue
        defined_rows: set[int] = set()
        body: list[str] = []
        for p in range(length, m):
            par = parent[p]
            if par not in defined_rows:
                source = f"choices[{par}]" if par < length else f"c{par}"
                body.append(f"r{par} = rows{par}[{source}]")
                defined_rows.add(par)
            body.append(f"c{p} = bt{p}[{_key_expr(par, key_positions[p])}]")
            body.append(f"choices.append(c{p})")
        body.append("return choices")
        for statement in body:
            emit(f"            {statement}")
    emit("        return interp_expand(tdp, choices)")
    emit("")

    # -- solution_row ---------------------------------------------------
    emit("    def solution_row(choices):")
    cells: list[tuple[int, str]] = []
    for stage_position, stage_writers in enumerate(writers):
        if stage_writers:
            emit(
                f"        r{stage_position} ="
                f" rows{stage_position}[choices[{stage_position}]]"
            )
        for schema_position, out_position in stage_writers:
            cells.append((out_position, f"r{stage_position}[{schema_position}]"))
    cells.sort()
    row = ", ".join(expr for _, expr in cells)
    if num_out == 1:
        row += ","
    emit(f"        return ({row})")
    emit("")
    emit(
        "    return {'prefix_priority': prefix_priority,"
        " 'expand_best': expand_best, 'solution_row': solution_row}"
    )
    emit("")
    return "\n".join(lines)


@dataclass
class KernelTemplate:
    """One compiled shape: its signature, source, and bind factory."""

    signature: tuple
    source: str
    factory: Callable

    def bind(self, tdp: TDP) -> dict[str, Callable]:
        """Closures specialized to one TDP instance (cheap: snapshots
        of the stage arrays the TDP already computed)."""
        return self.factory(
            tdp, TDP.prefix_priority, TDP.expand_best, TDP.solution_row
        )


@dataclass
class KernelSlot:
    """The per-plan kernel pin, stored on ``Plan.kernel_slot``.

    A cached plan's slot survives re-binds (the service's soft-hit path
    copies the plan dataclass, sharing this field by reference), so the
    first execution warms it and every later execution of the same
    template skips even the global template-cache lookup.
    """

    template: Optional[KernelTemplate] = None
    #: How often this slot supplied its template (the per-plan warm count).
    hits: int = field(default=0)


def compile_template(signature: tuple) -> KernelTemplate:
    """Generate + ``exec``-compile the shape's source into a template."""
    source = generate_source(signature)
    namespace: dict[str, Any] = {}
    label = f"<anyk-kernel-{abs(hash(signature)) % 16**8:08x}>"
    exec(compile(source, label, "exec"), namespace)  # noqa: S102
    return KernelTemplate(signature=signature, source=source, factory=namespace["_bind"])


def install_kernels(
    tdp: TDP,
    slot: Optional[KernelSlot] = None,
    engine: str = "anyk",
) -> bool:
    """Shadow ``tdp``'s hot accessors with compiled closures.

    Returns True when a kernel was installed; False (interpreted path
    untouched) for unsupported shapes.  ``slot`` pins the template on a
    cached plan; ``engine`` labels the per-engine counters.
    """
    signature = kernel_signature(tdp)
    if signature is None:
        _bump(engine, "unsupported")
        return False
    template: Optional[KernelTemplate] = None
    if slot is not None and slot.template is not None:
        if slot.template.signature == signature:
            template = slot.template
            slot.hits += 1
            _bump(engine, "slot_hits")
    if template is None:
        template = _TEMPLATES.get(signature)
        if template is None:
            _bump(engine, "template_misses")
            _bump(engine, "compiles")
            template = compile_template(signature)
            _TEMPLATES.put(signature, template)
        else:
            _bump(engine, "template_hits")
        if slot is not None:
            slot.template = template
    bound = template.bind(tdp)
    tdp.prefix_priority = bound["prefix_priority"]  # type: ignore[method-assign]
    tdp.expand_best = bound["expand_best"]  # type: ignore[method-assign]
    tdp.solution_row = bound["solution_row"]  # type: ignore[method-assign]
    _bump(engine, "installs")
    return True
