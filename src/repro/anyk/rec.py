"""ANYK-REC: recursive enumeration over the T-DP (tutorial Part 3).

The second family of any-k algorithms originates in k-shortest-path
solutions (Hoffman–Pavley 1959, Dreyfus, Jiménez–Marzal's REA) and exploits
a generalization of the DP principle of optimality: the i-th best solution
of a subproblem is composed of the *j-th best* (j ≤ i) solutions of its
child subproblems.

Every bucket (stage × parent-join-key) owns a memoized, lazily produced
stream of its ranked subtree solutions.  Producing the next element of a
stream pops a candidate from the bucket's own priority queue and pushes its
rank-increments (Lawler-style deviation index over the child-rank vector
prevents duplicates).  Crucially, streams are *shared* across all parent
tuples with the same join-key — repeated suffixes are ranked once, which is
why REC amortizes toward the last results (TT(last) competitive with batch)
where PART keeps re-deriving suffixes; neither dominates (experiment E9).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.anyk.tdp import TDP, Bucket
from repro.obs.memory import rec_entry_bytes, rec_solution_bytes, tracker_of
from repro.util.heaps import BinaryHeap


class _Entry:
    """One produced subtree solution of a bucket.

    ``weight`` is the DFS-fold subtree weight; ``position`` indexes the
    bucket's tuple arrays; ``child_ranks`` are the ranks consumed from each
    child stream (in child-stage order).
    """

    __slots__ = ("weight", "position", "child_ranks")

    def __init__(self, weight: Any, position: int, child_ranks: tuple[int, ...]):
        self.weight = weight
        self.position = position
        self.child_ranks = child_ranks


class _Stream:
    """Memoized ranked stream of one bucket's subtree solutions."""

    __slots__ = ("tdp", "stage_position", "bucket", "solutions", "heap", "sol_gauge")

    def __init__(self, tdp: TDP, stage_position: int, bucket: Bucket) -> None:
        self.tdp = tdp
        self.stage_position = stage_position
        self.bucket = bucket
        self.solutions: list[_Entry] = []
        stage = tdp.stages[stage_position]
        space = tracker_of(tdp.counters)
        if space is None:
            heap_gauge = self.sol_gauge = None
        else:
            children = len(stage.children)
            heap_gauge = space.gauge("rec.pq", rec_entry_bytes(children))
            self.sol_gauge = space.gauge(
                "rec.solutions", rec_solution_bytes(children)
            )
        self.heap = BinaryHeap(tdp.counters, gauge=heap_gauge)
        zeros = (0,) * len(stage.children)
        # Every bucket tuple seeds one candidate with all-best children;
        # its weight is exactly the precomputed subtree weight.
        for position in range(len(bucket)):
            self.heap.push(
                (bucket.subtree_weights[position], position),
                (position, zeros, 0),
            )

    # -- child stream access ------------------------------------------
    def _child_stream(self, child_position: int, position: int) -> "_Stream":
        tdp = self.tdp
        child_stage = tdp.stages[child_position]
        row = tdp.stages[self.stage_position].relation.rows[
            self.bucket.tuple_ids[position]
        ]
        key = tuple(row[p] for p in child_stage.parent_key_positions)
        return stream_for(tdp, child_position, tdp.buckets[child_position][key])

    def _weight_of(self, position: int, child_ranks: tuple[int, ...]) -> Optional[Any]:
        """Weight of a candidate, or None if some child rank is exhausted."""
        tdp = self.tdp
        stage = tdp.stages[self.stage_position]
        tuple_id = self.bucket.tuple_ids[position]
        weight = tdp.lifted[self.stage_position][tuple_id]
        for child_index, child_position in enumerate(stage.children):
            child_stream = self._child_stream(child_position, position)
            entry = child_stream.get(child_ranks[child_index])
            if entry is None:
                return None
            weight = tdp.ranking.combine(weight, entry.weight)
        return weight

    # -- production -----------------------------------------------------
    def get(self, rank: int) -> Optional[_Entry]:
        """The rank-th best subtree solution, produced on demand."""
        while len(self.solutions) <= rank:
            if not self.heap:
                return None
            (weight, _), (position, child_ranks, dev) = self.heap.pop()
            self.solutions.append(_Entry(weight, position, child_ranks))
            if self.sol_gauge is not None:
                self.sol_gauge.add(1)
            # Push rank-increments at coordinates >= dev (Lawler-style
            # deviation index: no duplicates, full coverage).
            for j in range(dev, len(child_ranks)):
                bumped = (
                    child_ranks[:j] + (child_ranks[j] + 1,) + child_ranks[j + 1 :]
                )
                bumped_weight = self._weight_of(position, bumped)
                if bumped_weight is not None:
                    self.heap.push((bumped_weight, position), (position, bumped, j))
        return self.solutions[rank]


def stream_for(tdp: TDP, stage_position: int, bucket: Bucket) -> _Stream:
    """The bucket's memoized stream, created on first use."""
    if bucket.stream is None:
        bucket.stream = _Stream(tdp, stage_position, bucket)
    return bucket.stream


def _collect_choices(
    stream: _Stream, entry: _Entry, choices: dict[int, int]
) -> None:
    """Recursively resolve an entry into per-stage tuple choices."""
    tdp = stream.tdp
    stage = tdp.stages[stream.stage_position]
    choices[stream.stage_position] = stream.bucket.tuple_ids[entry.position]
    for child_index, child_position in enumerate(stage.children):
        child_stream = stream._child_stream(child_position, entry.position)
        child_entry = child_stream.get(entry.child_ranks[child_index])
        assert child_entry is not None
        _collect_choices(child_stream, child_entry, choices)


def anyk_rec(tdp: TDP) -> Iterator[tuple[tuple, Any]]:
    """Enumerate ``(row, weight)`` in nondecreasing weight order via REC."""
    if tdp.is_empty():
        return
    root = stream_for(tdp, 0, tdp.root_bucket())
    rank = 0
    while True:
        entry = root.get(rank)
        if entry is None:
            return
        choices: dict[int, int] = {}
        _collect_choices(root, entry, choices)
        vector = [choices[position] for position in range(tdp.num_stages)]
        yield tdp.solution_row(vector), entry.weight
        if tdp.counters is not None:
            tdp.counters.output_tuples += 1
        rank += 1
