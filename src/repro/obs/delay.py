"""The anytime-delay profiler: in-engine TTF / TT(k) / inter-result delay.

The paper's claims are statements about *time between ranked results*:
any-k algorithms bound the delay between consecutive answers, which is
what makes time-to-first and time-to-k sublinear in the output.  The
load generator (:mod:`repro.workload`) measures those quantities from
the *outside* — wall clock across the wire, planning and framing
included.  This profiler measures them where they are produced: wrapped
around the engine's ranked stream, charging each result with the time
spent *inside* the enumeration (``next()`` on the engine iterator) and
tracking wall time from stream start for TTF/TT(k).

Two clocks per result, deliberately:

- ``delay`` (histogram) — busy time producing this result.  Paused
  cursors do not pollute it: a page fetched an hour after the last one
  charges only the enumeration work, not the idle hour.
- ``ttf_ms`` / ``ttk_ms[k]`` — *wall* time from the first pull to the
  1st / k-th result, the quantity an end user experiences and the one
  ``bench_e23_obs.py`` cross-checks against the external measurement.

Profiles are mergeable (histograms fold exactly, TTF/TT(k) become
distributions across queries) and snapshot/restore across process
boundaries, so :mod:`repro.parallel` shard workers profile their own
shard streams and ship the profile home in the final queue frame —
per-shard attribution for the merged stream, with no IPC on the
per-result path.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Optional

from repro.util.histogram import Histogram, geometric_bounds

#: Result ranks at which cumulative wall time is checkpointed.  Chosen to
#: bracket the paper's k regimes (tiny / small / DEEP_K / beyond).
TTK_CHECKPOINTS: tuple[int, ...] = (1, 10, 100, 1000, 10000)

#: Per-result delays sit well under a millisecond for warm engines, so the
#: delay histogram opens two decades lower than the latency default.
DELAY_BOUNDS = geometric_bounds(lo=0.0001, hi=60_000.0, per_decade=20)


class DelayProfile:
    """Delay/TTF/TT(k) measurements for one cursor (or one fold of many).

    Single-writer on the hot path (the enumerating thread); merging and
    snapshotting are done by the owner after the stream quiesces — the
    same discipline as :class:`repro.workload.metrics.MetricsCollector`.
    """

    __slots__ = (
        "engine",
        "delay",
        "ttf",
        "ttk",
        "results",
        "streams",
        "busy_ms",
        "shards",
        "_started",
        "_live_results",
        "_live_busy_ms",
        "_counted_stream",
    )

    def __init__(self, engine: str = "") -> None:
        self.engine = engine
        #: Per-result production (busy) time, ms.
        self.delay = Histogram(DELAY_BOUNDS)
        #: Wall time to the first result, one observation per stream, ms.
        self.ttf = Histogram()
        #: checkpoint k -> Histogram of wall time to the k-th result, ms.
        self.ttk: dict[int, Histogram] = {}
        #: Results measured across all folded streams.
        self.results = 0
        #: Streams folded in (a merged profile aggregates many cursors).
        self.streams = 0
        #: Total busy enumeration time, ms.
        self.busy_ms = 0.0
        #: Folded worker snapshots: shard index -> snapshot dict.
        self.shards: list[dict] = []
        self._started: Optional[float] = None
        self._live_results = 0
        self._live_busy_ms = 0.0
        self._counted_stream = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def wrap(self, stream: Iterator[tuple[tuple, Any]]) -> Iterator[tuple[tuple, Any]]:
        """Measure ``stream`` as it is drained (lazy; pausable).

        The wall clock for TTF/TT(k) starts at the *first pull* — after
        planning, exactly when the engine starts working — so the
        numbers quantify enumeration, not compilation.
        """
        iterator = iter(stream)
        while True:
            if self._started is None:
                self._started = time.perf_counter()
                if not self._counted_stream:
                    self._counted_stream = True
                    self.streams += 1
            before = time.perf_counter()
            try:
                item = next(iterator)
            except StopIteration:
                self._live_busy_ms += (time.perf_counter() - before) * 1000.0
                return
            now = time.perf_counter()
            produced_ms = (now - before) * 1000.0
            self.delay.record(produced_ms)
            self._live_busy_ms += produced_ms
            self._live_results += 1
            self.results += 1
            wall_ms = (now - self._started) * 1000.0
            if self._live_results == 1:
                self.ttf.record(wall_ms)
            if self._live_results in TTK_CHECKPOINTS:
                self.ttk.setdefault(self._live_results, Histogram()).record(wall_ms)
            yield item

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _flush_live(self) -> None:
        self.busy_ms += self._live_busy_ms
        self._live_busy_ms = 0.0

    def merge(self, other: "DelayProfile") -> "DelayProfile":
        """Fold another (quiescent) profile into this one."""
        other._flush_live()
        self._flush_live()
        self.delay.merge(other.delay)
        self.ttf.merge(other.ttf)
        for k, hist in other.ttk.items():
            self.ttk.setdefault(k, Histogram()).merge(hist)
        self.results += other.results
        self.streams += other.streams
        self.busy_ms += other.busy_ms
        self.shards.extend(other.shards)
        return self

    def merge_snapshot(self, snapshot: dict) -> "DelayProfile":
        """Fold a :meth:`snapshot` dict (e.g. shipped from a worker)."""
        self._flush_live()
        self.delay.merge(Histogram.from_dict(snapshot["delay"]))
        self.ttf.merge(Histogram.from_dict(snapshot["ttf"]))
        for k, hist in snapshot.get("ttk", {}).items():
            self.ttk.setdefault(int(k), Histogram()).merge(Histogram.from_dict(hist))
        self.results += snapshot.get("results", 0)
        self.streams += snapshot.get("streams", 0)
        self.busy_ms += snapshot.get("busy_ms", 0.0)
        self.shards.extend(snapshot.get("shards", ()))
        return self

    def snapshot(self) -> dict:
        """A picklable/JSON-ready dump, exact under :meth:`merge_snapshot`."""
        self._flush_live()
        return {
            "engine": self.engine,
            "delay": self.delay.to_dict(),
            "ttf": self.ttf.to_dict(),
            "ttk": {k: hist.to_dict() for k, hist in self.ttk.items()},
            "results": self.results,
            "streams": self.streams,
            "busy_ms": self.busy_ms,
            "shards": list(self.shards),
        }

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready digest: the shape ``stats``/benchmarks embed."""
        self._flush_live()
        out = {
            "engine": self.engine,
            "streams": self.streams,
            "results": self.results,
            "busy_ms": round(self.busy_ms, 4),
            "delay_ms": self.delay.summary(),
            "ttf_ms": self.ttf.summary(),
            "ttk_ms": {
                str(k): self.ttk[k].summary() for k in sorted(self.ttk)
            },
        }
        if self.shards:
            out["shards"] = [
                {
                    "shard": shard.get("shard", index),
                    "results": shard.get("results", 0),
                    "busy_ms": round(shard.get("busy_ms", 0.0), 4),
                }
                for index, shard in enumerate(self.shards)
            ]
        return out

    def __repr__(self) -> str:
        return (
            f"DelayProfile(engine={self.engine!r}, results={self.results}, "
            f"streams={self.streams})"
        )
