"""Declarative SLOs with multi-window burn-rate evaluation.

An *SLO spec* is one line of text declaring an objective over the
numbers the :class:`~repro.obs.registry.MetricsRegistry` already
collects::

    query_p99_ms<=25        # 99% of query requests complete in <= 25 ms
    ttf_ms<=5               # p99 (the default percentile) of in-engine TTF
    peak_mem_mb<=64         # 99% of cursors peak below 64 MB of engine state
    error_rate<=0.1%        # at most 0.1% of requests answer with an error
    availability>=99.9%     # at least 99.9% of requests succeed

Latency specs read the corresponding latency histogram
(``repro_op_latency_ms{op=...}`` for op names, ``repro_ttf_ms`` /
``repro_result_delay_ms`` for the in-engine indicators ``ttf`` and
``delay``); the *bad-event* count is the number of observations above
the threshold — computed with :meth:`Histogram.count_le`, whose
bucket-edge conservatism means a verdict can be pessimistic but never
optimistic.  Memory specs (the ``_mb`` suffix) work the same way over a
byte-valued histogram — ``peak_mem`` reads ``repro_mem_peak_bytes``,
the per-cursor peak distribution the space profiler feeds at cursor
retirement.  ``error_rate`` and ``availability`` read the request /
error totals.

Evaluation follows the SRE burn-rate model: each spec implies an error
*budget* (the allowed bad-event fraction — ``1 - q/100`` for a
percentile spec, the rate itself for ``error_rate``, the complement for
``availability``), and the **burn rate** of a time window is the
window's bad fraction divided by that budget.  Burn 1.0 means the
budget is being spent exactly as fast as it accrues; burn 10 means ten
times too fast.  :class:`SloEngine` keeps a pruned history of
cumulative-count snapshots and reports the burn over several rolling
windows at once; a spec only escalates when *every* window burns — the
multi-window AND that keeps one slow request from paging and a sustained
regression from hiding in a long average:

- ``page``: all windows burn at >= ``page_burn`` (default 10x)
- ``warn``: all windows burn at >= ``warn_burn`` (default 1x)
- ``ok``: otherwise

The engine is pull-driven — no background thread.  The server ticks it
(time-gated) per request and on every ``slo`` op; a single evaluation
with no history simply reports the since-start window everywhere, which
is also exactly what ``repro-loadgen``'s whole-run verdicts use via
:func:`evaluate_specs`.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence

from repro.util.histogram import Histogram

#: Rolling windows (seconds) a deployment-grade evaluation looks at.
DEFAULT_WINDOWS_S: tuple[float, ...] = (60.0, 300.0, 3600.0)

#: Burn-rate thresholds for the warn / page verdicts.
WARN_BURN = 1.0
PAGE_BURN = 10.0

#: The specs ``repro-serve`` evaluates when none are configured —
#: deliberately generous (an unconfigured dev server should sit at
#: ``ok``), overridden wholesale by ``--slo``.
DEFAULT_SLOS: tuple[str, ...] = (
    "query_p99_ms<=250",
    "fetch_p99_ms<=250",
    "error_rate<=1%",
)

_LATENCY_RE = re.compile(
    r"^(?P<indicator>[a-z_][a-z0-9_]*?)(?:_p(?P<q>\d+(?:\.\d+)?))?_ms$"
)
_MEMORY_RE = re.compile(
    r"^(?P<indicator>[a-z_][a-z0-9_]*?)(?:_p(?P<q>\d+(?:\.\d+)?))?_mb$"
)
_SPEC_RE = re.compile(r"^\s*(?P<lhs>[^<>=\s]+)\s*(?P<cmp><=|>=)\s*(?P<rhs>[^\s]+)\s*$")


class SloError(ValueError):
    """A malformed SLO spec string."""


class SloSpec:
    """One parsed objective (see the module docstring for the grammar)."""

    __slots__ = ("raw", "kind", "indicator", "percentile", "threshold_ms", "budget")

    def __init__(
        self,
        raw: str,
        kind: str,
        indicator: str,
        percentile: Optional[float],
        threshold_ms: Optional[float],
        budget: float,
    ) -> None:
        self.raw = raw
        self.kind = kind  # 'latency' | 'memory' | 'error_rate' | 'availability'
        self.indicator = indicator
        self.percentile = percentile
        # Threshold in the indicator's spec unit: ms for latency specs,
        # MB for memory specs (converted to bytes at evaluation time).
        self.threshold_ms = threshold_ms
        self.budget = budget

    def objective(self) -> str:
        """A human-readable restatement of the spec."""
        if self.kind == "latency":
            return (
                f"p{self.percentile:g} of {self.indicator} latency "
                f"<= {self.threshold_ms:g} ms"
            )
        if self.kind == "memory":
            return (
                f"p{self.percentile:g} of per-cursor {self.indicator} "
                f"<= {self.threshold_ms:g} MB"
            )
        if self.kind == "error_rate":
            return f"error rate <= {self.budget * 100:g}%"
        return f"availability >= {(1.0 - self.budget) * 100:g}%"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SloSpec({self.raw!r})"


def parse_slo(raw: str) -> SloSpec:
    """Parse one spec string; raises :class:`SloError` with the reason."""
    match = _SPEC_RE.match(raw)
    if match is None:
        raise SloError(
            f"malformed SLO spec {raw!r}: expected "
            "'<indicator><=value', e.g. 'query_p99_ms<=25' or "
            "'error_rate<=0.1%'"
        )
    lhs, cmp_, rhs = match.group("lhs"), match.group("cmp"), match.group("rhs")
    percent = rhs.endswith("%")
    try:
        value = float(rhs[:-1] if percent else rhs)
    except ValueError:
        raise SloError(f"malformed SLO spec {raw!r}: {rhs!r} is not a number")
    if lhs == "error_rate":
        if cmp_ != "<=":
            raise SloError(f"{raw!r}: error_rate objectives use '<='")
        budget = value / 100.0 if percent else value
        if not 0.0 < budget < 1.0:
            raise SloError(f"{raw!r}: error budget must be in (0, 1)")
        return SloSpec(raw, "error_rate", "requests", None, None, budget)
    if lhs == "availability":
        if cmp_ != ">=":
            raise SloError(f"{raw!r}: availability objectives use '>='")
        target = value / 100.0 if percent else value
        if not 0.0 < target < 1.0:
            raise SloError(f"{raw!r}: availability target must be in (0, 1)")
        return SloSpec(raw, "availability", "requests", None, None, 1.0 - target)
    memory = _MEMORY_RE.match(lhs)
    if memory is not None:
        if cmp_ != "<=":
            raise SloError(f"{raw!r}: memory objectives use '<='")
        if percent:
            raise SloError(f"{raw!r}: memory thresholds are in MB, not percent")
        q = float(memory.group("q")) if memory.group("q") else 99.0
        if not 0.0 < q < 100.0:
            raise SloError(f"{raw!r}: percentile must be in (0, 100)")
        if value <= 0:
            raise SloError(f"{raw!r}: memory threshold must be positive")
        return SloSpec(
            raw, "memory", memory.group("indicator"), q, value, 1.0 - q / 100.0
        )
    latency = _LATENCY_RE.match(lhs)
    if latency is None:
        raise SloError(
            f"malformed SLO spec {raw!r}: unknown indicator {lhs!r} "
            "(expected '<op>_p<q>_ms', '<op>_ms', '<indicator>_mb', "
            "'error_rate', or 'availability')"
        )
    if cmp_ != "<=":
        raise SloError(f"{raw!r}: latency objectives use '<='")
    if percent:
        raise SloError(f"{raw!r}: latency thresholds are in ms, not percent")
    q = float(latency.group("q")) if latency.group("q") else 99.0
    if not 0.0 < q < 100.0:
        raise SloError(f"{raw!r}: percentile must be in (0, 100)")
    if value <= 0:
        raise SloError(f"{raw!r}: latency threshold must be positive")
    return SloSpec(raw, "latency", latency.group("indicator"), q, value, 1.0 - q / 100.0)


def parse_slos(raws: Sequence[str]) -> list[SloSpec]:
    return [parse_slo(raw) for raw in raws]


# ----------------------------------------------------------------------
# Counting
# ----------------------------------------------------------------------
def spec_counts(
    spec: SloSpec,
    histogram_for: Callable[[str], Optional[Histogram]],
    requests_errors: Callable[[], tuple[int, int]],
) -> tuple[int, int]:
    """``(total_events, bad_events)`` for one spec, right now.

    ``histogram_for`` maps a latency indicator (an op name, ``ttf``,
    ``delay``) to a merged :class:`Histogram` (or None when nothing was
    recorded); ``requests_errors`` returns cumulative request and error
    totals.  Both callables let the server and the load generator feed
    the same evaluator from their own state.
    """
    if spec.kind == "latency":
        hist = histogram_for(spec.indicator)
        if hist is None or hist.count == 0:
            return (0, 0)
        return (hist.count, hist.count - hist.count_le(spec.threshold_ms))
    if spec.kind == "memory":
        hist = histogram_for(spec.indicator)
        if hist is None or hist.count == 0:
            return (0, 0)
        threshold_bytes = spec.threshold_ms * 1024.0 * 1024.0
        return (hist.count, hist.count - hist.count_le(threshold_bytes))
    total, errors = requests_errors()
    return (total, min(errors, total))


def _burn(total: int, bad: int, budget: float) -> float:
    if total <= 0:
        return 0.0
    return (bad / total) / budget


def _verdict(burns: Sequence[float]) -> str:
    """Multi-window AND: escalate only when every window burns."""
    floor = min(burns) if burns else 0.0
    if floor >= PAGE_BURN:
        return "page"
    if floor >= WARN_BURN:
        return "warn"
    return "ok"


_STATUS_RANK = {"ok": 0, "warn": 1, "page": 2}


def worst_status(statuses: Sequence[str]) -> str:
    return max(statuses, key=lambda s: _STATUS_RANK.get(s, 0), default="ok")


def evaluate_specs(
    specs: Sequence[SloSpec],
    histogram_for: Callable[[str], Optional[Histogram]],
    requests_errors: Callable[[], tuple[int, int]],
    window_label: str = "run",
) -> dict:
    """Single-window (whole-run) evaluation — ``repro-loadgen``'s path.

    The one window covers everything the callables have seen, so the
    burn rate is the run's bad fraction over the budget; the verdict
    thresholds are the same as the rolling engine's.
    """
    slos = []
    for spec in specs:
        total, bad = spec_counts(spec, histogram_for, requests_errors)
        burn = _burn(total, bad, spec.budget)
        slos.append(
            {
                "spec": spec.raw,
                "objective": spec.objective(),
                "kind": spec.kind,
                "budget": spec.budget,
                "total": total,
                "bad": bad,
                "bad_fraction": round(bad / total, 6) if total else 0.0,
                "burn_rates": {window_label: round(burn, 4)},
                "status": _verdict([burn]),
            }
        )
    return {
        "status": worst_status([s["status"] for s in slos]),
        "windows_s": [],
        "warn_burn": WARN_BURN,
        "page_burn": PAGE_BURN,
        "slos": slos,
    }


class SloEngine:
    """Rolling multi-window burn-rate evaluation over live metrics.

    ``source`` returns the *cumulative* ``(total, bad)`` pair per spec
    (aligned with ``specs``); the engine snapshots it over time and
    diffs snapshots to get per-window counts.  History is pruned to the
    longest window, so memory is bounded by
    ``max(windows) / min_tick_interval_s`` snapshots.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        source: Callable[[], Sequence[tuple[int, int]]],
        windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
        min_tick_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not windows_s or any(w <= 0 for w in windows_s):
            raise ValueError("windows_s must be positive")
        self.specs = list(specs)
        self._source = source
        self.windows_s = tuple(sorted(windows_s))
        self._min_tick = min_tick_interval_s
        self._clock = clock
        self._lock = threading.Lock()
        self._history: "deque[tuple[float, list[tuple[int, int]]]]" = deque()
        self._last_tick = -float("inf")
        self.tick(force=True)

    def tick(self, force: bool = False) -> bool:
        """Snapshot cumulative counts (time-gated unless ``force``)."""
        now = self._clock()
        with self._lock:
            if not force and now - self._last_tick < self._min_tick:
                return False
            self._last_tick = now
        counts = [tuple(pair) for pair in self._source()]
        with self._lock:
            self._history.append((now, counts))
            horizon = now - self.windows_s[-1]
            # Keep one snapshot at or before the horizon as the oldest
            # baseline the longest window can diff against.
            while len(self._history) >= 2 and self._history[1][0] <= horizon:
                self._history.popleft()
        return True

    def _baseline(self, start: float) -> list[tuple[int, int]]:
        """The newest snapshot taken at or before ``start`` (falling back
        to the oldest — a short history widens the window to 'since
        start', never narrows it)."""
        chosen = self._history[0][1]
        for t, counts in self._history:
            if t <= start:
                chosen = counts
            else:
                break
        return chosen

    def evaluate(self) -> dict:
        """Per-spec burn rates over every window, plus the verdicts."""
        self.tick(force=True)
        with self._lock:
            now, current = self._history[-1]
            baselines = {
                window: self._baseline(now - window) for window in self.windows_s
            }
        slos = []
        for i, spec in enumerate(self.specs):
            total_now, bad_now = current[i]
            burns: dict[str, float] = {}
            for window in self.windows_s:
                total_then, bad_then = baselines[window][i]
                burns[f"{window:g}s"] = round(
                    _burn(total_now - total_then, bad_now - bad_then, spec.budget),
                    4,
                )
            slos.append(
                {
                    "spec": spec.raw,
                    "objective": spec.objective(),
                    "kind": spec.kind,
                    "budget": spec.budget,
                    "total": total_now,
                    "bad": bad_now,
                    "bad_fraction": (
                        round(bad_now / total_now, 6) if total_now else 0.0
                    ),
                    "burn_rates": burns,
                    "status": _verdict(list(burns.values())),
                }
            )
        return {
            "status": worst_status([s["status"] for s in slos]),
            "windows_s": list(self.windows_s),
            "warn_burn": WARN_BURN,
            "page_burn": PAGE_BURN,
            "slos": slos,
        }


def render_slo_report(report: dict) -> list[str]:
    """Text lines for one evaluation dict (shared by ``repro-obs``
    summary and the ``repro-loadgen`` report)."""
    lines = [f"slo status: {report.get('status', 'ok')}"]
    for entry in report.get("slos", ()):
        burns = entry.get("burn_rates", {})
        shown = " ".join(f"{k}={v:g}x" for k, v in burns.items())
        lines.append(
            f"  [{entry['status']:>4}] {entry['spec']:<28} "
            f"bad {entry['bad']}/{entry['total']}  burn {shown}"
        )
    if not report.get("slos"):
        lines.append("  (no SLO specs configured)")
    return lines
