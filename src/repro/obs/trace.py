"""Lightweight end-to-end span tracing.

A *span* is one timed stage of a request — ``parse``, ``plan``,
``cache_lookup``, ``execute.setup``, ``page_fetch`` — with a monotonic
start/duration, key/value attributes, and a link to its parent span.
Spans with the same ``trace_id`` form a *trace*: the tree of stages one
protocol request (or one library call) went through, which is what
turns "wire p99 is 25 ms but the engine averages 2.8 ms" from a mystery
into a per-stage attribution.

Design constraints, in order:

- **Near-zero cost when disabled.**  The tracer ships disabled; every
  instrumentation seam costs one attribute read and one ``if`` before
  bailing out to a shared no-op span.  Nothing is allocated, no clock
  is read.  The overhead guard in ``tests/test_obs.py`` holds the
  disabled-tracer tax on a seeded PART enumeration to a few percent.
- **Correct parenting under concurrency.**  The current span lives in a
  :mod:`contextvars` context variable, so socketserver handler threads
  (and any future asyncio core) each see their own span stack without
  locks on the hot path.
- **Bounded memory.**  Finished traces land in a ring buffer of the
  last ``capacity`` traces; an abandoned or chatty workload can never
  grow tracer state without bound.  The server's ``trace`` op reads
  this buffer.

Spans use :func:`time.perf_counter` (monotonic, highest resolution) for
durations and a single :func:`time.time` stamp per trace for wall-clock
anchoring.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Iterator, Optional

#: Process-unique prefix so ids from different processes never collide
#: when folded into one log.
_ID_PREFIX = f"{os.getpid():x}"
_ids = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (cheap: no entropy pool, no UUID)."""
    return f"t{_ID_PREFIX}-{next(_ids):x}"


class Span:
    """One timed, attributed stage of a trace.

    Usable as a context manager (the normal idiom via
    :meth:`Tracer.span`) and directly via :meth:`finish` for callers
    whose stage does not nest lexically.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "duration_ms",
        "attrs",
        "error",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.error: Optional[str] = None
        self.duration_ms: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self.start_s = time.perf_counter()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self.start_s) * 1000.0
            self._tracer._finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.finish()

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": None,  # filled relative to the trace root
            "duration_ms": (
                round(self.duration_ms, 4) if self.duration_ms is not None else None
            ),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = self.error
        return out


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: The innermost open span of the calling context (None outside traces).
_current_span: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _TraceRecord:
    """One finished (or in-flight) trace in the ring buffer."""

    __slots__ = ("trace_id", "started_at", "spans", "request_id", "op")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started_at = time.time()
        self.spans: list[Span] = []
        self.request_id: Any = None
        self.op: Optional[str] = None


class Tracer:
    """Span factory plus a bounded ring buffer of recent traces.

    One instance per process is the normal deployment (the module-level
    :data:`tracer`); tests may build private instances.  All state
    transitions take an internal lock; span *creation* on a disabled
    tracer takes none.
    """

    def __init__(self, capacity: int = 256, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        #: trace_id -> record, in insertion order (the ring).
        self._ring: "OrderedDict[str, _TraceRecord]" = OrderedDict()
        #: request id (as string) -> trace_id, bounded alongside the ring.
        self._by_request: "OrderedDict[str, str]" = OrderedDict()
        self._span_ids = itertools.count(1)
        self.traces_started = 0
        self.traces_dropped = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def start_trace(
        self,
        name: str,
        request_id: Any = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ):
        """Open a root span under a fresh trace; returns the span.

        ``request_id`` (the protocol envelope id) indexes the trace for
        ``trace`` op lookup by request.  A caller-provided ``trace_id``
        (e.g. propagated from an upstream coordinator) is honored.
        """
        if not self.enabled:
            return NOOP_SPAN
        tid = trace_id or new_trace_id()
        record = _TraceRecord(tid)
        record.op = name
        record.request_id = request_id
        with self._lock:
            self.traces_started += 1
            self._ring[tid] = record
            if request_id is not None:
                self._by_request[str(request_id)] = tid
            while len(self._ring) > self.capacity:
                dropped_id, _ = self._ring.popitem(last=False)
                self.traces_dropped += 1
                # Drop the request index entry too (linear scan is fine:
                # it runs once per evicted trace, over a bounded dict).
                for key, value in list(self._by_request.items()):
                    if value == dropped_id:
                        del self._by_request[key]
        span = Span(self, tid, f"s{next(self._span_ids):x}", None, name, attrs)
        span._token = _current_span.set(span)
        record.spans.append(span)
        return span

    def span(self, name: str, **attrs: Any):
        """Open a child span of the context's current span.

        Outside any trace (or with tracing disabled) this is free: the
        shared no-op span is returned and nothing is recorded.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = _current_span.get()
        if parent is None:
            return NOOP_SPAN
        span = Span(
            self,
            parent.trace_id,
            f"s{next(self._span_ids):x}",
            parent.span_id,
            name,
            attrs,
        )
        with self._lock:
            record = self._ring.get(parent.trace_id)
        if record is None:  # trace already evicted mid-flight
            return NOOP_SPAN
        record.spans.append(span)
        span._token = _current_span.set(span)
        return span

    def current_trace_id(self) -> Optional[str]:
        span = _current_span.get()
        return span.trace_id if span is not None else None

    def _finish_span(self, span: Span) -> None:
        # Spans are already threaded into their record; finishing is just
        # the duration stamp done in Span.finish.  Hook kept for future
        # sinks (export-on-finish).
        pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[dict]:
        """The span tree of ``trace_id`` as a JSON-ready dict (or None)."""
        with self._lock:
            record = self._ring.get(trace_id)
        if record is None:
            return None
        return _render_record(record)

    def find_by_request(self, request_id: Any) -> Optional[dict]:
        with self._lock:
            trace_id = self._by_request.get(str(request_id))
        return self.get(trace_id) if trace_id is not None else None

    def recent(self, n: int = 20) -> list[dict]:
        """The last ``n`` traces, newest first."""
        with self._lock:
            records = list(self._ring.values())[-n:]
        return [_render_record(record) for record in reversed(records)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def info(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "started": self.traces_started,
                "dropped": self.traces_dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_request.clear()


def _render_record(record: _TraceRecord) -> dict:
    root_start = record.spans[0].start_s if record.spans else 0.0
    spans = []
    for span in record.spans:
        rendered = span.to_dict()
        rendered["start_ms"] = round((span.start_s - root_start) * 1000.0, 4)
        spans.append(rendered)
    return {
        "trace_id": record.trace_id,
        "op": record.op,
        "request_id": record.request_id,
        "started_at": record.started_at,
        "spans": spans,
    }


def render_trace_tree(trace: dict) -> str:
    """A human-readable indented rendering of one :meth:`Tracer.get` dict."""
    spans = trace.get("spans", ())
    children: dict[Optional[str], list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    lines = [
        f"trace {trace['trace_id']}"
        + (f"  (request id {trace['request_id']})" if trace.get("request_id") is not None else "")
    ]

    def walk(parent: Optional[str], depth: int) -> Iterator[str]:
        for span in children.get(parent, ()):  # insertion order == start order
            duration = span.get("duration_ms")
            shown = f"{duration:.3f} ms" if duration is not None else "open"
            attrs = span.get("attrs") or {}
            suffix = (
                "  " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
            )
            error = f"  !! {span['error']}" if span.get("error") else ""
            yield (
                f"{'  ' * depth}{span['name']:<{max(1, 24 - 2 * depth)}} "
                f"+{span['start_ms']:.3f} ms  {shown}{suffix}{error}"
            )
            yield from walk(span["span_id"], depth + 1)

    lines.extend(walk(None, 1))
    return "\n".join(lines)


#: The process-wide tracer every instrumentation seam reports to.
#: Disabled by default; :class:`repro.server.service.QueryService`
#: enables it (spans are per-request, far off the per-result hot path).
tracer = Tracer()
