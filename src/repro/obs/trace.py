"""Lightweight end-to-end span tracing.

A *span* is one timed stage of a request — ``parse``, ``plan``,
``cache_lookup``, ``execute.setup``, ``page_fetch`` — with a monotonic
start/duration, key/value attributes, and a link to its parent span.
Spans with the same ``trace_id`` form a *trace*: the tree of stages one
protocol request (or one library call) went through, which is what
turns "wire p99 is 25 ms but the engine averages 2.8 ms" from a mystery
into a per-stage attribution.

Design constraints, in order:

- **Near-zero cost when disabled.**  The tracer ships disabled; every
  instrumentation seam costs one attribute read and one ``if`` before
  bailing out to a shared no-op span.  Nothing is allocated, no clock
  is read.  The overhead guard in ``tests/test_obs.py`` holds the
  disabled-tracer tax on a seeded PART enumeration to a few percent.
- **Correct parenting under concurrency.**  The current span lives in a
  :mod:`contextvars` context variable, so socketserver handler threads
  (and any future asyncio core) each see their own span stack without
  locks on the hot path.
- **Bounded memory.**  Finished traces land in a ring buffer of the
  last ``capacity`` traces; an abandoned or chatty workload can never
  grow tracer state without bound.  The server's ``trace`` op reads
  this buffer.

Spans use :func:`time.perf_counter` (monotonic, highest resolution) for
durations and a single :func:`time.time` stamp per trace for wall-clock
anchoring.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Iterator, Optional

_ids = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id (cheap: no entropy pool, no UUID).

    The pid is read per call, not at import: a ``fork``-spawned shard
    worker inherits this module already imported, and an import-time
    prefix would make every worker mint the parent's ids.
    """
    return f"t{os.getpid():x}-{next(_ids):x}"


#: The traceparent version prefix we emit (W3C-style ``version-traceid-
#: parentid-flags``; our ids are process-scoped strings, not 16-byte hex).
TRACEPARENT_VERSION = "00"


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C-traceparent-style context string for the wire.

    The protocol's ``trace_context`` request field carries this; the
    server adopts ``trace_id`` and parents its root span under
    ``span_id``, so client-side and server-side spans form one tree.
    """
    return f"{TRACEPARENT_VERSION}-{trace_id}-{span_id}-01"


def parse_traceparent(value: Any) -> Optional[tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a traceparent string, or None.

    Lenient by design — a malformed context must degrade to "no
    propagation", never fail the request.  Trace ids may themselves
    contain dashes (ours do: ``t<pid>-<n>``), so the parent id and the
    flags are split from the *right*.
    """
    if not isinstance(value, str):
        return None
    parts = value.split("-")
    if len(parts) < 4:
        return None
    version = parts[0]
    if len(version) != 2 or not all(c in "0123456789abcdef" for c in version):
        return None
    trace_id = "-".join(parts[1:-2])
    parent_id = parts[-2]
    if not trace_id or not parent_id:
        return None
    return trace_id, parent_id


class Span:
    """One timed, attributed stage of a trace.

    Usable as a context manager (the normal idiom via
    :meth:`Tracer.span`) and directly via :meth:`finish` for callers
    whose stage does not nest lexically.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "duration_ms",
        "attrs",
        "error",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.error: Optional[str] = None
        self.duration_ms: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self.start_s = time.perf_counter()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self.start_s) * 1000.0
            self._tracer._finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.finish()

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": None,  # filled relative to the trace root
            "duration_ms": (
                round(self.duration_ms, 4) if self.duration_ms is not None else None
            ),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error:
            out["error"] = self.error
        return out


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()

#: The innermost open span of the calling context (None outside traces).
_current_span: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _TraceRecord:
    """One finished (or in-flight) trace in the ring buffer."""

    __slots__ = ("trace_id", "started_at", "spans", "request_id", "op")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started_at = time.time()
        self.spans: list[Span] = []
        self.request_id: Any = None
        self.op: Optional[str] = None


class Tracer:
    """Span factory plus a bounded ring buffer of recent traces.

    One instance per process is the normal deployment (the module-level
    :data:`tracer`); tests may build private instances.  All state
    transitions take an internal lock; span *creation* on a disabled
    tracer takes none.
    """

    def __init__(self, capacity: int = 256, enabled: bool = False) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        #: trace_id -> record, in insertion order (the ring).
        self._ring: "OrderedDict[str, _TraceRecord]" = OrderedDict()
        #: request id (as string) -> trace_id, bounded alongside the ring.
        self._by_request: "OrderedDict[str, str]" = OrderedDict()
        self._span_ids = itertools.count(1)
        # Captured at construction (not import) so a Tracer built inside
        # a fork-spawned shard worker carries the *worker's* pid — span
        # ids from four workers and their coordinator must never collide
        # once grafted into one trace (a collision makes the rendered
        # tree cyclic).
        self._id_prefix = f"{os.getpid():x}"
        self.traces_started = 0
        self.traces_joined = 0
        self.traces_dropped = 0

    def _new_span_id(self) -> str:
        # Process-prefixed (dot-separated: dashes would break traceparent
        # splitting) so client and server span ids never collide when a
        # propagated trace is joined across processes.
        return f"s{self._id_prefix}.{next(self._span_ids):x}"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring (``repro-serve --trace-capacity``); evicts the
        oldest traces immediately if the new capacity is smaller."""
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        with self._lock:
            self.capacity = capacity
            while len(self._ring) > self.capacity:
                self._evict_oldest_locked()

    def _evict_oldest_locked(self) -> None:
        dropped_id, _ = self._ring.popitem(last=False)
        self.traces_dropped += 1
        # Drop the request index entries too (linear scan is fine: it
        # runs once per evicted trace, over a bounded dict).
        for key, value in list(self._by_request.items()):
            if value == dropped_id:
                del self._by_request[key]

    def start_trace(
        self,
        name: str,
        request_id: Any = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ):
        """Open a root span under a (possibly propagated) trace.

        ``request_id`` (the protocol envelope id) indexes the trace for
        ``trace`` op lookup by request.  A caller-provided ``trace_id``
        (e.g. from a ``trace_context`` request field) is *adopted*: if
        the ring already buffers that trace — the caller lives in this
        process — the new root span joins the existing record instead of
        replacing it, so client-side and server-side spans of one
        request land in one tree.  ``parent_id`` (the traceparent's
        parent span id) links this root under the propagating caller's
        span even across process boundaries.
        """
        if not self.enabled:
            return NOOP_SPAN
        tid = trace_id or new_trace_id()
        with self._lock:
            record = self._ring.get(tid) if trace_id is not None else None
            if record is None:
                record = _TraceRecord(tid)
                record.op = name
                self.traces_started += 1
                self._ring[tid] = record
            else:
                # Joining an adopted trace keeps it hot in the ring.
                self.traces_joined += 1
                self._ring.move_to_end(tid)
            if request_id is not None:
                record.request_id = request_id
                self._by_request[str(request_id)] = tid
            while len(self._ring) > self.capacity:
                self._evict_oldest_locked()
        span = Span(self, tid, self._new_span_id(), parent_id, name, attrs)
        span._token = _current_span.set(span)
        record.spans.append(span)
        return span

    def span(self, name: str, **attrs: Any):
        """Open a child span of the context's current span.

        Outside any trace (or with tracing disabled) this is free: the
        shared no-op span is returned and nothing is recorded.
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = _current_span.get()
        if parent is None:
            return NOOP_SPAN
        span = Span(
            self,
            parent.trace_id,
            self._new_span_id(),
            parent.span_id,
            name,
            attrs,
        )
        with self._lock:
            record = self._ring.get(parent.trace_id)
        if record is None:  # trace already evicted mid-flight
            return NOOP_SPAN
        record.spans.append(span)
        span._token = _current_span.set(span)
        return span

    def current_trace_id(self) -> Optional[str]:
        span = _current_span.get()
        return span.trace_id if span is not None else None

    def current_span(self) -> Optional[Span]:
        """The context's innermost open span (None outside any trace)."""
        return _current_span.get()

    def graft(
        self,
        anchor: Any,
        spans: list,
        base_start_s: Optional[float] = None,
    ) -> int:
        """Splice remote span dicts into ``anchor``'s trace.

        ``spans`` is a list of :meth:`Span.to_dict`-shaped dicts shipped
        across a process boundary (a shard worker's done frame).  Their
        ids are remote-process-unique already; spans without a parent in
        the shipped batch are re-parented under ``anchor``, so a
        worker's subtree hangs off the coordinator's span.  Remote
        ``start_ms`` offsets are rebased onto ``base_start_s`` (a
        perf_counter stamp in *this* process — normally when the worker
        was launched) so the merged timeline stays roughly ordered.
        Returns the number of spans grafted (0 when disabled, the
        anchor is a no-op span, or the trace was already evicted).
        """
        if not self.enabled or not spans or not isinstance(anchor, Span):
            return 0
        with self._lock:
            record = self._ring.get(anchor.trace_id)
        if record is None:  # trace already evicted mid-flight
            return 0
        if base_start_s is None:
            base_start_s = anchor.start_s
        shipped_ids = {s.get("span_id") for s in spans}
        grafted = 0
        for shipped in spans:
            span_id = shipped.get("span_id")
            if not span_id:
                continue
            parent_id = shipped.get("parent_id")
            if parent_id not in shipped_ids:
                parent_id = anchor.span_id
            span = Span(
                self,
                anchor.trace_id,
                span_id,
                parent_id,
                str(shipped.get("name", "?")),
                dict(shipped.get("attrs") or {}),
            )
            span.start_s = base_start_s + float(shipped.get("start_ms") or 0.0) / 1000.0
            span.duration_ms = shipped.get("duration_ms")
            span.error = shipped.get("error")
            record.spans.append(span)
            grafted += 1
        return grafted

    def _finish_span(self, span: Span) -> None:
        # Spans are already threaded into their record; finishing is just
        # the duration stamp done in Span.finish.  Hook kept for future
        # sinks (export-on-finish).
        pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[dict]:
        """The span tree of ``trace_id`` as a JSON-ready dict (or None)."""
        with self._lock:
            record = self._ring.get(trace_id)
        if record is None:
            return None
        return _render_record(record)

    def find_by_request(self, request_id: Any) -> Optional[dict]:
        with self._lock:
            trace_id = self._by_request.get(str(request_id))
        return self.get(trace_id) if trace_id is not None else None

    def recent(self, n: int = 20) -> list[dict]:
        """The last ``n`` traces, newest first."""
        with self._lock:
            records = list(self._ring.values())[-n:]
        return [_render_record(record) for record in reversed(records)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def info(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "started": self.traces_started,
                "joined": self.traces_joined,
                "dropped": self.traces_dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_request.clear()


def _render_record(record: _TraceRecord) -> dict:
    root_start = record.spans[0].start_s if record.spans else 0.0
    spans = []
    for span in record.spans:
        rendered = span.to_dict()
        rendered["start_ms"] = round((span.start_s - root_start) * 1000.0, 4)
        spans.append(rendered)
    return {
        "trace_id": record.trace_id,
        "op": record.op,
        "request_id": record.request_id,
        "started_at": record.started_at,
        "spans": spans,
    }


def render_trace_tree(trace: dict) -> str:
    """A human-readable indented rendering of one :meth:`Tracer.get` dict."""
    spans = trace.get("spans", ())
    known = {span["span_id"] for span in spans}
    children: dict[Optional[str], list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in known:
            # A propagated root whose parent lives in another process's
            # buffer (the traceparent's span id): render it as a root.
            parent = None
        children.setdefault(parent, []).append(span)

    lines = [
        f"trace {trace['trace_id']}"
        + (f"  (request id {trace['request_id']})" if trace.get("request_id") is not None else "")
    ]

    def walk(parent: Optional[str], depth: int) -> Iterator[str]:
        for span in children.get(parent, ()):  # insertion order == start order
            duration = span.get("duration_ms")
            shown = f"{duration:.3f} ms" if duration is not None else "open"
            attrs = span.get("attrs") or {}
            suffix = (
                "  " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
            )
            error = f"  !! {span['error']}" if span.get("error") else ""
            yield (
                f"{'  ' * depth}{span['name']:<{max(1, 24 - 2 * depth)}} "
                f"+{span['start_ms']:.3f} ms  {shown}{suffix}{error}"
            )
            yield from walk(span["span_id"], depth + 1)

    lines.extend(walk(None, 1))
    return "\n".join(lines)


def join_traces(local: Optional[dict], remote: Optional[dict]) -> Optional[dict]:
    """Merge two rendered trace dicts for the *same* trace id.

    ``local`` is the caller's view (e.g. the client's connect/serialize/
    wait spans), ``remote`` the server's.  Used by
    :meth:`repro.server.client.Client.trace` to present one tree when
    the two processes each buffered half of a propagated trace.  Spans
    are concatenated local-first with de-duplicated ids; ``start_ms``
    offsets stay per-origin (they share a root only logically — the
    clocks are different processes'), which is fine for tree rendering
    because parenting is by span id, not by time.
    """
    if not local:
        return remote
    if not remote or remote.get("trace_id") != local.get("trace_id"):
        return local
    seen = {span["span_id"] for span in local.get("spans", ())}
    merged = dict(remote)
    merged["spans"] = list(local.get("spans", ())) + [
        span for span in remote.get("spans", ()) if span["span_id"] not in seen
    ]
    if local.get("request_id") is not None and merged.get("request_id") is None:
        merged["request_id"] = local["request_id"]
    return merged


#: The process-wide tracer every instrumentation seam reports to.
#: Disabled by default; :class:`repro.server.service.QueryService`
#: enables it (spans are per-request, far off the per-result hot path).
tracer = Tracer()
