"""repro.obs — end-to-end observability for the any-k stack.

Seven pieces, one per module:

- :mod:`repro.obs.trace` — lightweight span tracing around the request
  pipeline (parse → plan → cache lookup → shard/enumerate → merge →
  page fetch), with a bounded ring buffer of recent traces,
  W3C-traceparent-style context propagation (client spans, server
  spans, and grafted per-shard worker subtrees form one tree), and
  near-zero cost while disabled.
- :mod:`repro.obs.registry` — the process-wide metrics registry
  (counters, gauges, histograms) with Prometheus-text and JSON
  exporters, unifying the RAM-model :class:`~repro.util.counters.Counters`
  and the workload histograms behind one model.
- :mod:`repro.obs.delay` — the anytime-delay profiler: per-cursor
  inter-result delay, TTF, and TT(k) histograms recorded *inside* the
  engines (PART/REC/batch/HRJN and the parallel merge), with worker
  snapshots folded back across process boundaries.
- :mod:`repro.obs.analyze` — ``EXPLAIN ANALYZE``: run the statement and
  report per-stage/per-operator wall time, tuples produced, cache and
  shard attribution, and the delay profile.
- :mod:`repro.obs.events` — the structured query log: sampled
  per-request JSON-lines records with forced slow/error capture,
  size-based rotation, and replay against a live server.
- :mod:`repro.obs.memory` — the space profiler: calibrated
  bytes-per-entry models over the engines' load-bearing structures
  (priority queues, REC solution lists, T-DP state, HRJN buffers, hash
  buckets, columnar stores) folded into live/peak per-cursor profiles
  at O(1) hot-path cost, feeding the admission watermark
  (``repro-serve --max-mem-mb``) and the planner's Q-error feedback.
- :mod:`repro.obs.slo` — declarative SLO specs (latency percentiles,
  per-cursor peak memory, error rate, availability) evaluated with
  multi-window burn rates over the registry's live numbers.

The server (:mod:`repro.server`) exposes all of it on the wire:
``metrics``, ``trace``, and ``slo`` ops, ``trace_id`` echoed on every
response, ``trace_context`` adoption on every request, and the
``repro-obs`` CLI (:mod:`repro.obs.cli`) to snapshot or tail a running
``repro-serve``.
"""

from __future__ import annotations

from repro.obs.analyze import build_report, render_analyze, run_analyze
from repro.obs.delay import DELAY_BOUNDS, TTK_CHECKPOINTS, DelayProfile
from repro.obs.events import EventLog, read_events, replay_events, sql_hash
from repro.obs.memory import (
    MEM_BOUNDS,
    QERROR_BOUNDS,
    MemoryProfile,
    SpaceGauge,
    attach_tracker,
    q_error,
    tracker_of,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloEngine,
    SloError,
    SloSpec,
    evaluate_specs,
    parse_slo,
    parse_slos,
    render_slo_report,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    format_traceparent,
    join_traces,
    new_trace_id,
    parse_traceparent,
    render_trace_tree,
    tracer,
)

__all__ = [
    "DEFAULT_SLOS",
    "DELAY_BOUNDS",
    "DelayProfile",
    "EventLog",
    "MEM_BOUNDS",
    "MemoryProfile",
    "MetricsRegistry",
    "NOOP_SPAN",
    "QERROR_BOUNDS",
    "SloEngine",
    "SloError",
    "SloSpec",
    "SpaceGauge",
    "Span",
    "TTK_CHECKPOINTS",
    "Tracer",
    "attach_tracker",
    "build_report",
    "evaluate_specs",
    "format_traceparent",
    "join_traces",
    "new_trace_id",
    "parse_slo",
    "q_error",
    "parse_slos",
    "parse_traceparent",
    "read_events",
    "render_analyze",
    "render_slo_report",
    "render_trace_tree",
    "replay_events",
    "run_analyze",
    "sql_hash",
    "tracer",
    "tracker_of",
]
