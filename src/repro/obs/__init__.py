"""repro.obs — end-to-end observability for the any-k stack.

Four pieces, one per module:

- :mod:`repro.obs.trace` — lightweight span tracing around the request
  pipeline (parse → plan → cache lookup → shard/enumerate → merge →
  page fetch), with a bounded ring buffer of recent traces and
  near-zero cost while disabled.
- :mod:`repro.obs.registry` — the process-wide metrics registry
  (counters, gauges, histograms) with Prometheus-text and JSON
  exporters, unifying the RAM-model :class:`~repro.util.counters.Counters`
  and the workload histograms behind one model.
- :mod:`repro.obs.delay` — the anytime-delay profiler: per-cursor
  inter-result delay, TTF, and TT(k) histograms recorded *inside* the
  engines (PART/REC/batch/HRJN and the parallel merge), with worker
  snapshots folded back across process boundaries.
- :mod:`repro.obs.analyze` — ``EXPLAIN ANALYZE``: run the statement and
  report per-stage/per-operator wall time, tuples produced, cache and
  shard attribution, and the delay profile.

The server (:mod:`repro.server`) exposes all of it on the wire:
``metrics`` and ``trace`` ops, ``trace_id`` echoed on every response,
and the ``repro-obs`` CLI (:mod:`repro.obs.cli`) to snapshot or tail a
running ``repro-serve``.
"""

from __future__ import annotations

from repro.obs.analyze import build_report, render_analyze, run_analyze
from repro.obs.delay import DELAY_BOUNDS, TTK_CHECKPOINTS, DelayProfile
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    new_trace_id,
    render_trace_tree,
    tracer,
)

__all__ = [
    "DELAY_BOUNDS",
    "DelayProfile",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "TTK_CHECKPOINTS",
    "Tracer",
    "build_report",
    "new_trace_id",
    "render_analyze",
    "render_trace_tree",
    "run_analyze",
    "tracer",
]
