"""Process-wide metrics registry: counters, gauges, histograms.

One model for every number the system publishes, unifying what used to
be three ad-hoc shapes — :class:`repro.util.counters.Counters`
(RAM-model work), the server's ``(count, total, max)`` op timers, and
the load generator's latency histograms — behind two exporters:

- :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines, histograms
  with cumulative ``_bucket{le=...}`` series), servable verbatim by the
  ``metrics`` op;
- :meth:`MetricsRegistry.to_json` — the same samples as a nested dict
  for programmatic consumers (``repro-obs --json``, benchmarks).

Metric *families* carry optional label names; ``family.labels(op="query")``
returns the child for one label assignment (created on first use).  An
unlabeled family acts as its own single child, so the common case reads
``registry.counter("repro_queries_total").inc()``.

Thread-safety: one lock per family guards child creation and value
updates; exports snapshot under the same locks, so a reader racing
concurrent ``inc``/``observe`` calls sees internally consistent values.
*Collector callbacks* (:meth:`MetricsRegistry.add_collector`) pull
numbers that already live elsewhere — cursor-manager stats, plan-cache
info, ``Counters`` snapshots — at export time, so owners keep their
own synchronized state and nothing is double-counted.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.util.histogram import DEFAULT_BOUNDS, Histogram

#: A collector yields ``(metric_name, labels_dict, value)`` gauge samples.
CollectorSample = tuple[str, dict, Union[int, float]]

_VALID_TYPES = ("counter", "gauge", "histogram")


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"invalid metric name {name!r} (Prometheus names are "
            "[a-zA-Z0-9_:]+)"
        )
    return name


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in labels.items()
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


class _Child:
    """Base for one labeled child of a family."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock


class CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, lock: threading.Lock) -> None:
        super().__init__(lock)
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class GaugeChild(_Child):
    __slots__ = ("value", "callback")

    def __init__(
        self, lock: threading.Lock, callback: Optional[Callable[[], float]] = None
    ) -> None:
        super().__init__(lock)
        self.value = 0.0
        self.callback = callback

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)

    def read(self) -> Union[int, float]:
        if self.callback is not None:
            return self.callback()
        with self._lock:
            return self.value


class HistogramChild(_Child):
    __slots__ = ("histogram",)

    def __init__(self, lock: threading.Lock, bounds: Sequence[float]) -> None:
        super().__init__(lock)
        self.histogram = Histogram(bounds)

    def observe(self, value: float) -> None:
        with self._lock:
            self.histogram.record(value)

    def merge_histogram(self, other: Histogram) -> None:
        """Fold an externally-built histogram (a worker's, a cursor's)."""
        with self._lock:
            self.histogram.merge(other)

    def summary(self) -> dict:
        with self._lock:
            return self.histogram.summary()

    def copy(self) -> Histogram:
        """An independent :class:`Histogram` clone, taken under the lock
        (the SLO engine diffs such clones to get per-window counts)."""
        with self._lock:
            return self.histogram.copy()


class MetricFamily:
    """One named metric with optional label dimensions."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> None:
        assert kind in _VALID_TYPES
        self.name = _validate_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._bounds = tuple(bounds)
        self._lock = threading.Lock()
        self._children: dict[tuple, Any] = {}
        if not labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self, callback: Optional[Callable[[], float]] = None):
        if self.kind == "counter":
            return CounterChild(self._lock)
        if self.kind == "gauge":
            return GaugeChild(self._lock, callback)
        return HistogramChild(self._lock, self._bounds)

    def labels(self, **labels: Any):
        """The child for one label assignment (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    # Unlabeled convenience pass-throughs ------------------------------
    def _only(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} is labeled ({self.labelnames}); "
                "call .labels(...) first"
            )
        return self._default

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._only().inc(amount)

    def set(self, value: Union[int, float]) -> None:
        self._only().set(value)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._only().dec(amount)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    def children(self) -> list[tuple[dict, Any]]:
        """``(labels_dict, child)`` pairs, snapshot under the lock."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class MetricsRegistry:
    """A named collection of metric families plus pull-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, MetricFamily]" = {}
        self._collectors: list[Callable[[], Iterable[CollectorSample]]] = []

    # ------------------------------------------------------------------
    # Registration (idempotent per name; conflicting kinds are an error)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.labelnames}"
                    )
                return family
            family = MetricFamily(name, kind, help_text, labelnames, bounds)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help_text, tuple(labelnames))

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], float]] = None,
    ) -> MetricFamily:
        family = self._family(name, "gauge", help_text, tuple(labelnames))
        if callback is not None:
            if family.labelnames:
                raise ValueError("callback gauges cannot be labeled")
            family._default.callback = callback
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help_text, tuple(labelnames), bounds)

    def add_collector(
        self, fn: Callable[[], Iterable[CollectorSample]]
    ) -> None:
        """Register a pull-time sample source (exported as gauges)."""
        with self._lock:
            self._collectors.append(fn)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _families_snapshot(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def _collector_samples(self) -> list[CollectorSample]:
        with self._lock:
            collectors = list(self._collectors)
        samples: list[CollectorSample] = []
        for fn in collectors:
            try:
                samples.extend(fn())
            except Exception:  # a broken collector must not kill export
                continue
        return samples

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self._families_snapshot():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.children():
                if family.kind == "counter":
                    with family._lock:
                        value = child.value
                    lines.append(
                        f"{family.name}{_render_labels(labels)} {_fmt(value)}"
                    )
                elif family.kind == "gauge":
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_fmt(child.read())}"
                    )
                else:
                    lines.extend(_render_histogram(family.name, labels, child))
        collected = self._collector_samples()
        seen_names: list[str] = []
        for name, labels, value in collected:
            if name not in seen_names:
                seen_names.append(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_render_labels(labels)} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """The same samples as a nested JSON-ready dict."""
        out: dict[str, Any] = {}
        for family in self._families_snapshot():
            entry: dict[str, Any] = {"type": family.kind, "help": family.help}
            samples = []
            for labels, child in family.children():
                if family.kind == "counter":
                    with family._lock:
                        value = child.value
                    samples.append({"labels": labels, "value": value})
                elif family.kind == "gauge":
                    samples.append({"labels": labels, "value": child.read()})
                else:
                    samples.append({"labels": labels, **child.summary()})
            entry["samples"] = samples
            out[family.name] = entry
        for name, labels, value in self._collector_samples():
            entry = out.setdefault(
                name, {"type": "gauge", "help": "", "samples": []}
            )
            entry["samples"].append({"labels": labels, "value": value})
        return out


def _render_histogram(name: str, labels: dict, child: HistogramChild) -> list[str]:
    with child._lock:
        bounds = child.histogram.bounds
        buckets = list(child.histogram.buckets)
        count = child.histogram.count
        total = child.histogram.total
    lines = []
    cumulative = 0
    for edge, n in zip(bounds, buckets):
        cumulative += n
        le_labels = dict(labels)
        le_labels["le"] = _fmt(edge)
        lines.append(f"{name}_bucket{_render_labels(le_labels)} {cumulative}")
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_render_labels(inf_labels)} {count}")
    lines.append(f"{name}_sum{_render_labels(labels)} {_fmt(total)}")
    lines.append(f"{name}_count{_render_labels(labels)} {count}")
    return lines
