"""The ``repro-obs`` console script: observe a running ``repro-serve``.

Snapshots (or tails) the server's observability surface over the same
JSON-lines protocol every other client uses — no side channel, no extra
port.

Examples::

    repro-obs --port 7632                 # one combined snapshot
    repro-obs --metrics                   # Prometheus text, verbatim
    repro-obs --metrics --json            # the registry as JSON
    repro-obs --stats                     # the stats op (latency, delay)
    repro-obs --trace t3f2a-1             # one buffered trace, rendered
    repro-obs --traces                    # the newest buffered traces
    repro-obs --slo                       # SLO burn rates and verdicts
    repro-obs --log query.log             # render a query log (no server)
    repro-obs --replay query.log          # re-issue logged requests
    repro-obs --tail --interval 2         # refresh a summary every 2 s
    repro-obs --watch 2                   # same live summary, via --watch
    repro-obs --metrics --watch 5         # live Prometheus text every 5 s
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Optional, Sequence

import repro.server.protocol as protocol
from repro.obs.events import read_events, render_event, replay_events
from repro.obs.slo import render_slo_report
from repro.server.client import Client, ServerError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Snapshot or tail the observability surface of a "
        "running repro-serve: unified metrics, per-op latency, anytime-"
        "delay profiles, and request traces.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument(
        "--port",
        type=int,
        default=protocol.DEFAULT_PORT,
        help=f"server TCP port (default {protocol.DEFAULT_PORT})",
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (Prometheus text; --json for JSON)",
    )
    what.add_argument(
        "--stats",
        action="store_true",
        help="print the stats op (op latency, delay profiles, caches)",
    )
    what.add_argument(
        "--trace",
        metavar="TRACE_ID",
        help="print one buffered trace (the trace_id echoed on responses)",
    )
    what.add_argument(
        "--traces",
        action="store_true",
        help="list the newest buffered traces",
    )
    what.add_argument(
        "--slo",
        action="store_true",
        help="print the server's SLO evaluation (burn rates + verdicts)",
    )
    what.add_argument(
        "--log",
        metavar="PATH",
        help="render a repro-serve --query-log file (reads the file "
        "directly; no server connection needed)",
    )
    what.add_argument(
        "--replay",
        metavar="PATH",
        help="re-issue the requests in a --query-log file against the "
        "server (queries and explains; mutations only with "
        "--include-mutations)",
    )
    what.add_argument(
        "--tail",
        action="store_true",
        help="refresh a one-screen summary every --interval seconds",
    )
    parser.add_argument(
        "--include-mutations",
        action="store_true",
        help="also replay logged mutate requests (--replay only)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of rendered text",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh period for --tail (seconds, default 2)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="live-refresh the selected view every SECONDS (clear + "
        "redraw; applies to the summary and --metrics views; exit "
        "cleanly with ^C)",
    )
    return parser


def _print_metrics(client: Client, as_json: bool) -> None:
    if as_json:
        response = client.call("metrics", format="json")
        print(json.dumps(response["metrics"], indent=2, default=str))
    else:
        response = client.call("metrics")
        print(response["metrics"], end="")


def _print_stats(client: Client, as_json: bool) -> None:
    stats = client.stats()
    if as_json:
        print(json.dumps(stats, indent=2, default=str))
        return
    print(render_summary(stats))


def _print_trace(client: Client, trace_id: str, as_json: bool) -> int:
    try:
        response = client.trace(trace_id=trace_id)
    except ServerError as exc:
        if exc.code == protocol.UNKNOWN_TRACE:
            # The ring buffer is bounded: old traces fall out.  Say so
            # plainly instead of dumping a wire error.
            print(
                f"repro-obs: no buffered trace {trace_id!r} — it never "
                "existed or has been evicted from the server's ring "
                "buffer (see --trace-capacity on repro-serve)"
            )
            return 1
        raise
    if as_json:
        print(json.dumps(response["trace"], indent=2, default=str))
    else:
        print(response["rendered"])
    return 0


def _print_slo(client: Client, as_json: bool) -> int:
    report = client.slo()
    if as_json:
        print(json.dumps(report, indent=2, default=str))
    else:
        for line in render_slo_report(report):
            print(line)
    return 0 if report.get("status") != "page" else 2


def _print_log(path: str, as_json: bool) -> int:
    try:
        events = list(read_events(path))
    except OSError as exc:
        print(f"repro-obs: cannot read query log {path!r}: {exc}")
        return 1
    if as_json:
        print(json.dumps(events, indent=2, default=str))
        return 0
    for event in events:
        print(render_event(event))
    print(f"({len(events)} logged requests)")
    return 0


def _print_replay(
    client: Client, path: str, include_mutations: bool, as_json: bool
) -> int:
    try:
        events = list(read_events(path))
    except OSError as exc:
        print(f"repro-obs: cannot read query log {path!r}: {exc}")
        return 1
    outcome = replay_events(
        events, client.call, include_mutations=include_mutations
    )
    if as_json:
        print(json.dumps(outcome, indent=2, default=str))
    else:
        print(
            f"replayed {outcome['replayed']} of {len(events)} logged "
            f"requests ({outcome['skipped']} skipped, "
            f"{outcome['failed']} failed)"
        )
        for entry in outcome.get("outcomes", ()):
            original = entry.get("original_latency_ms")
            was = (
                f"{original:.3f}" if isinstance(original, (int, float)) else "-"
            )
            verdict = entry["error"] or "ok"
            print(
                f"  {entry['op']:<8} {entry['replay_latency_ms']:>10.3f} ms "
                f"(was {was:>10} ms)  {verdict}"
            )
    return 0 if not outcome["failed"] else 1


def _print_traces(client: Client, as_json: bool) -> None:
    response = client.call("trace")
    if as_json:
        print(json.dumps(response["recent"], indent=2, default=str))
        return
    info = response.get("tracer", {})
    print(
        f"tracer: {info.get('buffered', 0)} buffered / "
        f"{info.get('started', 0)} started / "
        f"{info.get('dropped', 0)} dropped"
    )
    for trace in response.get("recent", ()):
        spans = trace.get("spans", ())
        root = spans[0] if spans else {}
        duration = root.get("duration_ms")
        shown = f"{duration:.3f} ms" if duration is not None else "open"
        print(
            f"  {trace['trace_id']:<16} {trace.get('op', '?'):<8} "
            f"{shown:>12}  spans={len(spans)}"
        )


def render_summary(stats: dict) -> str:
    """The one-screen digest --tail repaints (and --stats prints)."""
    lines = [
        f"uptime {stats.get('uptime_s', 0):.0f}s  "
        f"queries={stats.get('queries', 0)}  "
        f"fetches={stats.get('fetches', 0)}  "
        f"rows_served={stats.get('rows_served', 0)}  "
        f"mutations={stats.get('mutations', 0)}",
    ]
    cursors = stats.get("cursors", {})
    lines.append(
        f"cursors open={cursors.get('open', 0)}/{cursors.get('limit', 0)}  "
        f"evicted={cursors.get('evicted', 0)}  "
        f"rejected={cursors.get('rejected', 0)}"
    )
    plan_cache = stats.get("plan_cache", {})
    lines.append(
        f"plan cache {plan_cache.get('entries', 0)} entries  "
        f"hits={plan_cache.get('hits', 0)} misses={plan_cache.get('misses', 0)}"
    )
    latency = stats.get("op_latency_ms", {})
    if latency:
        lines.append("op latency (ms):")
        for op in sorted(latency):
            summary = latency[op]
            lines.append(
                f"  {op:<8} count={summary.get('count', 0):<7} "
                f"p50={summary.get('p50_ms', 0):>9.3f} "
                f"p95={summary.get('p95_ms', 0):>9.3f} "
                f"p99={summary.get('p99_ms', 0):>9.3f} "
                f"max={summary.get('max', 0):>9.3f}"
            )
    profiles = stats.get("delay_profiles", {})
    if profiles:
        lines.append("anytime delay (in-engine, ms):")
        for engine in sorted(profiles):
            profile = profiles[engine]
            delay = profile.get("delay_ms", {})
            ttf = profile.get("ttf_ms", {})
            lines.append(
                f"  {engine:<10} results={profile.get('results', 0):<8} "
                f"delay p50={delay.get('p50_ms', 0):>8.4f} "
                f"p99={delay.get('p99_ms', 0):>8.4f}  "
                f"ttf p50={ttf.get('p50_ms', 0):>8.3f}"
            )
    memory = stats.get("memory")
    if memory:
        watermark = memory.get("watermark_bytes")
        shown = (
            f"{watermark / 1048576:g} MB" if watermark else "off"
        )
        lines.append(
            f"memory live={memory.get('live_bytes', 0)} B  "
            f"watermark={shown}  "
            f"pressure rejected={memory.get('pressure_rejections', 0)} "
            f"evicted={memory.get('pressure_evictions', 0)}"
        )
        mem_profiles = memory.get("profiles", {})
        if mem_profiles:
            lines.append("peak memory (accounted, per engine):")
            for engine in sorted(mem_profiles):
                p = mem_profiles[engine]
                lines.append(
                    f"  {engine:<10} peak={p.get('peak_bytes', 0):>10} B "
                    f"({p.get('peak_mb', 0.0):.3f} MB)  "
                    f"streams={p.get('streams', 0)}"
                )
    tracer_info = stats.get("tracer", {})
    if tracer_info:
        lines.append(
            f"tracer: {tracer_info.get('buffered', 0)} buffered traces "
            f"({tracer_info.get('dropped', 0)} dropped, "
            f"{tracer_info.get('joined', 0)} joined)"
        )
    log_info = stats.get("event_log")
    if log_info:
        lines.append(
            f"query log: {log_info.get('written', 0)} written / "
            f"{log_info.get('candidates', 0)} seen  "
            f"(sample={log_info.get('sample', 1.0)}, forced="
            f"{log_info.get('forced', 0)}, "
            f"rotations={log_info.get('rotations', 0)})"
        )
    slo_report = stats.get("slo")
    if slo_report and slo_report.get("slos"):
        lines.extend(render_slo_report(slo_report))
    return "\n".join(lines)


def _watch(render, period: float, header: str) -> int:
    """Clear + redraw ``render()``'s output every ``period`` seconds.

    The live-refresh loop behind ``--watch`` (and ``--tail``, which is
    the summary view on the same loop).  ^C exits cleanly — watching is
    how the loop is *meant* to end, not an error.
    """
    try:
        while True:
            print("\033[2J\033[H", end="")  # clear screen, home
            print(f"{header}  ({time.strftime('%H:%M:%S')})")
            render()
            time.sleep(period)
    except KeyboardInterrupt:
        print()
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.watch is not None and args.watch <= 0:
        print("repro-obs: --watch needs a positive refresh period")
        return 2
    if args.watch is not None and (
        args.trace or args.traces or args.slo or args.log or args.replay
    ):
        print(
            "repro-obs: --watch live-refreshes the summary and --metrics "
            "views only"
        )
        return 2
    if args.log:
        # Pure file view — no server round trip.
        return _print_log(args.log, args.json)
    try:
        client = Client(host=args.host, port=args.port, timeout=10.0)
    except OSError as exc:
        print(f"repro-obs: cannot reach {args.host}:{args.port}: {exc}")
        return 1
    exit_code = 0
    header = f"repro-obs @ {args.host}:{args.port}"
    try:
        if args.metrics:
            if args.watch is not None:
                exit_code = _watch(
                    lambda: _print_metrics(client, args.json),
                    args.watch,
                    header,
                )
            else:
                _print_metrics(client, args.json)
        elif args.trace:
            exit_code = _print_trace(client, args.trace, args.json)
        elif args.traces:
            _print_traces(client, args.json)
        elif args.slo:
            exit_code = _print_slo(client, args.json)
        elif args.replay:
            exit_code = _print_replay(
                client, args.replay, args.include_mutations, args.json
            )
        elif args.tail or args.watch is not None:
            # --metrics --watch is handled above; every other surviving
            # combination watches the summary view.
            exit_code = _watch(
                lambda: print(render_summary(client.stats())),
                args.watch if args.watch is not None else args.interval,
                header,
            )
        else:  # --stats, and the no-flag default snapshot
            _print_stats(client, args.json)
    except ServerError as exc:
        print(f"repro-obs: {exc}")
        return 1
    except ConnectionError as exc:
        print(f"repro-obs: connection lost: {exc}")
        return 1
    finally:
        client.close()
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
