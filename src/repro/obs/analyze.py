"""EXPLAIN ANALYZE: run the statement, report where the time went.

Plain ``EXPLAIN`` (:func:`repro.sql.explain`) renders the routing
decision without executing.  ``EXPLAIN ANALYZE`` runs the statement to
completion (honoring its LIMIT) and reports what actually happened:

- per-stage wall time — parse, semantic analysis, routing (which
  includes σ-pushdown materialization), and enumeration;
- per-operator attribution — every scan with its base and post-filter
  cardinalities, the enumeration operator with tuples produced;
- the anytime-delay profile (:mod:`repro.obs.delay`): TTF, TT(k), and
  inter-result delay percentiles measured inside the engine, with
  per-shard worker attribution for parallel plans;
- the space profile (:mod:`repro.obs.memory`): per-category live/peak
  accounted bytes of the engine structures the run built;
- planner feedback: the routing-time cardinality estimate (the AGM
  bound) next to the rows actually produced, with the Q-error between
  them (flagged ``truncated`` when LIMIT cut the run short — a
  truncated count says nothing about the true cardinality);
- the RAM-model counters the engines maintain anyway.

The report is a plain JSON-ready dict (:func:`run_analyze`) with a text
rendering (:func:`render_analyze`) — the server's ``explain`` op ships
the dict and the CLIs render it, so both views can never disagree.
"""

from __future__ import annotations

import time
from typing import Any, Optional, TYPE_CHECKING

from repro.data.database import Database
from repro.obs.delay import DelayProfile
from repro.obs.trace import tracer
from repro.util.counters import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.planner import Plan
    from repro.obs.memory import MemoryProfile
    from repro.sql.analyzer import CompiledQuery


def _scan_operators(
    db: Database, compiled: "CompiledQuery", plan: "Plan"
) -> list[dict]:
    """One entry per FROM atom: base vs. post-σ cardinality.

    The working instance the plan was costed on names filtered copies
    ``<relation>__sigma<i>``; pairing its atoms with the original query's
    atoms recovers exactly which scans the pushdown touched and what
    each one's selectivity turned out to be.
    """
    working_db, working_cq = plan.working_db, plan.working_cq
    if working_db is None or working_cq is None:
        from repro.engine.executor import filtered_database

        working_db, working_cq = filtered_database(db, compiled, negate=False)
    aliases = list(compiled.alias_to_relation)
    operators = []
    for index, (base_atom, work_atom) in enumerate(
        zip(compiled.cq.atoms, working_cq.atoms)
    ):
        alias = aliases[index] if index < len(aliases) else base_atom.relation
        base_rows = len(db[base_atom.relation])
        scan_rows = len(working_db[work_atom.relation])
        entry = {
            "operator": "scan",
            "relation": base_atom.relation,
            "alias": alias,
            "base_rows": base_rows,
            "rows": scan_rows,
        }
        filters = [f for f in compiled.filters if f.table == alias]
        if filters:
            entry["operator"] = "scan+filter"
            entry["filters"] = [str(f) for f in filters]
        operators.append(entry)
    return operators


def build_report(
    db: Database,
    compiled: "CompiledQuery",
    plan: "Plan",
    rows: int,
    stages_ms: dict,
    profile: DelayProfile,
    counters: Counters,
    cache: Optional[dict] = None,
    memory: Optional["MemoryProfile"] = None,
) -> dict:
    """Assemble the EXPLAIN ANALYZE report from an already-measured run.

    Shared by :func:`run_analyze` (the library path) and the server's
    ``explain`` op with ``analyze=True`` (which measures around its own
    plan cache and fills ``cache`` with the hit/miss attribution).
    """
    from repro.sql import render_explain

    operators = _scan_operators(db, compiled, plan)
    operators.append(
        {
            "operator": f"enumerate[{plan.engine}]",
            "rows": rows,
            "wall_ms": stages_ms.get("execute"),
            "workers": plan.workers,
            "shard_variable": plan.shard_variable,
        }
    )
    report = {
        "sql": str(compiled.statement),
        "engine": plan.engine,
        "workers": plan.workers,
        "rows": rows,
        "stages_ms": dict(stages_ms),
        "operators": operators,
        "profile": profile.summary(),
        "counters": counters.snapshot(),
        "plan": render_explain(compiled, plan),
        "cache": dict(cache) if cache else {"plan_cache": "bypass"},
        "kernel": _kernel_report(plan),
        "estimates": _estimate_report(compiled, plan, rows),
    }
    if memory is not None and memory.touched:
        report["memory"] = memory.summary()
    return report


def _estimate_report(compiled: "CompiledQuery", plan: "Plan", rows: int) -> dict:
    """Planner feedback: the routing-time cardinality estimate next to
    the measured truth.

    The Q-error (``max(est/actual, actual/est)``, both floored at 1) is
    the planner-quality number the registry histograms per template;
    here it sits inline in the report.  ``truncated`` flags runs whose
    LIMIT fired — their row count bounds the true cardinality from
    below, so the Q-error is only a lower-bound misestimate signal.
    """
    from repro.obs.memory import q_error

    k = compiled.k
    truncated = k is not None and rows >= k
    return {
        "estimated_rows": plan.estimates.agm_bound,
        "actual_rows": rows,
        "qerror": round(q_error(plan.estimates.agm_bound, rows), 4),
        "truncated": truncated,
    }


def _kernel_report(plan: "Plan") -> dict:
    """Compiled-kernel attribution for one executed plan.

    ``slot`` says whether this plan holds a pinned compiled template
    (``warm`` after its first any-k execution, ``cold`` before,
    ``none`` for engines without kernels); ``stats`` is the process-wide
    per-engine counter snapshot for the plan's engine.
    """
    from repro.anyk.kernels import kernel_stats

    slot = getattr(plan, "kernel_slot", None)
    if slot is None:
        state = "none"
    elif slot.template is not None:
        state = "warm"
    else:
        state = "cold"
    return {
        "engine": plan.engine,
        "slot": state,
        "stats": kernel_stats().get(plan.engine, {}),
    }


def run_analyze(
    db: Database,
    sql: str,
    engine: Optional[str] = None,
    counters: Optional[Counters] = None,
) -> dict:
    """Execute ``sql`` and build the EXPLAIN ANALYZE report dict.

    ``sql`` may be the bare SELECT or carry the ``EXPLAIN [ANALYZE]``
    prefix (it is stripped — what runs is the inner statement).
    ``engine`` overrides the router exactly as in :func:`repro.sql.query`.
    """
    from repro.engine.executor import execute
    from repro.engine.planner import plan_compiled
    from repro.sql import _check_engine
    from repro.sql.analyzer import analyze_statement
    from repro.sql.errors import SqlError
    from repro.sql.nodes import ExplainStatement, SelectStatement
    from repro.sql.parser import parse_any

    _check_engine(engine)
    whole_start = time.perf_counter()
    with tracer.span("analyze.parse"):
        start = time.perf_counter()
        statement = parse_any(sql)
        if isinstance(statement, ExplainStatement):
            statement = statement.statement
        if not isinstance(statement, SelectStatement):
            raise SqlError(
                "EXPLAIN ANALYZE applies to SELECT statements only",
                sql,
                statement.pos,
            )
        parse_ms = (time.perf_counter() - start) * 1000.0

    with tracer.span("analyze.semantic"):
        start = time.perf_counter()
        compiled = analyze_statement(db, sql, statement)
        analyze_ms = (time.perf_counter() - start) * 1000.0

    with tracer.span("analyze.plan"):
        start = time.perf_counter()
        plan = plan_compiled(db, compiled, engine=engine)
        plan_ms = (time.perf_counter() - start) * 1000.0

    from repro.obs.memory import MemoryProfile

    if counters is None:
        counters = Counters()
    profile = DelayProfile()
    memory = MemoryProfile()
    with tracer.span(
        "analyze.execute", engine=plan.engine, workers=plan.workers
    ):
        start = time.perf_counter()
        rows = 0
        for _ in execute(
            db,
            compiled,
            plan,
            counters=counters,
            profile=profile,
            memory=memory,
        ):
            rows += 1
        execute_ms = (time.perf_counter() - start) * 1000.0
    total_ms = (time.perf_counter() - whole_start) * 1000.0

    return build_report(
        db,
        compiled,
        plan,
        rows=rows,
        stages_ms={
            "parse": round(parse_ms, 4),
            "analyze": round(analyze_ms, 4),
            "plan": round(plan_ms, 4),
            "execute": round(execute_ms, 4),
            "total": round(total_ms, 4),
        },
        profile=profile,
        counters=counters,
        memory=memory,
    )


def _fmt_ms(value: Any) -> str:
    return f"{value:.3f} ms" if isinstance(value, (int, float)) else str(value)


def render_analyze(report: dict) -> str:
    """Text rendering of a :func:`run_analyze` report (CLI/server views)."""
    lines = [report["plan"], ""]
    stages = report.get("stages_ms", {})
    lines.append(
        "timing:   "
        + "  ".join(
            f"{stage}={_fmt_ms(stages[stage])}"
            for stage in ("parse", "analyze", "plan", "execute", "total")
            if stage in stages
        )
    )
    cache = report.get("cache", {})
    if cache:
        lines.append(
            "cache:    "
            + "  ".join(f"{name}={value}" for name, value in cache.items())
        )
    kernel = report.get("kernel")
    if kernel and kernel.get("slot") != "none":
        stats = kernel.get("stats", {})
        detail = f"slot={kernel['slot']}"
        for event in ("installs", "slot_hits", "template_hits", "compiles"):
            if event in stats:
                detail += f"  {event}={stats[event]}"
        lines.append(f"kernels:  {detail}")
    lines.append("operators:")
    for op in report.get("operators", ()):
        name = op.get("operator", "?")
        if name.startswith("scan"):
            detail = (
                f"{op['relation']} AS {op['alias']}  "
                f"rows={op['rows']}/{op['base_rows']}"
            )
            if op.get("filters"):
                detail += "  σ[" + " AND ".join(op["filters"]) + "]"
        else:
            detail = f"rows={op.get('rows', '?')}"
            if op.get("wall_ms") is not None:
                detail += f"  wall={_fmt_ms(op['wall_ms'])}"
            if op.get("workers", 1) > 1:
                detail += (
                    f"  workers={op['workers']}"
                    f" shard={op.get('shard_variable')}"
                )
        lines.append(f"  {name:<22}{detail}")
    profile = report.get("profile", {})
    if profile.get("results"):
        delay = profile.get("delay_ms", {})
        ttf = profile.get("ttf_ms", {})
        lines.append(
            "anytime:  "
            f"ttf={_fmt_ms(ttf.get('max_ms', 0.0))}  "
            f"delay p50={_fmt_ms(delay.get('p50_ms', 0.0))}"
            f" p99={_fmt_ms(delay.get('p99_ms', 0.0))}"
            f" max={_fmt_ms(delay.get('max_ms', 0.0))}"
        )
        for k, summary in sorted(
            profile.get("ttk_ms", {}).items(), key=lambda kv: int(kv[0])
        ):
            lines.append(
                f"          tt({k})={_fmt_ms(summary.get('max_ms', 0.0))}"
            )
        for shard in profile.get("shards", ()):
            lines.append(
                f"          shard[{shard.get('shard', '?')}]"
                f" results={shard.get('results', 0)}"
                f" busy={_fmt_ms(shard.get('busy_ms', 0.0))}"
            )
    memory = report.get("memory")
    if memory:
        lines.append(
            "memory:   "
            f"peak={memory.get('peak_bytes', 0)} B"
            f" ({memory.get('peak_mb', 0.0):.3f} MB)"
            f"  live={memory.get('live_bytes', 0)} B"
        )
        for category, detail in sorted(
            memory.get("categories", {}).items(),
            key=lambda kv: -kv[1].get("peak_bytes", 0),
        ):
            lines.append(
                f"          {category:<16}"
                f"peak_entries={detail.get('peak_entries', 0)}"
                f"  peak={detail.get('peak_bytes', 0)} B"
            )
        for shard in memory.get("shards", ()):
            lines.append(
                f"          shard[{shard.get('shard', '?')}]"
                f" peak={shard.get('peak_bytes', 0)} B"
            )
    estimates = report.get("estimates")
    if estimates:
        note = "  (LIMIT-truncated)" if estimates.get("truncated") else ""
        lines.append(
            "estimate: "
            f"rows~{estimates.get('estimated_rows', 0.0):.6g}"
            f"  actual={estimates.get('actual_rows', 0)}"
            f"  qerror={estimates.get('qerror', 1.0):g}{note}"
        )
    return "\n".join(lines)
