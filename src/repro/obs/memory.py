"""Space accounting: the third observability layer (bytes, not time).

The any-k guarantees in the paper are time *and space* guarantees — the
variants trade TTF/delay against the growth of their priority queues and
materialized intermediates (ANYK-PART's candidate queue vs ANYK-REC's
memoized solution prefixes vs batch's full materialization).  Layers 1–2
(:mod:`repro.obs.trace`, :mod:`repro.obs.delay`, :mod:`repro.obs.slo`)
measure only time; this module adds the byte axis with the same
lifecycle:

- :class:`SpaceGauge` — an O(1) live/peak entry counter for one named
  structure category ("part.pq", "rec.solutions", "hrjn.buffer", ...),
  each carrying a *calibrated bytes-per-entry model* computed once at
  import from ``sys.getsizeof`` probes.  The hot path is two integer
  adds and two compares — never a ``sys.getsizeof`` walk.
- :class:`MemoryProfile` — the per-execution bundle of gauges with a
  concurrent live/peak byte total.  Profiles ride on the execution's
  :class:`~repro.util.counters.Counters` (a dynamic ``space`` attribute,
  so no engine signature changes), retire into per-engine aggregates,
  and ship per-shard via worker done frames exactly like
  :class:`~repro.obs.delay.DelayProfile`.

Aggregation semantics differ from the delay profiler on purpose: time
is additive across retired cursors, memory is not (a retired cursor's
structures are garbage).  :meth:`MemoryProfile.merge` therefore takes
*maxima* of live/peak bytes and per-category peaks, and sums only the
stream count; the per-cursor peak *distribution* lives in the
``repro_mem_peak_bytes`` registry histogram the server feeds at
retirement.

The byte models deliberately count only the containers the engine
allocates (heap slots, candidate tuples, entry objects, list slots,
fresh floats) — row values are shared with the base relations and would
be double-counted.  ``benchmarks/bench_e27_memory.py`` cross-checks the
model against ``tracemalloc`` and pins it within 2x.
"""

from __future__ import annotations

import sys
from typing import Any, Optional

from repro.util.histogram import geometric_bounds

#: Bucket bounds for byte-valued histograms (1 KiB .. 16 GiB).
MEM_BOUNDS = geometric_bounds(lo=1024.0, hi=float(2**34), per_decade=5)

#: Bucket bounds for planner Q-error histograms.  The lowest bucket
#: (``le=1``) holds exact estimates; the overflow bucket holds
#: misestimates beyond six orders of magnitude.
QERROR_BOUNDS = geometric_bounds(lo=1.0, hi=1e6, per_decade=4)

# ----------------------------------------------------------------------
# Calibration probes (run once at import; never on the hot path)
# ----------------------------------------------------------------------
_PTR = 8  # one CPython pointer: a list/heap slot or an object reference
_FLOAT = sys.getsizeof(1.0)  # a fresh float (weights, priorities)
_INT = sys.getsizeof(1 << 30)  # a non-cached int (heap ticks, row ids)


def _tuple_bytes(n: int) -> int:
    """Allocation size of an ``n``-tuple shell (payload counted apart)."""
    return sys.getsizeof((None,) * n)


class _Slots3:  # a 3-slot instance, shaped like ``rec._Entry``
    __slots__ = ("a", "b", "c")


_OBJ3 = sys.getsizeof(_Slots3())

#: Amortized per-entry cost of a dict slot (key/value/hash triple plus
#: the table's load-factor headroom).  CPython does not expose per-entry
#: dict accounting; 3 machine words of payload at a ~2/3 fill factor is
#: the standard estimate and the tracemalloc cross-check keeps it honest.
_DICT_SLOT = 5 * _PTR


# ----------------------------------------------------------------------
# Bytes-per-entry models, one per instrumented structure
# ----------------------------------------------------------------------
def pq_entry_bytes(stages: int) -> int:
    """One ANYK-PART candidate in the global priority queue.

    Heap slot + ``(key, tick, item)`` triple + fresh priority float +
    tick int + ``(choices, anchor)`` pair + the ``choices`` tuple of
    ``stages`` shared tuple ids.
    """
    return (
        _PTR
        + _tuple_bytes(3)
        + _FLOAT
        + _INT
        + _tuple_bytes(2)
        + _tuple_bytes(stages)
    )


def rec_entry_bytes(children: int) -> int:
    """One ANYK-REC heap candidate: heap slot + triple + the
    ``(weight, position)`` key pair + tick + the
    ``(position, child_ranks, j)`` item with its rank tuple."""
    return (
        _PTR
        + _tuple_bytes(3)
        + _tuple_bytes(2)
        + _FLOAT
        + _INT
        + _tuple_bytes(3)
        + _tuple_bytes(children)
    )


def rec_solution_bytes(children: int) -> int:
    """One memoized ``_Entry`` in a REC stream's solution prefix."""
    return _PTR + _OBJ3 + _FLOAT + _tuple_bytes(children)


def tdp_tuple_bytes() -> int:
    """Per-tuple T-DP state: tuple-id and subtree-weight list slots in
    the bucket, the lifted-weight slot, and the subtree weight float."""
    return 3 * _PTR + _FLOAT


def tdp_bucket_bytes() -> int:
    """Per-bucket overhead: the stage dict slot, the ``Bucket`` record,
    and its two list headers."""
    return _DICT_SLOT + 6 * _PTR + 2 * sys.getsizeof([])


def hrjn_seen_bytes() -> int:
    """One tuple retained in an HRJN side buffer: the seen-list slot and
    its ``(row, weight)`` pair (the row itself is shared)."""
    return _PTR + _tuple_bytes(2) + _FLOAT + _DICT_SLOT


def hrjn_result_bytes(arity: int) -> int:
    """One joined row buffered in the HRJN output heap."""
    return _PTR + _tuple_bytes(3) + _FLOAT + _INT + _tuple_bytes(arity)


def sorted_scan_bytes() -> int:
    """Per-row cost of a rank-join sorted scan copy: fresh row/weight
    list slots (rows and weights are shared with the base relation)."""
    return 2 * _PTR


def row_bytes(arity: int) -> int:
    """One materialized output row: the tuple shell, its fresh combined
    weight, and the rows/weights list slots holding them."""
    return _tuple_bytes(arity) + _FLOAT + 2 * _PTR


def join_build_entry_bytes() -> int:
    """One build-side index entry of a binary hash join (amortized:
    the key dict slot is shared across rows with equal keys)."""
    return _PTR + _INT + _DICT_SLOT // 2


def columnar_row_bytes(arity: int) -> int:
    """One row in a :class:`~repro.data.columnar.ColumnStore`: a slot
    per value column plus the weight cell (values are shared)."""
    return arity * _PTR + _PTR + _FLOAT


def batch_sort_bytes() -> int:
    """Per-result cost of the batch engine's sort pass: the lifted
    weight and its list slot, the order index int and its slot."""
    return _FLOAT + _INT + 2 * _PTR


def q_error(estimated: float, actual: float) -> float:
    """The planner's Q-error: ``max(est/actual, actual/est)`` with both
    sides floored at one row (Moerkotte et al.'s convention, so empty
    results and zero estimates compare as 1 row instead of dividing by
    zero)."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


# ----------------------------------------------------------------------
# Live/peak accounting
# ----------------------------------------------------------------------
class SpaceGauge:
    """O(1) live/peak entry counter for one structure category.

    ``add``/``remove`` adjust this gauge's entry count and the owning
    profile's concurrent byte total; the profile records the high-water
    mark across *all* its gauges, so simultaneous growth in two
    structures peaks higher than either alone — exactly the concurrency
    ``tracemalloc`` sees.
    """

    __slots__ = ("profile", "category", "unit_bytes", "entries", "peak_entries")

    def __init__(
        self, profile: "MemoryProfile", category: str, unit_bytes: int
    ) -> None:
        self.profile = profile
        self.category = category
        self.unit_bytes = max(1, int(unit_bytes))
        self.entries = 0
        self.peak_entries = 0

    def add(self, n: int = 1) -> None:
        entries = self.entries + n
        self.entries = entries
        if entries > self.peak_entries:
            self.peak_entries = entries
        profile = self.profile
        live = profile.live_bytes + n * self.unit_bytes
        profile.live_bytes = live
        if live > profile.peak_bytes:
            profile.peak_bytes = live

    def remove(self, n: int = 1) -> None:
        self.entries -= n
        self.profile.live_bytes -= n * self.unit_bytes

    @property
    def live_bytes(self) -> int:
        return self.entries * self.unit_bytes

    @property
    def peak_bytes(self) -> int:
        return self.peak_entries * self.unit_bytes


class MemoryProfile:
    """Per-execution space profile: a bundle of gauges plus totals.

    Mirrors :class:`~repro.obs.delay.DelayProfile`'s lifecycle — one per
    cursor, folded into per-engine aggregates at retirement, worker
    snapshots appended to ``shards`` for attribution — but with max-based
    aggregation (see the module docstring).
    """

    __slots__ = (
        "engine",
        "live_bytes",
        "peak_bytes",
        "streams",
        "shards",
        "_gauges",
    )

    def __init__(self, engine: str = "") -> None:
        self.engine = engine
        self.live_bytes = 0
        self.peak_bytes = 0
        self.streams = 0
        self.shards: list[dict] = []
        self._gauges: dict[str, SpaceGauge] = {}

    # -- accounting ----------------------------------------------------
    def gauge(self, category: str, unit_bytes: int) -> SpaceGauge:
        """The gauge for ``category`` (created on first use; shared by
        every structure of that category in this execution)."""
        gauge = self._gauges.get(category)
        if gauge is None:
            gauge = SpaceGauge(self, category, unit_bytes)
            self._gauges[category] = gauge
        return gauge

    @property
    def touched(self) -> bool:
        """Whether any structure ever reported into this profile."""
        return bool(self._gauges) or self.peak_bytes > 0 or bool(self.shards)

    def categories(self) -> dict[str, SpaceGauge]:
        return dict(self._gauges)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MemoryProfile") -> "MemoryProfile":
        """Fold ``other`` (a retired execution) into this aggregate:
        stream counts add, byte figures take the maximum."""
        if not self.engine:
            self.engine = other.engine
        self.streams += other.streams
        self.live_bytes = max(self.live_bytes, other.live_bytes)
        self.peak_bytes = max(self.peak_bytes, other.peak_bytes)
        for category, theirs in other._gauges.items():
            mine = self.gauge(category, theirs.unit_bytes)
            mine.entries = max(mine.entries, theirs.entries)
            mine.peak_entries = max(mine.peak_entries, theirs.peak_entries)
        self.shards.extend(other.shards)
        return self

    def merge_snapshot(self, snapshot: dict) -> "MemoryProfile":
        """Fold a :meth:`snapshot` dict (a worker's, a stored one)."""
        if not self.engine:
            self.engine = snapshot.get("engine", "")
        self.streams += int(snapshot.get("streams", 0))
        self.live_bytes = max(self.live_bytes, int(snapshot.get("live_bytes", 0)))
        self.peak_bytes = max(self.peak_bytes, int(snapshot.get("peak_bytes", 0)))
        for category, data in snapshot.get("categories", {}).items():
            mine = self.gauge(category, int(data.get("unit_bytes", 1)))
            mine.entries = max(mine.entries, int(data.get("entries", 0)))
            mine.peak_entries = max(
                mine.peak_entries, int(data.get("peak_entries", 0))
            )
        self.shards.extend(snapshot.get("shards", ()))
        return self

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable full state (worker done frames, persistence)."""
        return {
            "engine": self.engine,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "streams": self.streams,
            "categories": {
                category: {
                    "unit_bytes": gauge.unit_bytes,
                    "entries": gauge.entries,
                    "peak_entries": gauge.peak_entries,
                }
                for category, gauge in self._gauges.items()
            },
            "shards": list(self.shards),
        }

    def summary(self) -> dict:
        """JSON-ready digest for stats payloads and CLI rendering."""
        return {
            "engine": self.engine,
            "streams": self.streams,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "peak_mb": round(self.peak_bytes / (1024.0 * 1024.0), 3),
            "categories": {
                category: {
                    "unit_bytes": gauge.unit_bytes,
                    "live_entries": gauge.entries,
                    "peak_entries": gauge.peak_entries,
                    "peak_bytes": gauge.peak_bytes,
                }
                for category, gauge in sorted(self._gauges.items())
            },
            "shards": [
                {
                    "shard": shard.get("shard"),
                    "live_bytes": shard.get("live_bytes", 0),
                    "peak_bytes": shard.get("peak_bytes", 0),
                }
                for shard in self.shards
            ],
        }


# ----------------------------------------------------------------------
# Counters plumbing (engines never change signature for this)
# ----------------------------------------------------------------------
def attach_tracker(counters: Any, profile: Optional[MemoryProfile]) -> None:
    """Ride ``profile`` on an execution's ``Counters`` as the dynamic
    ``space`` attribute.  ``Counters`` is a plain dataclass, so the extra
    attribute is invisible to its ``fields()``-driven snapshot/merge."""
    if counters is not None and profile is not None:
        counters.space = profile


def tracker_of(counters: Any) -> Optional[MemoryProfile]:
    """The :class:`MemoryProfile` riding on ``counters``, if any.

    The single hook every instrumented structure calls at construction;
    ``None`` (no profiling requested) keeps the hot path untouched.
    """
    if counters is None:
        return None
    return getattr(counters, "space", None)
