"""Structured per-request event log (sampled JSON lines).

Where traces answer "what happened inside *this* request" and metrics
answer "how is the fleet doing", the event log is the durable middle:
one JSON object per sampled request — op, SQL (plus a stable hash for
grouping), trace id, snapshot version, plan-cache attribution, latency,
results emitted, error code — written append-only so it survives the
process and can be grepped, joined against traces by id, or *replayed*
against a live server (``repro-obs --replay``).

Capture policy, in priority order:

1. **Errors are always captured.**  A failing request is precisely the
   one you need the record of.
2. **Slow requests are always captured**: latency at or above
   ``slow_ms`` forces the write regardless of sampling.
3. Everything else is **deterministically sampled** at ``sample``
   (a rate in [0, 1]; the counter-based scheme records exactly
   ``floor(n * sample)`` of the first *n* candidates — no RNG, so a
   seeded run logs a reproducible subset).

Rotation is size-based: when the active file would exceed
``max_bytes``, it is atomically renamed to ``<path>.1`` (replacing a
previous rotation) and a fresh file is started — bounded disk, and the
most recent history is always in at most two files.

Only request-shaped work is logged (``query``/``fetch``/``explain``/
``mutate``/``close``); observability polls (``stats``/``metrics``/
``trace``/``slo``) would swamp the log with their own monitoring.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from typing import Any, Iterator, Optional

#: Ops that produce an event-log record (see module docstring).
LOGGED_OPS = frozenset({"query", "fetch", "explain", "mutate", "close"})

#: Default forced-capture threshold (ms).
DEFAULT_SLOW_MS = 100.0

#: Default rotation size (bytes).
DEFAULT_MAX_BYTES = 5_000_000


def sql_hash(sql: str) -> str:
    """A short stable digest for grouping identical statements."""
    return hashlib.sha256(sql.encode("utf-8")).hexdigest()[:16]


class EventLog:
    """Append-only sampled JSON-lines log with size-based rotation."""

    def __init__(
        self,
        path: str,
        sample: float = 1.0,
        slow_ms: Optional[float] = DEFAULT_SLOW_MS,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        if max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024")
        self.path = str(path)
        self.sample = sample
        self.slow_ms = slow_ms
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = self._file.tell()
        self._candidates = 0
        self._sampled_in = 0
        self.written = 0
        self.forced = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_request(
        self, request: dict, response: dict, latency_ms: float
    ) -> bool:
        """Maybe log one request/response pair; returns True if written."""
        op = request.get("op")
        if op not in LOGGED_OPS:
            return False
        error = response.get("error") if isinstance(response, dict) else None
        event: dict[str, Any] = {
            "ts": round(time.time(), 6),
            "op": op,
            "id": request.get("id"),
            "latency_ms": round(latency_ms, 4),
        }
        sql = request.get("sql")
        if isinstance(sql, str):
            event["sql"] = sql
            event["sql_hash"] = sql_hash(sql)
        if isinstance(response, dict):
            for key in ("trace_id", "version", "plan_cached", "results_emitted"):
                if key in response:
                    event[key] = response[key]
        if error:
            event["error"] = error.get("code", "internal")
        force = bool(error) or (
            self.slow_ms is not None and latency_ms >= self.slow_ms
        )
        return self.record(event, force=force)

    def record(self, event: dict, force: bool = False) -> bool:
        """Write one event (subject to sampling unless ``force``)."""
        with self._lock:
            if self._file.closed:
                return False
            if not force and not self._take_locked():
                return False
            if force:
                self.forced += 1
                event.setdefault("forced", True)
            line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
            encoded_len = len(line.encode("utf-8"))
            if self._size and self._size + encoded_len > self.max_bytes:
                self._rotate_locked()
            self._file.write(line)
            self._file.flush()
            self._size += encoded_len
            self.written += 1
            return True

    def _take_locked(self) -> bool:
        """Deterministic rate-exact sampling: record candidate *n* iff
        ``floor(n * sample)`` advanced."""
        self._candidates += 1
        wanted = math.floor(self._candidates * self.sample)
        if wanted > self._sampled_in:
            self._sampled_in = wanted
            return True
        return False

    def _rotate_locked(self) -> None:
        self._file.close()
        os.replace(self.path, self.path + ".1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def info(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "sample": self.sample,
                "slow_ms": self.slow_ms,
                "max_bytes": self.max_bytes,
                "written": self.written,
                "forced": self.forced,
                "candidates": self._candidates,
                "rotations": self.rotations,
                "size_bytes": self._size,
            }

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


# ----------------------------------------------------------------------
# Reading / replay
# ----------------------------------------------------------------------
def read_events(path: str, include_rotated: bool = True) -> Iterator[dict]:
    """Yield logged events oldest-first (rotated file first).

    Unparseable lines (a crash mid-write on the final line) are
    skipped, not fatal — a log viewer must work on imperfect logs.
    """
    paths = [path + ".1", path] if include_rotated else [path]
    for p in paths:
        if not os.path.exists(p):
            continue
        with open(p, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict):
                    yield event


def render_event(event: dict) -> str:
    """One human-readable line per event (``repro-obs --log``)."""
    ts = event.get("ts")
    when = (
        time.strftime("%H:%M:%S", time.localtime(ts)) if isinstance(ts, (int, float))
        else "--:--:--"
    )
    op = event.get("op", "?")
    latency = event.get("latency_ms")
    shown = f"{latency:.3f} ms" if isinstance(latency, (int, float)) else "-"
    bits = [f"{when}  {op:<8} {shown:>12}"]
    if event.get("error"):
        bits.append(f"error={event['error']}")
    if "results_emitted" in event:
        bits.append(f"rows={event['results_emitted']}")
    if event.get("plan_cached") is not None:
        bits.append("plan=hit" if event["plan_cached"] else "plan=miss")
    if event.get("trace_id"):
        bits.append(f"trace={event['trace_id']}")
    if event.get("sql"):
        sql = event["sql"]
        bits.append(sql if len(sql) <= 48 else sql[:45] + "...")
    return "  ".join(bits)


def replay_events(
    events: Iterator[dict],
    call: "Any",
    include_mutations: bool = False,
) -> dict:
    """Re-issue logged SQL requests through ``call(op, **fields)``.

    Only self-contained statements replay — ``query`` (re-fetching the
    logged ``results_emitted`` rows, default one page) and ``explain``;
    ``fetch``/``close`` reference cursors of the original run and are
    skipped, as are ``mutate`` events unless ``include_mutations`` (a
    replay against a live server should not rewrite its data by
    accident).  Returns a summary with per-event outcomes.
    """
    outcomes = []
    replayed = skipped = failed = 0
    for event in events:
        op = event.get("op")
        sql = event.get("sql")
        if op not in ("query", "explain", "mutate") or not sql:
            skipped += 1
            continue
        if op == "mutate" and not include_mutations:
            skipped += 1
            continue
        fields: dict[str, Any] = {"sql": sql}
        if op == "query":
            emitted = event.get("results_emitted")
            fields["fetch"] = int(emitted) if isinstance(emitted, int) else 1
        start = time.perf_counter()
        try:
            response = call(op, **fields)
            error = (
                response.get("error", {}).get("code")
                if isinstance(response, dict) and not response.get("ok", True)
                else None
            )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            response = None
        latency_ms = (time.perf_counter() - start) * 1000.0
        if error:
            failed += 1
        else:
            replayed += 1
        outcomes.append(
            {
                "op": op,
                "sql_hash": event.get("sql_hash"),
                "original_latency_ms": event.get("latency_ms"),
                "replay_latency_ms": round(latency_ms, 4),
                "error": error,
            }
        )
    return {
        "replayed": replayed,
        "skipped": skipped,
        "failed": failed,
        "outcomes": outcomes,
    }
